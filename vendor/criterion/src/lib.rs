//! Minimal offline stand-in for `criterion`.
//!
//! Provides the API shape the workspace benches use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! median-of-samples wall-clock timer that prints one line per
//! benchmark. Statistical analysis, plotting and report generation are
//! intentionally out of scope.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque identity function that defeats constant folding.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group (recorded, printed with
/// the timing line).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Conversion of the various accepted id types into [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last: Duration,
}

impl Bencher {
    /// Times `f`, storing the median over a fixed number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        self.last = times[times.len() / 2];
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records a throughput annotation.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher { samples: self.sample_size.min(16), last: Duration::ZERO };
        f(&mut b);
        let suffix = match self.throughput {
            Some(Throughput::Bytes(n)) => format!(" ({n} bytes/iter)"),
            Some(Throughput::Elements(n)) => format!(" ({n} elems/iter)"),
            None => String::new(),
        };
        eprintln!("bench {}/{id}: {:?}/iter{suffix}", self.name, b.last);
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        self.run(&id.id, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.id, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored here).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Declares a benchmark group function invoking each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Elements(3));
        let mut count = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 1), &5u64, |b, &x| {
            b.iter(|| {
                count += 1;
                black_box(x * 2)
            });
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        c.bench_function("top", |b| b.iter(|| black_box(2 + 2)));
        assert!(count > 0);
    }
}
