//! Minimal offline stand-in for `rand` 0.8.
//!
//! Implements the subset of the rand API this workspace uses: a seedable
//! `StdRng` (xoshiro256++ initialised by SplitMix64), `Rng::gen`,
//! `Rng::gen_range` over integer and float ranges, `Rng::gen_bool`, and
//! `seq::SliceRandom::shuffle`/`choose`. The streams differ from the
//! real rand crate, but every consumer in this workspace only relies on
//! determinism for a fixed seed, which this implementation guarantees.

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// User-facing random value generation, automatically implemented for
/// every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples a value uniformly from `range`. Panics on empty ranges.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Constructing generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random bits into [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    // 24 random bits into [0, 1).
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

pub mod rngs {
    //! Concrete generator implementations.

    use crate::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Alias of [`StdRng`]; a separate small generator is unnecessary here.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    //! Distributions for `Rng::gen` and `Rng::gen_range`.

    use crate::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Samples a value from the distribution.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" full-range distribution of each primitive type
    /// (floats land in [0, 1)).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            crate::unit_f32(rng)
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            crate::unit_f64(rng)
        }
    }

    pub mod uniform {
        //! Uniform sampling from ranges.

        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// A range that can be sampled uniformly.
        pub trait SampleRange<T> {
            /// Draws one value from the range. Panics if the range is empty.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Types with a uniform-sampling primitive. The blanket
        /// `SampleRange` impls below hang off this trait so type
        /// inference can equate the range's element type with the
        /// sampled type (as real rand does).
        pub trait SampleUniform: Copy + PartialOrd {
            /// Samples from `[lo, hi)` (`inclusive = false`) or
            /// `[lo, hi]` (`inclusive = true`). Panics if empty.
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self;
        }

        macro_rules! int_uniform {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_between<R: RngCore + ?Sized>(
                        rng: &mut R,
                        lo: Self,
                        hi: Self,
                        inclusive: bool,
                    ) -> Self {
                        if inclusive {
                            assert!(lo <= hi, "cannot sample empty range");
                        } else {
                            assert!(lo < hi, "cannot sample empty range");
                        }
                        let span =
                            (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                        if span == 0 {
                            // Inclusive range covering the full 128-bit
                            // span cannot occur for <=64-bit types except
                            // T::MIN..=T::MAX, where any value is valid.
                            return (rng.next_u64() as i64) as $t;
                        }
                        let v = (rng.next_u64() as u128) % span;
                        (lo as i128 + v as i128) as $t
                    }
                }
            )*};
        }

        int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! float_uniform {
            ($($t:ty, $unit:path);*) => {$(
                impl SampleUniform for $t {
                    fn sample_between<R: RngCore + ?Sized>(
                        rng: &mut R,
                        lo: Self,
                        hi: Self,
                        inclusive: bool,
                    ) -> Self {
                        if inclusive {
                            assert!(lo <= hi, "cannot sample empty range");
                        } else {
                            assert!(lo < hi, "cannot sample empty range");
                        }
                        lo + (hi - lo) * $unit(rng)
                    }
                }
            )*};
        }

        float_uniform!(f32, crate::unit_f32; f64, crate::unit_f64);

        impl<T: SampleUniform> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_between(rng, self.start, self.end, false)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_between(rng, *self.start(), *self.end(), true)
            }
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use crate::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Picks a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn gen_bool_rate_roughly_matches() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should virtually never shuffle to identity");
    }

    #[test]
    fn uniform_int_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
