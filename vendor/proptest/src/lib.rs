//! Minimal offline stand-in for `proptest`.
//!
//! Provides the strategy combinators, `proptest!` / `prop_assert!` macros
//! and prelude that this workspace's property tests use. Sampling is
//! driven by a fixed-seed deterministic RNG; failing cases are reported
//! with their case number but are **not shrunk**. The API surface mirrors
//! real proptest signatures closely enough that the tests compile
//! unchanged.

pub mod test_runner {
    //! Test configuration, errors and the deterministic RNG.

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases to run per test.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    impl Config {
        /// A default config with the given number of cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case failed an assertion.
        Fail(String),
        /// The case asked to be discarded.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejection with the given message.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(reason) => write!(f, "{reason}"),
                TestCaseError::Reject(reason) => write!(f, "rejected: {reason}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Result of one test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// The RNG driving strategy sampling.
    pub type TestRng = rand::rngs::StdRng;

    /// A fresh deterministic RNG (fixed seed, so test runs repeat).
    #[must_use]
    pub fn new_rng() -> TestRng {
        use rand::SeedableRng;
        TestRng::seed_from_u64(0x7e57_ca5e_5eed_0001)
    }
}

pub mod strategy {
    //! Value-generation strategies and combinators.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.sample(rng)))
        }

        /// Builds a recursive strategy: `recurse` wraps the current
        /// strategy up to `depth` times, mixed with the base at each
        /// level so sizes stay bounded. `desired_size` and
        /// `expected_branch_size` are accepted for signature parity.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        {
            let mut strat = self.boxed();
            let base = strat.clone();
            for _ in 0..depth {
                let deeper = recurse(strat).boxed();
                strat = Union::new(vec![base.clone(), deeper]).boxed();
            }
            strat
        }
    }

    /// A type-erased strategy; cheap to clone.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between several strategies of one value type.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given (non-empty) options.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "Union of zero strategies");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let choice = rng.gen_range(0..self.options.len());
            self.options[choice].sample(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.sample(rng))
        }
    }

    macro_rules! range_strategy {
        ($($ty:ty),+ $(,)?) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )+};
    }

    range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    // ---- mini-regex string strategies -------------------------------

    /// One regex atom plus its repetition bounds.
    struct RegexAtom {
        /// Candidate characters; empty means "any printable".
        choices: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Parses the tiny regex subset the workspace tests use: literal
    /// characters, `.`, `[a-z_]`-style classes, and `{n}` / `{a,b}`
    /// quantifiers. Anything else panics loudly.
    fn parse_mini_regex(pattern: &str) -> Vec<RegexAtom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let choices = match chars[i] {
                '.' => {
                    i += 1;
                    Vec::new()
                }
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed class in regex {pattern:?}"))
                        + i;
                    let mut set = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (lo, hi) = (chars[j], chars[j + 2]);
                            assert!(lo <= hi, "bad range in regex {pattern:?}");
                            set.extend((lo..=hi).filter(char::is_ascii));
                            j += 3;
                        } else {
                            set.push(chars[j]);
                            j += 1;
                        }
                    }
                    assert!(!set.is_empty(), "empty class in regex {pattern:?}");
                    i = close + 1;
                    set
                }
                '\\' => {
                    assert!(i + 1 < chars.len(), "dangling escape in regex {pattern:?}");
                    i += 2;
                    vec![chars[i - 1]]
                }
                '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '^' | '$' => {
                    panic!("unsupported regex construct {:?} in {pattern:?}", chars[i])
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed quantifier in regex {pattern:?}"))
                    + i;
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier lower bound"),
                        hi.trim().parse().expect("bad quantifier upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad quantifier count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            atoms.push(RegexAtom { choices, min, max });
        }
        atoms
    }

    /// Printable pool for `.`: ASCII plus a couple of multibyte chars so
    /// UTF-8 handling gets exercised.
    const ANY_CHAR_POOL: &[char] = &[
        ' ', '!', '"', '#', '$', '%', '&', '\'', '(', ')', '*', '+', ',', '-', '.', '/', '0',
        '1', '2', '3', '4', '5', '6', '7', '8', '9', ':', ';', '<', '=', '>', '?', '@', 'A',
        'B', 'C', 'K', 'M', 'Q', 'Z', '[', '\\', ']', '^', '_', '`', 'a', 'b', 'c', 'k', 'm',
        'q', 'z', '{', '|', '}', '~', 'é', 'λ', '中', '🦀',
    ];

    impl Strategy for &'static str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            let atoms = parse_mini_regex(self);
            let mut out = String::new();
            for atom in &atoms {
                let count = rng.gen_range(atom.min..=atom.max);
                for _ in 0..count {
                    let c = if atom.choices.is_empty() {
                        ANY_CHAR_POOL[rng.gen_range(0..ANY_CHAR_POOL.len())]
                    } else {
                        atom.choices[rng.gen_range(0..atom.choices.len())]
                    };
                    out.push(c);
                }
            }
            out
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — canonical strategies for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            AnyStrategy(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    macro_rules! arbitrary_int {
        ($($ty:ty),+ $(,)?) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.gen_range(<$ty>::MIN..=<$ty>::MAX)
                }
            }
        )+};
    }

    arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    // Floats stay finite (no NaN/inf) so equality-based properties hold.
    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            rng.gen_range(-1.0e6f32..1.0e6f32)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.gen_range(-1.0e9f64..1.0e9f64)
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Mostly ASCII, with occasional multibyte chars.
            const POOL: &[char] =
                &['a', 'b', 'z', 'A', 'Z', '0', '9', '_', ' ', '\n', 'é', 'λ', '中', '🦀'];
            POOL[rng.gen_range(0..POOL.len())]
        }
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::BTreeMap;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's size.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl SizeRange {
        fn sample(self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.min..=self.max)
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>`.
    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// A map whose target size is drawn from `size`; key collisions may
    /// make the result smaller, as in real proptest's minimum-size retry
    /// loop (we bound retries instead of looping forever).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn sample(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let target = self.size.sample(rng);
            let mut map = BTreeMap::new();
            let mut attempts = 0;
            while map.len() < target && attempts < target * 10 + 8 {
                map.insert(self.key.sample(rng), self.value.sample(rng));
                attempts += 1;
            }
            map
        }
    }
}

pub mod option {
    //! Strategies for `Option<T>`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy for `Option<T>` with inner strategy `S`.
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` with probability 0.75, `None` otherwise (matching real
    /// proptest's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.75) {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

/// Runs each `fn` body against many sampled inputs.
///
/// Supports an optional leading `#![proptest_config(expr)]` and any
/// number of `fn name(pat in strategy, ...) { body }` items. Bodies run
/// inside a closure returning `Result<(), TestCaseError>` so
/// `prop_assert!` can early-return, and may use `?` on helper functions
/// returning that type.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::Config::default(); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(unused_mut, unused_variables)]
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            let mut __rng = $crate::test_runner::new_rng();
            for __case in 0..__config.cases {
                let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(
                            let $p =
                                $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                        )+
                        $body
                        Ok(())
                    })();
                match __result {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(__message)) => {
                        panic!("proptest case {} failed: {}", __case, __message);
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition, early-returning `TestCaseError::Fail` instead of
/// panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality, early-returning `TestCaseError::Fail` instead of
/// panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = &$left;
        let __right = &$right;
        if !(__left == __right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    __left, __right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = &$left;
        let __right = &$right;
        if !(__left == __right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                    __left, __right, format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Uniform choice between strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Namespaced access mirroring real proptest's `prop::` re-export.
    pub mod prop {
        pub use crate::{collection, option, strategy};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn helper(x: u8) -> Result<(), TestCaseError> {
        prop_assert!(x as u16 + 1 > 0, "overflowed {}", x);
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn ranges_and_maps(x in 0usize..10, y in (1i32..5).prop_map(|v| v * 2)) {
            prop_assert!(x < 10);
            prop_assert!((2..=8).contains(&y));
        }

        #[test]
        fn regexes_vecs_oneof(
            name in "[a-z]{1,6}",
            items in prop::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 0..4),
            maybe in prop::option::of(any::<u8>()),
        ) {
            prop_assert!((1..=6).contains(&name.len()));
            prop_assert!(items.iter().all(|&i| i == 1 || i == 2));
            helper(maybe.unwrap_or(0))?;
            prop_assert_eq!(name.len(), name.chars().count());
        }
    }

    #[test]
    fn recursion_terminates() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let strat = any::<u8>().prop_map(Tree::Leaf).boxed().prop_recursive(3, 8, 2, |inner| {
            prop::collection::vec(inner, 0..3).prop_map(Tree::Node).boxed()
        });
        let mut rng = crate::test_runner::new_rng();
        for _ in 0..50 {
            let _tree = Strategy::sample(&strat, &mut rng);
        }
    }
}
