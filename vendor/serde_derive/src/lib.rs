//! Minimal offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace uses — non-generic structs (named, tuple, unit)
//! and enums (unit / newtype / tuple / struct variants) — by walking the
//! raw token stream and emitting string-built impls. `syn`/`quote` are
//! deliberately not used so the crate builds with no dependencies.
//! `#[serde(...)]` attributes and generic items are unsupported and panic
//! with a clear message at expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Shape of one parsed item.
enum Item {
    /// `struct Name { field, ... }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct Name(T, ...);` with the arity.
    TupleStruct { name: String, arity: usize },
    /// `struct Name;`
    UnitStruct { name: String },
    /// `enum Name { ... }`
    Enum { name: String, variants: Vec<Variant> },
}

/// One parsed enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Parenthesised payload with the given arity (1 = newtype).
    Tuple(usize),
    /// Braced payload with named fields.
    Struct(Vec<String>),
}

/// Derives `serde::Serialize` for a non-generic struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derives `serde::Deserialize` for a non-generic struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i, "item keyword");
    let name = expect_ident(&tokens, &mut i, "item name");

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic items are not supported (item `{name}`)");
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                Item::NamedStruct { name, fields }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = split_top_level(g.stream()).len();
                Item::TupleStruct { name, arity }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("serde_derive stub: unexpected token after `struct {name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream());
                Item::Enum { name, variants }
            }
            other => panic!("serde_derive stub: unexpected token after `enum {name}`: {other:?}"),
        },
        other => panic!("serde_derive stub: unsupported item kind `{other}`"),
    }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        // `#![...]` inner attributes don't occur on items, so the next
        // token is always the bracketed attribute body.
        match tokens.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => *i += 1,
            other => panic!("serde_derive stub: malformed attribute: {other:?}"),
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize, what: &str) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive stub: expected {what}, found {other:?}"),
    }
}

/// Splits a token stream at top-level commas. Angle brackets are tracked
/// as depth (groups are already atomic `TokenTree`s); empty trailing
/// chunks from a trailing comma are dropped.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tt);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Extracts field names from the body of a braced struct / struct variant.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attributes(&chunk, &mut i);
            skip_visibility(&chunk, &mut i);
            let name = expect_ident(&chunk, &mut i, "field name");
            match chunk.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == ':' => name,
                other => panic!("serde_derive stub: expected `:` after field `{name}`: {other:?}"),
            }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attributes(&chunk, &mut i);
            let name = expect_ident(&chunk, &mut i, "variant name");
            let kind = match chunk.get(i) {
                None => VariantKind::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(split_top_level(g.stream()).len())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Struct(parse_named_fields(g.stream()))
                }
                // Explicit discriminant (`Name = expr`): the payload shape
                // is still unit.
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => VariantKind::Unit,
                other => panic!(
                    "serde_derive stub: unexpected token in variant `{name}`: {other:?}"
                ),
            };
            Variant { name, kind }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Code generation: Serialize
// ---------------------------------------------------------------------

const IMPL_ATTRS: &str = "#[automatically_derived]\n\
     #[allow(non_snake_case, unused_mut, unused_variables, clippy::all)]\n";

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let mut body = format!(
                "let mut __state = ::serde::Serializer::serialize_struct(\
                 __serializer, \"{name}\", {len}usize)?;\n",
                len = fields.len()
            );
            for field in fields {
                body.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(\
                     &mut __state, \"{field}\", &self.{field})?;\n"
                ));
            }
            body.push_str("::serde::ser::SerializeStruct::end(__state)\n");
            (name, body)
        }
        Item::TupleStruct { name, arity: 1 } => (
            name,
            format!(
                "::serde::Serializer::serialize_newtype_struct(__serializer, \"{name}\", &self.0)\n"
            ),
        ),
        Item::TupleStruct { name, arity } => {
            let mut body = format!(
                "let mut __state = ::serde::Serializer::serialize_tuple_struct(\
                 __serializer, \"{name}\", {arity}usize)?;\n"
            );
            for idx in 0..*arity {
                body.push_str(&format!(
                    "::serde::ser::SerializeTupleStruct::serialize_field(\
                     &mut __state, &self.{idx})?;\n"
                ));
            }
            body.push_str("::serde::ser::SerializeTupleStruct::end(__state)\n");
            (name, body)
        }
        Item::UnitStruct { name } => (
            name,
            format!("::serde::Serializer::serialize_unit_struct(__serializer, \"{name}\")\n"),
        ),
        Item::Enum { name, variants } => {
            let mut body = String::from("match self {\n");
            for (idx, variant) in variants.iter().enumerate() {
                let vname = &variant.name;
                match &variant.kind {
                    VariantKind::Unit => body.push_str(&format!(
                        "{name}::{vname} => ::serde::Serializer::serialize_unit_variant(\
                         __serializer, \"{name}\", {idx}u32, \"{vname}\"),\n"
                    )),
                    VariantKind::Tuple(1) => body.push_str(&format!(
                        "{name}::{vname}(__f0) => \
                         ::serde::Serializer::serialize_newtype_variant(\
                         __serializer, \"{name}\", {idx}u32, \"{vname}\", __f0),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|k| format!("__f{k}")).collect();
                        body.push_str(&format!(
                            "{name}::{vname}({binders}) => {{\n\
                             let mut __state = \
                             ::serde::Serializer::serialize_tuple_variant(\
                             __serializer, \"{name}\", {idx}u32, \"{vname}\", {arity}usize)?;\n",
                            binders = binders.join(", ")
                        ));
                        for binder in &binders {
                            body.push_str(&format!(
                                "::serde::ser::SerializeTupleVariant::serialize_field(\
                                 &mut __state, {binder})?;\n"
                            ));
                        }
                        body.push_str(
                            "::serde::ser::SerializeTupleVariant::end(__state)\n}\n",
                        );
                    }
                    VariantKind::Struct(fields) => {
                        body.push_str(&format!(
                            "{name}::{vname} {{ {pat} }} => {{\n\
                             let mut __state = \
                             ::serde::Serializer::serialize_struct_variant(\
                             __serializer, \"{name}\", {idx}u32, \"{vname}\", {len}usize)?;\n",
                            pat = fields.join(", "),
                            len = fields.len()
                        ));
                        for field in fields {
                            body.push_str(&format!(
                                "::serde::ser::SerializeStructVariant::serialize_field(\
                                 &mut __state, \"{field}\", {field})?;\n"
                            ));
                        }
                        body.push_str(
                            "::serde::ser::SerializeStructVariant::end(__state)\n}\n",
                        );
                    }
                }
            }
            body.push_str("}\n");
            (name, body)
        }
    };

    format!(
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(\
         &self, __serializer: __S) -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
         {body}}}\n}}\n"
    )
}

// ---------------------------------------------------------------------
// Code generation: Deserialize
// ---------------------------------------------------------------------

/// Emits a `visit_seq` body that reads `n` elements named by `binders`
/// and finishes with `constructor` (a expression using those binders).
fn gen_visit_seq(binders: &[String], constructor: &str) -> String {
    let mut body = String::new();
    for binder in binders {
        body.push_str(&format!(
            "let {binder} = match ::serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
             Some(__value) => __value,\n\
             None => return Err(<__A::Error as ::serde::de::Error>::custom(\
             \"missing element `{binder}`\")),\n\
             }};\n"
        ));
    }
    body.push_str(&format!("Ok({constructor})\n"));
    body
}

/// Emits a full visitor struct + impl with the given `visit_seq` body.
fn gen_seq_visitor(visitor: &str, value_ty: &str, expecting: &str, visit_seq: &str) -> String {
    format!(
        "struct {visitor};\n\
         impl<'de> ::serde::de::Visitor<'de> for {visitor} {{\n\
         type Value = {value_ty};\n\
         fn expecting(&self, __formatter: &mut ::core::fmt::Formatter) \
         -> ::core::fmt::Result {{\n\
         __formatter.write_str(\"{expecting}\")\n}}\n\
         fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(\
         self, mut __seq: __A) -> ::core::result::Result<Self::Value, __A::Error> {{\n\
         {visit_seq}}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let visit_seq = gen_visit_seq(
                fields,
                &format!("{name} {{ {} }}", fields.join(", ")),
            );
            let visitor = gen_seq_visitor("__Visitor", name, &format!("struct {name}"), &visit_seq);
            let field_names: Vec<String> = fields.iter().map(|f| format!("\"{f}\"")).collect();
            let body = format!(
                "{visitor}\
                 ::serde::Deserializer::deserialize_struct(\
                 __deserializer, \"{name}\", &[{fields}], __Visitor)\n",
                fields = field_names.join(", ")
            );
            (name, body)
        }
        Item::TupleStruct { name, arity: 1 } => {
            let body = format!(
                "struct __Visitor;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __formatter: &mut ::core::fmt::Formatter) \
                 -> ::core::fmt::Result {{\n\
                 __formatter.write_str(\"newtype struct {name}\")\n}}\n\
                 fn visit_newtype_struct<__D: ::serde::Deserializer<'de>>(\
                 self, __inner: __D) -> ::core::result::Result<Self::Value, __D::Error> {{\n\
                 Ok({name}(::serde::Deserialize::deserialize(__inner)?))\n}}\n}}\n\
                 ::serde::Deserializer::deserialize_newtype_struct(\
                 __deserializer, \"{name}\", __Visitor)\n"
            );
            (name, body)
        }
        Item::TupleStruct { name, arity } => {
            let binders: Vec<String> = (0..*arity).map(|k| format!("__f{k}")).collect();
            let visit_seq =
                gen_visit_seq(&binders, &format!("{name}({})", binders.join(", ")));
            let visitor =
                gen_seq_visitor("__Visitor", name, &format!("tuple struct {name}"), &visit_seq);
            let body = format!(
                "{visitor}\
                 ::serde::Deserializer::deserialize_tuple_struct(\
                 __deserializer, \"{name}\", {arity}usize, __Visitor)\n"
            );
            (name, body)
        }
        Item::UnitStruct { name } => {
            let body = format!(
                "struct __Visitor;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __formatter: &mut ::core::fmt::Formatter) \
                 -> ::core::fmt::Result {{\n\
                 __formatter.write_str(\"unit struct {name}\")\n}}\n\
                 fn visit_unit<__E: ::serde::de::Error>(self) \
                 -> ::core::result::Result<Self::Value, __E> {{\n\
                 Ok({name})\n}}\n}}\n\
                 ::serde::Deserializer::deserialize_unit_struct(\
                 __deserializer, \"{name}\", __Visitor)\n"
            );
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (idx, variant) in variants.iter().enumerate() {
                let vname = &variant.name;
                match &variant.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{idx}u32 => {{\n\
                         ::serde::de::VariantAccess::unit_variant(__variant)?;\n\
                         Ok({name}::{vname})\n}}\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{idx}u32 => Ok({name}::{vname}(\
                         ::serde::de::VariantAccess::newtype_variant(__variant)?)),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binders: Vec<String> =
                            (0..*arity).map(|k| format!("__f{k}")).collect();
                        let visit_seq = gen_visit_seq(
                            &binders,
                            &format!("{name}::{vname}({})", binders.join(", ")),
                        );
                        let inner = gen_seq_visitor(
                            &format!("__Variant{idx}"),
                            name,
                            &format!("tuple variant {name}::{vname}"),
                            &visit_seq,
                        );
                        arms.push_str(&format!(
                            "{idx}u32 => {{\n{inner}\
                             ::serde::de::VariantAccess::tuple_variant(\
                             __variant, {arity}usize, __Variant{idx})\n}}\n"
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let visit_seq = gen_visit_seq(
                            fields,
                            &format!("{name}::{vname} {{ {} }}", fields.join(", ")),
                        );
                        let inner = gen_seq_visitor(
                            &format!("__Variant{idx}"),
                            name,
                            &format!("struct variant {name}::{vname}"),
                            &visit_seq,
                        );
                        let field_names: Vec<String> =
                            fields.iter().map(|f| format!("\"{f}\"")).collect();
                        arms.push_str(&format!(
                            "{idx}u32 => {{\n{inner}\
                             ::serde::de::VariantAccess::struct_variant(\
                             __variant, &[{fields}], __Variant{idx})\n}}\n",
                            fields = field_names.join(", ")
                        ));
                    }
                }
            }
            let variant_names: Vec<String> =
                variants.iter().map(|v| format!("\"{}\"", v.name)).collect();
            let body = format!(
                "struct __Visitor;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __formatter: &mut ::core::fmt::Formatter) \
                 -> ::core::fmt::Result {{\n\
                 __formatter.write_str(\"enum {name}\")\n}}\n\
                 fn visit_enum<__A: ::serde::de::EnumAccess<'de>>(\
                 self, __access: __A) -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                 let (__index, __variant): (u32, _) = \
                 ::serde::de::EnumAccess::variant(__access)?;\n\
                 match __index {{\n\
                 {arms}\
                 _ => Err(<__A::Error as ::serde::de::Error>::custom(\
                 \"invalid variant index for enum {name}\")),\n\
                 }}\n}}\n}}\n\
                 ::serde::Deserializer::deserialize_enum(\
                 __deserializer, \"{name}\", &[{variant_names}], __Visitor)\n",
                variant_names = variant_names.join(", ")
            );
            (name, body)
        }
    };

    format!(
        "{IMPL_ATTRS}impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(\
         __deserializer: __D) -> ::core::result::Result<Self, __D::Error> {{\n\
         {body}}}\n}}\n"
    )
}
