//! Minimal offline stand-in for `serde`.
//!
//! Re-implements the serde data-model traits (`Serialize`, `Serializer`,
//! `Deserialize`, `Deserializer`, visitors and access traits) and the
//! std-type impls that this workspace's `typilus-serbin` backend and the
//! derive macros require. The trait surface intentionally mirrors real
//! serde signatures so downstream code compiles unchanged; exotic
//! features (128-bit ints, borrowed identifiers, self-describing
//! formats, `#[serde(...)]` attributes) are out of scope.

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
