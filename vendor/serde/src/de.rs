//! Deserialization half of the data model.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt::{self, Display};
use std::hash::{BuildHasher, Hash};
use std::marker::PhantomData;

/// Errors produced by a [`Deserializer`].
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A value constructible from any serde data format.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    ///
    /// # Errors
    ///
    /// Propagates deserializer failures and type mismatches.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A value deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Stateful variant of [`Deserialize`], used by access traits.
pub trait DeserializeSeed<'de>: Sized {
    /// The produced value.
    type Value;

    /// Deserializes the value.
    ///
    /// # Errors
    ///
    /// Propagates deserializer failures.
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;

    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

/// A serde data format source.
#[allow(missing_docs)]
pub trait Deserializer<'de>: Sized {
    type Error: Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V)
        -> Result<V::Value, Self::Error>;
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V)
        -> Result<V::Value, Self::Error>;

    /// Whether the format is textual (`true`) or binary (`false`).
    fn is_human_readable(&self) -> bool {
        true
    }
}

macro_rules! visitor_default {
    ($method:ident, $ty:ty, $what:expr) => {
        /// Visits one input value; the default rejects it.
        ///
        /// # Errors
        ///
        /// The default returns a type-mismatch error.
        fn $method<E: Error>(self, v: $ty) -> Result<Self::Value, E> {
            let _ = v;
            Err(E::custom(format_args!("unexpected {}", $what)))
        }
    };
}

macro_rules! visitor_widen {
    ($method:ident, $ty:ty, $target:ident, $via:ty) => {
        /// Visits one input value; the default widens and re-dispatches.
        ///
        /// # Errors
        ///
        /// Propagates the widened visit.
        fn $method<E: Error>(self, v: $ty) -> Result<Self::Value, E> {
            self.$target(v as $via)
        }
    };
}

/// Drives construction of a value from data-model primitives.
pub trait Visitor<'de>: Sized {
    /// The constructed value.
    type Value;

    /// Describes what this visitor expects, for error messages.
    ///
    /// # Errors
    ///
    /// Propagates formatter failures.
    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result;

    visitor_default!(visit_bool, bool, "bool");
    visitor_widen!(visit_i8, i8, visit_i64, i64);
    visitor_widen!(visit_i16, i16, visit_i64, i64);
    visitor_widen!(visit_i32, i32, visit_i64, i64);
    visitor_default!(visit_i64, i64, "i64");
    visitor_widen!(visit_u8, u8, visit_u64, u64);
    visitor_widen!(visit_u16, u16, visit_u64, u64);
    visitor_widen!(visit_u32, u32, visit_u64, u64);
    visitor_default!(visit_u64, u64, "u64");
    visitor_widen!(visit_f32, f32, visit_f64, f64);
    visitor_default!(visit_f64, f64, "f64");
    visitor_default!(visit_char, char, "char");

    /// Visits a string slice; the default rejects it.
    ///
    /// # Errors
    ///
    /// The default returns a type-mismatch error.
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(format_args!("unexpected string")))
    }

    /// Visits a string borrowed from the input; defaults to [`Self::visit_str`].
    ///
    /// # Errors
    ///
    /// Propagates [`Self::visit_str`].
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }

    /// Visits an owned string; defaults to [`Self::visit_str`].
    ///
    /// # Errors
    ///
    /// Propagates [`Self::visit_str`].
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    /// Visits a byte slice; the default rejects it.
    ///
    /// # Errors
    ///
    /// The default returns a type-mismatch error.
    fn visit_bytes<E: Error>(self, v: &[u8]) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(format_args!("unexpected bytes")))
    }

    /// Visits bytes borrowed from the input; defaults to [`Self::visit_bytes`].
    ///
    /// # Errors
    ///
    /// Propagates [`Self::visit_bytes`].
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }

    /// Visits an owned byte buffer; defaults to [`Self::visit_bytes`].
    ///
    /// # Errors
    ///
    /// Propagates [`Self::visit_bytes`].
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }

    /// Visits an absent optional; the default rejects it.
    ///
    /// # Errors
    ///
    /// The default returns a type-mismatch error.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected none")))
    }

    /// Visits a present optional; the default rejects it.
    ///
    /// # Errors
    ///
    /// The default returns a type-mismatch error.
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(D::Error::custom(format_args!("unexpected some")))
    }

    /// Visits a unit value; the default rejects it.
    ///
    /// # Errors
    ///
    /// The default returns a type-mismatch error.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected unit")))
    }

    /// Visits a newtype struct; the default rejects it.
    ///
    /// # Errors
    ///
    /// The default returns a type-mismatch error.
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(D::Error::custom(format_args!("unexpected newtype struct")))
    }

    /// Visits a sequence; the default rejects it.
    ///
    /// # Errors
    ///
    /// The default returns a type-mismatch error.
    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        Err(A::Error::custom(format_args!("unexpected sequence")))
    }

    /// Visits a map; the default rejects it.
    ///
    /// # Errors
    ///
    /// The default returns a type-mismatch error.
    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = map;
        Err(A::Error::custom(format_args!("unexpected map")))
    }

    /// Visits an enum; the default rejects it.
    ///
    /// # Errors
    ///
    /// The default returns a type-mismatch error.
    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
        let _ = data;
        Err(A::Error::custom(format_args!("unexpected enum")))
    }
}

/// Access to the elements of a sequence.
pub trait SeqAccess<'de> {
    /// Format error type.
    type Error: Error;

    /// Deserializes the next element through a seed.
    ///
    /// # Errors
    ///
    /// Propagates deserializer failures.
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    /// Deserializes the next element.
    ///
    /// # Errors
    ///
    /// Propagates deserializer failures.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error>
    where
        Self: Sized,
    {
        self.next_element_seed(PhantomData)
    }

    /// Number of remaining elements, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the entries of a map.
pub trait MapAccess<'de> {
    /// Format error type.
    type Error: Error;

    /// Deserializes the next key through a seed.
    ///
    /// # Errors
    ///
    /// Propagates deserializer failures.
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    /// Deserializes the next value through a seed.
    ///
    /// # Errors
    ///
    /// Propagates deserializer failures.
    fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V)
        -> Result<V::Value, Self::Error>;

    /// Deserializes the next key.
    ///
    /// # Errors
    ///
    /// Propagates deserializer failures.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error>
    where
        Self: Sized,
    {
        self.next_key_seed(PhantomData)
    }

    /// Deserializes the next value.
    ///
    /// # Errors
    ///
    /// Propagates deserializer failures.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error>
    where
        Self: Sized,
    {
        self.next_value_seed(PhantomData)
    }

    /// Number of remaining entries, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum.
pub trait EnumAccess<'de>: Sized {
    /// Format error type.
    type Error: Error;
    /// Accessor for the variant payload.
    type Variant: VariantAccess<'de, Error = Self::Error>;

    /// Deserializes the variant tag through a seed.
    ///
    /// # Errors
    ///
    /// Propagates deserializer failures.
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    /// Deserializes the variant tag.
    ///
    /// # Errors
    ///
    /// Propagates deserializer failures.
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the payload of an enum variant.
pub trait VariantAccess<'de>: Sized {
    /// Format error type.
    type Error: Error;

    /// Consumes a unit variant.
    ///
    /// # Errors
    ///
    /// Propagates deserializer failures.
    fn unit_variant(self) -> Result<(), Self::Error>;

    /// Deserializes a newtype variant payload through a seed.
    ///
    /// # Errors
    ///
    /// Propagates deserializer failures.
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;

    /// Deserializes a newtype variant payload.
    ///
    /// # Errors
    ///
    /// Propagates deserializer failures.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    /// Deserializes a tuple variant payload.
    ///
    /// # Errors
    ///
    /// Propagates deserializer failures.
    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V)
        -> Result<V::Value, Self::Error>;

    /// Deserializes a struct variant payload.
    ///
    /// # Errors
    ///
    /// Propagates deserializer failures.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Conversion of plain values into deserializers, used for enum tags.
pub trait IntoDeserializer<'de, E: Error> {
    /// The resulting deserializer.
    type Deserializer: Deserializer<'de, Error = E>;

    /// Performs the conversion.
    fn into_deserializer(self) -> Self::Deserializer;
}

pub mod value {
    //! Deserializers over plain Rust values.

    use super::{Deserializer, Error, IntoDeserializer, Visitor};
    use std::marker::PhantomData;

    /// Deserializer yielding a single `u32` (enum variant indices).
    pub struct U32Deserializer<E> {
        value: u32,
        marker: PhantomData<E>,
    }

    impl<'de, E: Error> IntoDeserializer<'de, E> for u32 {
        type Deserializer = U32Deserializer<E>;

        fn into_deserializer(self) -> U32Deserializer<E> {
            U32Deserializer { value: self, marker: PhantomData }
        }
    }

    macro_rules! forward_to_visit_u32 {
        ($($method:ident),* $(,)?) => {$(
            fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
                visitor.visit_u32(self.value)
            }
        )*};
    }

    #[allow(missing_docs)]
    impl<'de, E: Error> Deserializer<'de> for U32Deserializer<E> {
        type Error = E;

        forward_to_visit_u32!(
            deserialize_any,
            deserialize_ignored_any,
            deserialize_bool,
            deserialize_i8,
            deserialize_i16,
            deserialize_i32,
            deserialize_i64,
            deserialize_u8,
            deserialize_u16,
            deserialize_u32,
            deserialize_u64,
            deserialize_f32,
            deserialize_f64,
            deserialize_char,
            deserialize_str,
            deserialize_string,
            deserialize_bytes,
            deserialize_byte_buf,
            deserialize_option,
            deserialize_unit,
            deserialize_seq,
            deserialize_map,
            deserialize_identifier,
        );

        fn deserialize_unit_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_newtype_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_tuple<V: Visitor<'de>>(
            self,
            _len: usize,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_tuple_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _len: usize,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _fields: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_enum<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _variants: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
    }
}

// ---------------------------------------------------------------------
// Deserialize impls for std types.
// ---------------------------------------------------------------------

macro_rules! primitive_visitor {
    ($vis:ident, $ty:ty, $visit:ident, $deserialize:ident) => {
        struct $vis;

        impl<'de> Visitor<'de> for $vis {
            type Value = $ty;

            fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
                formatter.write_str(stringify!($ty))
            }

            fn $visit<E: Error>(self, v: $ty) -> Result<$ty, E> {
                Ok(v)
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<$ty, D::Error> {
                deserializer.$deserialize($vis)
            }
        }
    };
}

primitive_visitor!(BoolVisitor, bool, visit_bool, deserialize_bool);
primitive_visitor!(I64Visitor, i64, visit_i64, deserialize_i64);
primitive_visitor!(U64Visitor, u64, visit_u64, deserialize_u64);
primitive_visitor!(F64Visitor, f64, visit_f64, deserialize_f64);
primitive_visitor!(CharVisitor, char, visit_char, deserialize_char);

macro_rules! narrow_int {
    ($vis:ident, $ty:ty, $visit:ident, $wide:ty, $visit_wide:ident, $deserialize:ident) => {
        struct $vis;

        impl<'de> Visitor<'de> for $vis {
            type Value = $ty;

            fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
                formatter.write_str(stringify!($ty))
            }

            fn $visit<E: Error>(self, v: $ty) -> Result<$ty, E> {
                Ok(v)
            }

            fn $visit_wide<E: Error>(self, v: $wide) -> Result<$ty, E> {
                <$ty>::try_from(v)
                    .map_err(|_| E::custom(format_args!("value {v} out of range")))
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<$ty, D::Error> {
                deserializer.$deserialize($vis)
            }
        }
    };
}

narrow_int!(I8Visitor, i8, visit_i8, i64, visit_i64, deserialize_i8);
narrow_int!(I16Visitor, i16, visit_i16, i64, visit_i64, deserialize_i16);
narrow_int!(I32Visitor, i32, visit_i32, i64, visit_i64, deserialize_i32);
narrow_int!(U8Visitor, u8, visit_u8, u64, visit_u64, deserialize_u8);
narrow_int!(U16Visitor, u16, visit_u16, u64, visit_u64, deserialize_u16);
narrow_int!(U32Visitor, u32, visit_u32, u64, visit_u64, deserialize_u32);

struct UsizeVisitor;

impl<'de> Visitor<'de> for UsizeVisitor {
    type Value = usize;

    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
        formatter.write_str("usize")
    }

    fn visit_u64<E: Error>(self, v: u64) -> Result<usize, E> {
        usize::try_from(v).map_err(|_| E::custom(format_args!("value {v} out of range")))
    }
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<usize, D::Error> {
        deserializer.deserialize_u64(UsizeVisitor)
    }
}

struct IsizeVisitor;

impl<'de> Visitor<'de> for IsizeVisitor {
    type Value = isize;

    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
        formatter.write_str("isize")
    }

    fn visit_i64<E: Error>(self, v: i64) -> Result<isize, E> {
        isize::try_from(v).map_err(|_| E::custom(format_args!("value {v} out of range")))
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<isize, D::Error> {
        deserializer.deserialize_i64(IsizeVisitor)
    }
}

struct F32Visitor;

impl<'de> Visitor<'de> for F32Visitor {
    type Value = f32;

    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
        formatter.write_str("f32")
    }

    fn visit_f32<E: Error>(self, v: f32) -> Result<f32, E> {
        Ok(v)
    }

    fn visit_f64<E: Error>(self, v: f64) -> Result<f32, E> {
        Ok(v as f32)
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<f32, D::Error> {
        deserializer.deserialize_f32(F32Visitor)
    }
}

struct StringVisitor;

impl<'de> Visitor<'de> for StringVisitor {
    type Value = String;

    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
        formatter.write_str("a string")
    }

    fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
        Ok(v.to_owned())
    }

    fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
        Ok(v)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<String, D::Error> {
        deserializer.deserialize_string(StringVisitor)
    }
}

struct UnitVisitor;

impl<'de> Visitor<'de> for UnitVisitor {
    type Value = ();

    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
        formatter.write_str("unit")
    }

    fn visit_unit<E: Error>(self) -> Result<(), E> {
        Ok(())
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<(), D::Error> {
        deserializer.deserialize_unit(UnitVisitor)
    }
}

struct OptionVisitor<T>(PhantomData<T>);

impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
    type Value = Option<T>;

    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
        formatter.write_str("an option")
    }

    fn visit_none<E: Error>(self) -> Result<Option<T>, E> {
        Ok(None)
    }

    fn visit_unit<E: Error>(self) -> Result<Option<T>, E> {
        Ok(None)
    }

    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Option<T>, D::Error> {
        T::deserialize(deserializer).map(Some)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Option<T>, D::Error> {
        deserializer.deserialize_option(OptionVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Box<T>, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

fn bounded_capacity(hint: Option<usize>) -> usize {
    hint.unwrap_or(0).min(4096)
}

struct VecVisitor<T>(PhantomData<T>);

impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
    type Value = Vec<T>;

    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
        formatter.write_str("a sequence")
    }

    fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
        let mut values = Vec::with_capacity(bounded_capacity(seq.size_hint()));
        while let Some(value) = seq.next_element_seed(PhantomData)? {
            values.push(value);
        }
        Ok(values)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Vec<T>, D::Error> {
        deserializer.deserialize_seq(VecVisitor(PhantomData))
    }
}

struct SetVisitor<T, C>(PhantomData<(T, C)>);

impl<'de, T: Deserialize<'de> + Ord> Visitor<'de> for SetVisitor<T, BTreeSet<T>> {
    type Value = BTreeSet<T>;

    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
        formatter.write_str("a set")
    }

    fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<BTreeSet<T>, A::Error> {
        let mut values = BTreeSet::new();
        while let Some(value) = seq.next_element_seed(PhantomData)? {
            values.insert(value);
        }
        Ok(values)
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<BTreeSet<T>, D::Error> {
        deserializer.deserialize_seq(SetVisitor::<T, BTreeSet<T>>(PhantomData))
    }
}

impl<'de, T, S> Visitor<'de> for SetVisitor<T, HashSet<T, S>>
where
    T: Deserialize<'de> + Eq + Hash,
    S: BuildHasher + Default,
{
    type Value = HashSet<T, S>;

    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
        formatter.write_str("a set")
    }

    fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<HashSet<T, S>, A::Error> {
        let mut values = HashSet::with_capacity_and_hasher(
            bounded_capacity(seq.size_hint()),
            S::default(),
        );
        while let Some(value) = seq.next_element_seed(PhantomData)? {
            values.insert(value);
        }
        Ok(values)
    }
}

impl<'de, T, S> Deserialize<'de> for HashSet<T, S>
where
    T: Deserialize<'de> + Eq + Hash,
    S: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<HashSet<T, S>, D::Error> {
        deserializer.deserialize_seq(SetVisitor::<T, HashSet<T, S>>(PhantomData))
    }
}

struct MapVisitor<M>(PhantomData<M>);

impl<'de, K, V, S> Visitor<'de> for MapVisitor<HashMap<K, V, S>>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    S: BuildHasher + Default,
{
    type Value = HashMap<K, V, S>;

    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
        formatter.write_str("a map")
    }

    fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<HashMap<K, V, S>, A::Error> {
        let mut values = HashMap::with_capacity_and_hasher(
            bounded_capacity(map.size_hint()),
            S::default(),
        );
        while let Some(key) = map.next_key_seed(PhantomData)? {
            let value = map.next_value_seed(PhantomData)?;
            values.insert(key, value);
        }
        Ok(values)
    }
}

impl<'de, K, V, S> Deserialize<'de> for HashMap<K, V, S>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    S: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<HashMap<K, V, S>, D::Error> {
        deserializer.deserialize_map(MapVisitor::<HashMap<K, V, S>>(PhantomData))
    }
}

impl<'de, K, V> Visitor<'de> for MapVisitor<BTreeMap<K, V>>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    type Value = BTreeMap<K, V>;

    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
        formatter.write_str("a map")
    }

    fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<BTreeMap<K, V>, A::Error> {
        let mut values = BTreeMap::new();
        while let Some(key) = map.next_key_seed(PhantomData)? {
            let value = map.next_value_seed(PhantomData)?;
            values.insert(key, value);
        }
        Ok(values)
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<BTreeMap<K, V>, D::Error> {
        deserializer.deserialize_map(MapVisitor::<BTreeMap<K, V>>(PhantomData))
    }
}

macro_rules! deserialize_tuple_impl {
    ($len:expr => $(($idx:tt $name:ident $var:ident))+) => {
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<__D: Deserializer<'de>>(
                deserializer: __D,
            ) -> Result<($($name,)+), __D::Error> {
                struct TupleVisitor<$($name),+>(PhantomData<($($name,)+)>);

                impl<'de, $($name: Deserialize<'de>),+> Visitor<'de> for TupleVisitor<$($name),+> {
                    type Value = ($($name,)+);

                    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
                        formatter.write_str("a tuple")
                    }

                    fn visit_seq<__A: SeqAccess<'de>>(
                        self,
                        mut seq: __A,
                    ) -> Result<Self::Value, __A::Error> {
                        $(
                            let $var = match seq.next_element_seed(PhantomData)? {
                                Some(value) => value,
                                None => {
                                    return Err(__A::Error::custom(format_args!(
                                        "tuple of length {} too short",
                                        $len
                                    )))
                                }
                            };
                        )+
                        Ok(($($var,)+))
                    }
                }

                deserializer.deserialize_tuple($len, TupleVisitor(PhantomData))
            }
        }
    };
}

deserialize_tuple_impl!(1 => (0 A a));
deserialize_tuple_impl!(2 => (0 A a) (1 B b));
deserialize_tuple_impl!(3 => (0 A a) (1 B b) (2 C c));
deserialize_tuple_impl!(4 => (0 A a) (1 B b) (2 C c) (3 D d));
deserialize_tuple_impl!(5 => (0 A a) (1 B b) (2 C c) (3 D d) (4 E e));
deserialize_tuple_impl!(6 => (0 A a) (1 B b) (2 C c) (3 D d) (4 E e) (5 F f));
deserialize_tuple_impl!(7 => (0 A a) (1 B b) (2 C c) (3 D d) (4 E e) (5 F f) (6 G g));
deserialize_tuple_impl!(8 => (0 A a) (1 B b) (2 C c) (3 D d) (4 E e) (5 F f) (6 G g) (7 H h));

struct ResultVisitor<T, E>(PhantomData<(T, E)>);

impl<'de, T: Deserialize<'de>, U: Deserialize<'de>> Visitor<'de>
    for ResultVisitor<T, U>
{
    type Value = std::result::Result<T, U>;

    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
        formatter.write_str("a Result")
    }

    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
        let (index, variant): (u32, _) = data.variant()?;
        match index {
            0 => variant.newtype_variant().map(Ok),
            1 => variant.newtype_variant().map(Err),
            other => Err(A::Error::custom(format_args!(
                "invalid Result variant index {other}"
            ))),
        }
    }
}

impl<'de, T: Deserialize<'de>, U: Deserialize<'de>> Deserialize<'de>
    for std::result::Result<T, U>
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_enum(
            "Result",
            &["Ok", "Err"],
            ResultVisitor(PhantomData),
        )
    }
}
