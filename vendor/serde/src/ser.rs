//! Serialization half of the data model.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt::Display;
use std::hash::{BuildHasher, Hash};

/// Errors produced by a [`Serializer`].
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A value that can be serialized into any serde data format.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    ///
    /// # Errors
    ///
    /// Propagates serializer failures.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A serde data format sink.
#[allow(missing_docs)]
pub trait Serializer: Sized {
    type Ok;
    type Error: Error;
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;

    /// Whether the format is textual (`true`) or binary (`false`).
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Sequence sub-serializer.
pub trait SerializeSeq {
    /// Format success type.
    type Ok;
    /// Format error type.
    type Error: Error;
    /// Serializes one element.
    ///
    /// # Errors
    ///
    /// Propagates serializer failures.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T)
        -> Result<(), Self::Error>;
    /// Finishes the sequence.
    ///
    /// # Errors
    ///
    /// Propagates serializer failures.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Tuple sub-serializer.
pub trait SerializeTuple {
    /// Format success type.
    type Ok;
    /// Format error type.
    type Error: Error;
    /// Serializes one element.
    ///
    /// # Errors
    ///
    /// Propagates serializer failures.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T)
        -> Result<(), Self::Error>;
    /// Finishes the tuple.
    ///
    /// # Errors
    ///
    /// Propagates serializer failures.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Tuple-struct sub-serializer.
pub trait SerializeTupleStruct {
    /// Format success type.
    type Ok;
    /// Format error type.
    type Error: Error;
    /// Serializes one field.
    ///
    /// # Errors
    ///
    /// Propagates serializer failures.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the struct.
    ///
    /// # Errors
    ///
    /// Propagates serializer failures.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Tuple-variant sub-serializer.
pub trait SerializeTupleVariant {
    /// Format success type.
    type Ok;
    /// Format error type.
    type Error: Error;
    /// Serializes one field.
    ///
    /// # Errors
    ///
    /// Propagates serializer failures.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the variant.
    ///
    /// # Errors
    ///
    /// Propagates serializer failures.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Map sub-serializer.
pub trait SerializeMap {
    /// Format success type.
    type Ok;
    /// Format error type.
    type Error: Error;
    /// Serializes one key.
    ///
    /// # Errors
    ///
    /// Propagates serializer failures.
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
    /// Serializes one value.
    ///
    /// # Errors
    ///
    /// Propagates serializer failures.
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the map.
    ///
    /// # Errors
    ///
    /// Propagates serializer failures.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Struct sub-serializer.
pub trait SerializeStruct {
    /// Format success type.
    type Ok;
    /// Format error type.
    type Error: Error;
    /// Serializes one named field.
    ///
    /// # Errors
    ///
    /// Propagates serializer failures.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct.
    ///
    /// # Errors
    ///
    /// Propagates serializer failures.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Struct-variant sub-serializer.
pub trait SerializeStructVariant {
    /// Format success type.
    type Ok;
    /// Format error type.
    type Error: Error;
    /// Serializes one named field.
    ///
    /// # Errors
    ///
    /// Propagates serializer failures.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the variant.
    ///
    /// # Errors
    ///
    /// Propagates serializer failures.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---------------------------------------------------------------------
// Serialize impls for std types.
// ---------------------------------------------------------------------

macro_rules! serialize_primitive {
    ($($ty:ty => $method:ident),* $(,)?) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self)
            }
        }
    )*};
}

serialize_primitive! {
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(value) => serializer.serialize_some(value),
            None => serializer.serialize_none(),
        }
    }
}

fn serialize_iter<S, I>(serializer: S, len: usize, iter: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    I: IntoIterator,
    I::Item: Serialize,
{
    let mut seq = serializer.serialize_seq(Some(len))?;
    for item in iter {
        SerializeSeq::serialize_element(&mut seq, &item)?;
    }
    SerializeSeq::end(seq)
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tup = serializer.serialize_tuple(N)?;
        for item in self {
            SerializeTuple::serialize_element(&mut tup, item)?;
        }
        SerializeTuple::end(tup)
    }
}

impl<T: Serialize, S2: BuildHasher> Serialize for HashSet<T, S2> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

fn serialize_map_iter<'a, S, K, V, I>(serializer: S, len: usize, iter: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: IntoIterator<Item = (&'a K, &'a V)>,
{
    let mut map = serializer.serialize_map(Some(len))?;
    for (key, value) in iter {
        SerializeMap::serialize_key(&mut map, key)?;
        SerializeMap::serialize_value(&mut map, value)?;
    }
    SerializeMap::end(map)
}

impl<K: Serialize, V: Serialize, S2: BuildHasher> Serialize for HashMap<K, V, S2>
where
    K: Eq + Hash,
{
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_map_iter(serializer, self.len(), self)
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_map_iter(serializer, self.len(), self)
    }
}

macro_rules! serialize_tuple_impl {
    ($len:expr => $(($idx:tt $name:ident))+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut tup = serializer.serialize_tuple($len)?;
                $( SerializeTuple::serialize_element(&mut tup, &self.$idx)?; )+
                SerializeTuple::end(tup)
            }
        }
    };
}

serialize_tuple_impl!(1 => (0 A));
serialize_tuple_impl!(2 => (0 A) (1 B));
serialize_tuple_impl!(3 => (0 A) (1 B) (2 C));
serialize_tuple_impl!(4 => (0 A) (1 B) (2 C) (3 D));
serialize_tuple_impl!(5 => (0 A) (1 B) (2 C) (3 D) (4 E));
serialize_tuple_impl!(6 => (0 A) (1 B) (2 C) (3 D) (4 E) (5 F));
serialize_tuple_impl!(7 => (0 A) (1 B) (2 C) (3 D) (4 E) (5 F) (6 G));
serialize_tuple_impl!(8 => (0 A) (1 B) (2 C) (3 D) (4 E) (5 F) (6 G) (7 H));

impl<T: Serialize, E: Serialize> Serialize for std::result::Result<T, E> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Ok(value) => serializer.serialize_newtype_variant("Result", 0, "Ok", value),
            Err(err) => serializer.serialize_newtype_variant("Result", 1, "Err", err),
        }
    }
}
