//! Minimal offline stand-in for the `crossbeam` facade crate.
//!
//! Only the API surface this workspace uses is provided: scoped threads
//! (`crossbeam::scope` / `crossbeam::thread::scope`), implemented on top
//! of `std::thread::scope`. Semantics match crossbeam closely enough for
//! our call sites: `scope` returns `Ok(..)` with the closure's value and
//! propagates panics from spawned threads (std's scoped threads re-raise
//! the panic instead of returning `Err`, which is strictly stricter).

pub mod thread {
    use std::any::Any;

    /// Result type of [`scope`] and [`ScopedJoinHandle::join`].
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope for spawning threads that may borrow from the enclosing
    /// stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish and returns its result.
        ///
        /// # Errors
        ///
        /// Returns the panic payload if the thread panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a reference to the
        /// scope so nested spawns are possible, mirroring crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Creates a scope in which borrowed-data threads can be spawned.
    ///
    /// # Errors
    ///
    /// Never returns `Err` in this implementation; panics from spawned
    /// threads are propagated by `std::thread::scope` instead.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total = crate::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_via_scope_argument() {
        let out = crate::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().unwrap()).join().unwrap()
        })
        .unwrap();
        assert_eq!(out, 7);
    }
}
