//! Fault-injection suite (`--features faults`): injects I/O errors,
//! torn writes and mid-epoch crashes through the failpoint registry and
//! proves the crash-safety layer holds — destinations stay intact,
//! corruption is detected at load, and a crashed-and-resumed training
//! run is byte-identical to an uninterrupted one.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};
use typilus::faults::{self, Fault};
use typilus::{
    atomic_io, train_with_options, EncoderKind, LossKind, ModelConfig, Parallelism, PersistError,
    PreparedCorpus, TrainError, TrainOptions, TypilusConfig,
};
use typilus_corpus::{generate, CorpusConfig};

/// The failpoint registry is process-global: every test takes this
/// lock, starts disarmed, and disarms again on drop (even when the
/// test's body panics).
fn faults_session() -> FaultSession {
    static LOCK: Mutex<()> = Mutex::new(());
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    faults::disarm_all();
    FaultSession(guard)
}

struct FaultSession(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for FaultSession {
    fn drop(&mut self) {
        faults::disarm_all();
    }
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("typilus_faults_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp workdir");
    dir
}

fn prepared() -> PreparedCorpus {
    let corpus = generate(&CorpusConfig {
        files: 10,
        seed: 5,
        ..CorpusConfig::default()
    });
    PreparedCorpus::from_corpus(&corpus, &typilus::GraphConfig::default(), 5)
}

fn config() -> TypilusConfig {
    TypilusConfig {
        model: ModelConfig {
            encoder: EncoderKind::Graph,
            loss: LossKind::Typilus,
            dim: 8,
            gnn_steps: 2,
            min_subtoken_count: 1,
            seed: 5,
            ..ModelConfig::default()
        },
        epochs: 3,
        batch_size: 4,
        lr: 0.02,
        seed: 5,
        parallelism: Parallelism::fixed(1),
        ..TypilusConfig::default()
    }
}

#[test]
fn io_error_at_every_protocol_step_leaves_the_destination_intact() {
    let _session = faults_session();
    let dir = workdir("protocol");
    let path = dir.join("artifact.bin");
    atomic_io::write_artifact(&path, b"the good payload").unwrap();
    for site in [
        "atomic_io.create",
        "atomic_io.write",
        "atomic_io.sync",
        "atomic_io.rename",
    ] {
        faults::arm(site, Fault::IoError);
        let result = atomic_io::write_artifact(&path, b"the replacement");
        assert!(result.is_err(), "injected {site} failure surfaces");
        faults::disarm_all();
        assert_eq!(
            atomic_io::read_artifact(&path).unwrap(),
            b"the good payload",
            "{site} failure must not touch the destination"
        );
        assert!(
            !dir.join(".artifact.bin.tmp").exists(),
            "{site} failure must not leave a temp file"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_torn_write_is_detected_at_load() {
    let _session = faults_session();
    let dir = workdir("torn");
    let path = dir.join("artifact.bin");
    // The filesystem reports success but only 7 bytes land — the torn
    // write slips past the protocol and must be caught by the footer.
    faults::arm("atomic_io.write", Fault::ShortWrite(7));
    atomic_io::write_artifact(&path, b"a payload that deserved better").unwrap();
    faults::disarm_all();
    assert!(
        matches!(
            atomic_io::read_artifact(&path),
            Err(PersistError::MissingFooter | PersistError::Truncated { .. })
        ),
        "torn artifact must fail the integrity check"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mid_epoch_crash_then_resume_is_byte_identical() {
    let _session = faults_session();
    let data = prepared();
    let config = config();
    let reference = train_with_options(&data, &config, &TrainOptions::default())
        .expect("uninterrupted run")
        .to_bytes()
        .expect("serialize reference");

    let dir = workdir("midepoch");
    // The reference run above already bumped the `train.batch` hit
    // counter; clear it so the skip count below is relative to the
    // crashing run.
    faults::disarm_all();
    // Let every batch of epoch 0 pass, then crash in the middle of
    // epoch 1 — after the epoch-0001 checkpoint, before epoch-0002.
    let batches_per_epoch = data.split.train.len().div_ceil(config.batch_size);
    faults::arm_at("train.batch", Fault::Panic, batches_per_epoch);
    let opts = TrainOptions {
        checkpoint_dir: Some(dir.clone()),
        resume: false,
        kill_after_epoch: None,
    };
    let crash = catch_unwind(AssertUnwindSafe(|| {
        train_with_options(&data, &config, &opts).map(|_| ())
    }));
    faults::disarm_all();
    assert!(crash.is_err(), "the injected mid-epoch panic fires");
    assert!(
        dir.join(typilus::checkpoint::file_name(1)).exists(),
        "the epoch-0001 checkpoint survives the crash"
    );

    let resumed = train_with_options(
        &data,
        &config,
        &TrainOptions {
            checkpoint_dir: Some(dir.clone()),
            resume: true,
            kill_after_epoch: None,
        },
    )
    .expect("resume after the crash");
    assert_eq!(
        resumed.to_bytes().unwrap(),
        reference,
        "crash-and-resume diverged from the uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_write_failure_surfaces_as_a_typed_train_error() {
    let _session = faults_session();
    let data = prepared();
    let config = config();
    let dir = workdir("ckptfail");
    faults::arm("atomic_io.rename", Fault::IoError);
    let result = train_with_options(
        &data,
        &config,
        &TrainOptions {
            checkpoint_dir: Some(dir.clone()),
            resume: false,
            kill_after_epoch: None,
        },
    );
    faults::disarm_all();
    assert!(
        matches!(result, Err(TrainError::Checkpoint(_))),
        "a failing checkpoint write must abort the run with a typed error"
    );
    std::fs::remove_dir_all(&dir).ok();
}
