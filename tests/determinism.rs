//! Reproducibility: identical seeds produce identical corpora, graphs,
//! training trajectories and predictions.

use typilus::{train, EncoderKind, LossKind, ModelConfig, PreparedCorpus, TypilusConfig};
use typilus_corpus::{generate, CorpusConfig};

fn run(seed: u64) -> (Vec<f32>, Vec<String>) {
    let corpus = generate(&CorpusConfig {
        files: 16,
        seed,
        ..CorpusConfig::default()
    });
    let data = PreparedCorpus::from_corpus(&corpus, &typilus::GraphConfig::default(), seed);
    let config = TypilusConfig {
        model: ModelConfig {
            encoder: EncoderKind::Graph,
            loss: LossKind::Typilus,
            dim: 12,
            gnn_steps: 2,
            min_subtoken_count: 1,
            seed,
            ..ModelConfig::default()
        },
        epochs: 3,
        batch_size: 8,
        lr: 0.02,
        seed,
        ..TypilusConfig::default()
    };
    let system = train(&data, &config);
    let losses: Vec<f32> = system.epochs.iter().map(|e| e.mean_loss).collect();
    let preds: Vec<String> = data
        .split
        .test
        .iter()
        .flat_map(|&i| system.predict_file(&data, i))
        .map(|p| {
            format!(
                "{}:{}",
                p.name,
                p.top().map(|t| t.ty.to_string()).unwrap_or_default()
            )
        })
        .collect();
    (losses, preds)
}

#[test]
fn identical_seeds_reproduce_everything() {
    let (l1, p1) = run(42);
    let (l2, p2) = run(42);
    assert_eq!(l1, l2, "training losses must be bit-identical");
    assert_eq!(p1, p2, "predictions must be identical");
}

#[test]
fn different_seeds_differ() {
    let (l1, _) = run(42);
    let (l2, _) = run(43);
    assert_ne!(l1, l2, "different seeds should produce different runs");
}
