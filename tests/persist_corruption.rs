//! Property-based corruption detection: any byte flip or truncation of
//! a saved `TrainedSystem` artifact must surface as a typed
//! [`PersistError`] — never a panic, never a silently wrong model.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use typilus::{
    train, EncoderKind, LossKind, ModelConfig, PersistError, PreparedCorpus, TrainedSystem,
    TypilusConfig,
};
use typilus_corpus::{generate, CorpusConfig};

/// The on-disk bytes of one tiny trained system, produced once and
/// shared by every proptest case.
fn saved_artifact() -> &'static [u8] {
    static SAVED: OnceLock<Vec<u8>> = OnceLock::new();
    SAVED.get_or_init(|| {
        let corpus = generate(&CorpusConfig {
            files: 6,
            seed: 11,
            ..CorpusConfig::default()
        });
        let data = PreparedCorpus::from_corpus(&corpus, &typilus::GraphConfig::default(), 11);
        let config = TypilusConfig {
            model: ModelConfig {
                encoder: EncoderKind::Graph,
                loss: LossKind::Typilus,
                dim: 6,
                gnn_steps: 1,
                min_subtoken_count: 1,
                seed: 11,
                ..ModelConfig::default()
            },
            epochs: 1,
            batch_size: 4,
            seed: 11,
            ..TypilusConfig::default()
        };
        let system = train(&data, &config);
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "typilus_corruption_ref_{}.typilus",
            std::process::id()
        ));
        system.save(&path).expect("save reference artifact");
        let bytes = std::fs::read(&path).expect("read reference artifact back");
        std::fs::remove_file(&path).ok();
        bytes
    })
}

/// Writes one corrupted variant to its own file and tries to load it.
fn load_corrupted(bytes: &[u8]) -> Result<TrainedSystem, PersistError> {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let path: PathBuf = std::env::temp_dir().join(format!(
        "typilus_corruption_{}_{case}.typilus",
        std::process::id()
    ));
    std::fs::write(&path, bytes).expect("write corrupted variant");
    let result = TrainedSystem::load(&path);
    std::fs::remove_file(&path).ok();
    result
}

fn is_typed_corruption(e: &PersistError) -> bool {
    matches!(
        e,
        PersistError::MissingFooter
            | PersistError::Truncated { .. }
            | PersistError::ChecksumMismatch { .. }
    )
}

proptest! {
    #[test]
    fn any_byte_flip_is_rejected_with_a_typed_error(
        pos in any::<usize>(),
        mask in 1u8..=255u8,
    ) {
        let good = saved_artifact();
        let mut corrupt = good.to_vec();
        let at = pos % corrupt.len();
        corrupt[at] ^= mask;
        match load_corrupted(&corrupt) {
            Ok(_) => prop_assert!(false, "flip at {at} loaded as a model"),
            Err(e) => prop_assert!(
                is_typed_corruption(&e),
                "flip at {at} gave a non-corruption error: {e}"
            ),
        }
    }

    #[test]
    fn any_truncation_is_rejected_with_a_typed_error(
        keep in any::<usize>(),
    ) {
        let good = saved_artifact();
        // Every proper prefix, including the empty file.
        let keep = keep % good.len();
        match load_corrupted(&good[..keep]) {
            Ok(_) => prop_assert!(false, "prefix of {keep} bytes loaded as a model"),
            Err(e) => prop_assert!(
                is_typed_corruption(&e),
                "prefix of {keep} bytes gave a non-corruption error: {e}"
            ),
        }
    }
}

#[test]
fn the_intact_artifact_still_loads() {
    let good = saved_artifact();
    let system = load_corrupted(good).expect("intact bytes load");
    assert_eq!(
        system.to_bytes().expect("re-serialize"),
        &good[..good.len() - typilus::atomic_io::FOOTER_LEN],
        "the loaded system re-serializes to the original payload"
    );
}
