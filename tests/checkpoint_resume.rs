//! Crash-safe training: a run killed at any epoch boundary and resumed
//! from its checkpoint must produce a **byte-identical** trained system,
//! and resume must fall back past corrupt checkpoints.

use std::path::PathBuf;
use typilus::{
    train_with_options, EncoderKind, LossKind, ModelConfig, Parallelism, PersistError,
    PreparedCorpus, TrainError, TrainOptions, TypilusConfig,
};
use typilus_corpus::{generate, CorpusConfig};

fn prepared() -> PreparedCorpus {
    let corpus = generate(&CorpusConfig {
        files: 12,
        seed: 7,
        ..CorpusConfig::default()
    });
    PreparedCorpus::from_corpus(&corpus, &typilus::GraphConfig::default(), 7)
}

fn config(threads: usize) -> TypilusConfig {
    TypilusConfig {
        model: ModelConfig {
            encoder: EncoderKind::Graph,
            loss: LossKind::Typilus,
            dim: 8,
            gnn_steps: 2,
            min_subtoken_count: 1,
            seed: 7,
            ..ModelConfig::default()
        },
        epochs: 3,
        batch_size: 4,
        lr: 0.02,
        seed: 7,
        parallelism: Parallelism::fixed(threads),
        ..TypilusConfig::default()
    }
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("typilus_ckpt_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp workdir");
    dir
}

/// The uninterrupted run's serialized system — the byte-identity
/// reference for every resume scenario.
fn reference_bytes(data: &PreparedCorpus, config: &TypilusConfig) -> Vec<u8> {
    train_with_options(data, config, &TrainOptions::default())
        .expect("uninterrupted run")
        .to_bytes()
        .expect("serialize reference system")
}

#[test]
fn kill_after_every_epoch_then_resume_is_byte_identical() {
    let data = prepared();
    let config = config(1);
    let reference = reference_bytes(&data, &config);
    for kill_epoch in 0..config.epochs {
        let dir = workdir(&format!("kill{kill_epoch}"));
        let killed = train_with_options(
            &data,
            &config,
            &TrainOptions {
                checkpoint_dir: Some(dir.clone()),
                resume: false,
                kill_after_epoch: Some(kill_epoch),
            },
        );
        assert!(
            matches!(killed, Err(TrainError::Killed { epoch }) if epoch == kill_epoch),
            "kill at epoch {kill_epoch} fires"
        );
        let resumed = train_with_options(
            &data,
            &config,
            &TrainOptions {
                checkpoint_dir: Some(dir.clone()),
                resume: true,
                kill_after_epoch: None,
            },
        )
        .expect("resumed run completes");
        assert_eq!(
            resumed.to_bytes().expect("serialize resumed system"),
            reference,
            "resume after epoch {kill_epoch} diverged from the uninterrupted run"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn resume_at_a_different_thread_count_is_byte_identical() {
    let data = prepared();
    let reference = reference_bytes(&data, &config(1));
    let dir = workdir("threads");
    let killed = train_with_options(
        &data,
        &config(1),
        &TrainOptions {
            checkpoint_dir: Some(dir.clone()),
            resume: false,
            kill_after_epoch: Some(0),
        },
    );
    assert!(matches!(killed, Err(TrainError::Killed { epoch: 0 })));
    // The checkpoint serializes parallelism as auto-detect, so a
    // machine with a different core count (here: an explicit 4) can
    // pick the run up and still reproduce it bit-for-bit.
    let resumed = train_with_options(
        &data,
        &config(4),
        &TrainOptions {
            checkpoint_dir: Some(dir.clone()),
            resume: true,
            kill_after_epoch: None,
        },
    )
    .expect("resumed run completes");
    assert_eq!(resumed.to_bytes().unwrap(), reference);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_falls_back_past_a_corrupt_newest_checkpoint() {
    let data = prepared();
    let config = config(1);
    let reference = reference_bytes(&data, &config);
    let dir = workdir("fallback");
    let killed = train_with_options(
        &data,
        &config,
        &TrainOptions {
            checkpoint_dir: Some(dir.clone()),
            resume: false,
            kill_after_epoch: Some(1),
        },
    );
    assert!(matches!(killed, Err(TrainError::Killed { epoch: 1 })));
    // Corrupt the newest checkpoint (epoch 2 = two epochs done); the
    // epoch-1 checkpoint stays valid underneath it.
    let newest = dir.join(typilus::checkpoint::file_name(2));
    let bytes = std::fs::read(&newest).expect("newest checkpoint exists");
    std::fs::write(&newest, &bytes[..bytes.len() / 2]).expect("truncate newest");
    let resumed = train_with_options(
        &data,
        &config,
        &TrainOptions {
            checkpoint_dir: Some(dir.clone()),
            resume: true,
            kill_after_epoch: None,
        },
    )
    .expect("resume survives a corrupt newest checkpoint");
    assert_eq!(
        resumed.to_bytes().unwrap(),
        reference,
        "fallback resume diverged from the uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_with_every_checkpoint_corrupt_trains_from_scratch() {
    let data = prepared();
    let config = config(1);
    let reference = reference_bytes(&data, &config);
    let dir = workdir("allcorrupt");
    let killed = train_with_options(
        &data,
        &config,
        &TrainOptions {
            checkpoint_dir: Some(dir.clone()),
            resume: false,
            kill_after_epoch: Some(1),
        },
    );
    assert!(matches!(killed, Err(TrainError::Killed { epoch: 1 })));
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        std::fs::write(&path, b"garbage").unwrap();
    }
    let resumed = train_with_options(
        &data,
        &config,
        &TrainOptions {
            checkpoint_dir: Some(dir.clone()),
            resume: true,
            kill_after_epoch: None,
        },
    )
    .expect("resume degrades to a fresh start");
    assert_eq!(resumed.to_bytes().unwrap(), reference);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_under_a_different_config_is_rejected() {
    let data = prepared();
    let dir = workdir("mismatch");
    let killed = train_with_options(
        &data,
        &config(1),
        &TrainOptions {
            checkpoint_dir: Some(dir.clone()),
            resume: false,
            kill_after_epoch: Some(0),
        },
    );
    assert!(matches!(killed, Err(TrainError::Killed { epoch: 0 })));
    let mut other = config(1);
    other.lr = 0.05;
    let result = train_with_options(
        &data,
        &other,
        &TrainOptions {
            checkpoint_dir: Some(dir.clone()),
            resume: true,
            kill_after_epoch: None,
        },
    );
    assert!(
        matches!(result, Err(TrainError::ConfigMismatch { .. })),
        "a checkpoint from a different config must not be resumed"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_without_a_checkpoint_dir_is_an_error() {
    let data = prepared();
    let result = train_with_options(
        &data,
        &config(1),
        &TrainOptions {
            checkpoint_dir: None,
            resume: true,
            kill_after_epoch: None,
        },
    );
    assert!(matches!(result, Err(TrainError::ResumeWithoutDir)));
}

#[test]
fn checkpoints_reject_corruption_with_typed_errors() {
    let data = prepared();
    let config = config(1);
    let dir = workdir("typed");
    let killed = train_with_options(
        &data,
        &config,
        &TrainOptions {
            checkpoint_dir: Some(dir.clone()),
            resume: false,
            kill_after_epoch: Some(0),
        },
    );
    assert!(matches!(killed, Err(TrainError::Killed { epoch: 0 })));
    let path = dir.join(typilus::checkpoint::file_name(1));
    let good = std::fs::read(&path).unwrap();

    // Truncation that loses the footer.
    std::fs::write(&path, &good[..good.len() - 5]).unwrap();
    assert!(matches!(
        typilus::checkpoint::load(&path),
        Err(PersistError::MissingFooter | PersistError::Truncated { .. })
    ));

    // A single flipped payload byte.
    let mut flipped = good.clone();
    flipped[good.len() / 3] ^= 0x10;
    std::fs::write(&path, &flipped).unwrap();
    assert!(matches!(
        typilus::checkpoint::load(&path),
        Err(PersistError::ChecksumMismatch { .. })
    ));

    // Intact bytes still load.
    std::fs::write(&path, &good).unwrap();
    let checkpoint = typilus::checkpoint::load(&path).expect("intact checkpoint loads");
    assert_eq!(checkpoint.epochs_done, 1);
    std::fs::remove_dir_all(&dir).ok();
}
