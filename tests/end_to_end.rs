//! End-to-end pipeline test: corpus → graphs → training → TypeSpace →
//! predictions → metrics. Uses a small configuration so it runs quickly
//! in debug builds; the bench harness exercises paper-scale settings.

use typilus::{
    evaluate_files, table2_row, train, EncoderKind, LossKind, ModelConfig, PreparedCorpus,
    TypilusConfig,
};
use typilus_corpus::{generate, CorpusConfig};

fn small_data(files: usize, seed: u64) -> PreparedCorpus {
    let corpus = generate(&CorpusConfig {
        files,
        seed,
        ..CorpusConfig::default()
    });
    PreparedCorpus::from_corpus(&corpus, &typilus::GraphConfig::default(), seed)
}

fn small_config(encoder: EncoderKind, loss: LossKind) -> TypilusConfig {
    TypilusConfig {
        model: ModelConfig {
            encoder,
            loss,
            dim: 16,
            gnn_steps: 3,
            min_subtoken_count: 1,
            ..ModelConfig::default()
        },
        epochs: 6,
        batch_size: 8,
        lr: 0.02,
        common_threshold: 8,
        ..TypilusConfig::default()
    }
}

#[test]
fn typilus_learns_to_predict_common_types() {
    let data = small_data(40, 7);
    let config = small_config(EncoderKind::Graph, LossKind::Typilus);
    let system = train(&data, &config);

    // Training made progress.
    let first = system.epochs.first().unwrap().mean_loss;
    let last = system.epochs.last().unwrap().mean_loss;
    assert!(last < first, "loss should decrease: {first} -> {last}");

    // The type map holds the training+validation annotations.
    assert!(
        system.type_map.len() > 100,
        "type map too small: {}",
        system.type_map.len()
    );
    assert!(system.type_map.distinct_types() > 10);

    // Test-split evaluation: well above chance on common types.
    let examples = evaluate_files(&system, &data, &data.split.test);
    assert!(
        examples.len() > 30,
        "too few eval examples: {}",
        examples.len()
    );
    let row = table2_row(&examples, &system.hierarchy, config.common_threshold);
    assert!(
        row.exact_common > 30.0,
        "common-type exact match too low: {row:?}"
    );
    assert!(
        row.neutral >= row.exact_all - 1e-9,
        "neutrality dominates exact match"
    );
    assert!(
        row.para_all >= row.exact_all - 1e-9,
        "up-to-parametric dominates exact: {row:?}"
    );
}

#[test]
fn predictions_are_ranked_with_probabilities() {
    let data = small_data(30, 3);
    let system = train(&data, &small_config(EncoderKind::Graph, LossKind::Typilus));
    let preds = system.predict_file(&data, data.split.test[0]);
    assert!(!preds.is_empty());
    for p in &preds {
        let mut last = f32::INFINITY;
        let mut total = 0.0;
        for c in &p.candidates {
            assert!(c.probability <= last + 1e-6, "candidates must be sorted");
            last = c.probability;
            total += c.probability;
        }
        if !p.candidates.is_empty() {
            assert!(
                (total - 1.0).abs() < 1e-3,
                "probabilities sum to 1, got {total}"
            );
        }
    }
}

#[test]
fn predict_source_works_on_fresh_code() {
    let data = small_data(30, 5);
    let system = train(&data, &small_config(EncoderKind::Graph, LossKind::Typilus));
    let preds = system
        .predict_source("def scale(count, factor):\n    total = count * 2\n    return total\n")
        .expect("valid source");
    let names: Vec<&str> = preds.iter().map(|p| p.name.as_str()).collect();
    assert!(names.contains(&"count"));
    assert!(names.contains(&"total"));
    // At least some predictions come back with candidates.
    assert!(preds.iter().any(|p| !p.candidates.is_empty()));
}

#[test]
fn classification_model_also_trains() {
    let data = small_data(30, 9);
    let system = train(&data, &small_config(EncoderKind::Graph, LossKind::Class));
    let examples = evaluate_files(&system, &data, &data.split.test);
    assert!(!examples.is_empty());
    // Classification models emit exactly one candidate per symbol.
    for e in &examples {
        assert!(e.prediction.candidates.len() <= 1);
    }
    let row = table2_row(&examples, &system.hierarchy, 8);
    assert!(
        row.exact_common > 20.0,
        "classifier should learn common types: {row:?}"
    );
}
