//! The Sec. 6.3 experiment end to end: substituting predictions one at a
//! time and judging them with the optional type checker.

use typilus::{
    check_pr_curve, check_predictions, train, Category, CheckerProfile, EncoderKind, LossKind,
    ModelConfig, PreparedCorpus, TypilusConfig,
};
use typilus_corpus::{generate, CorpusConfig};

fn system_and_data() -> (typilus::TrainedSystem, PreparedCorpus) {
    let corpus = generate(&CorpusConfig {
        files: 36,
        seed: 13,
        ..CorpusConfig::default()
    });
    let data = PreparedCorpus::from_corpus(&corpus, &typilus::GraphConfig::default(), 13);
    let config = TypilusConfig {
        model: ModelConfig {
            encoder: EncoderKind::Graph,
            loss: LossKind::Typilus,
            dim: 16,
            gnn_steps: 3,
            min_subtoken_count: 1,
            ..ModelConfig::default()
        },
        epochs: 6,
        batch_size: 8,
        lr: 0.02,
        common_threshold: 8,
        ..TypilusConfig::default()
    };
    (train(&data, &config), data)
}

#[test]
fn same_annotation_substitutions_always_pass() {
    let (system, data) = system_and_data();
    for profile in [CheckerProfile::Mypy, CheckerProfile::Pytype] {
        let (_, table) = check_predictions(&system, &data, &data.split.test, profile, 0.0);
        // The τ→τ sanity row of Table 5: re-inserting the existing
        // annotation into a clean program cannot fail.
        assert!(
            (table.same.accuracy() - 100.0).abs() < 1e-9,
            "τ→τ must be 100% under {profile:?}: {:?}",
            table.same
        );
    }
}

#[test]
fn most_predictions_type_check() {
    let (system, data) = system_and_data();
    let (outcomes, table) =
        check_predictions(&system, &data, &data.split.test, CheckerProfile::Mypy, 0.0);
    assert!(table.assessed_files > 0, "some test files must be clean");
    let overall = table.overall();
    assert!(
        overall.total > 20,
        "too few substitutions assessed: {overall:?}"
    );
    // Paper: 89% (mypy) / 83% (pytype) of predictions cause no error.
    // We require a clear majority at laptop scale.
    assert!(
        overall.accuracy() > 60.0,
        "accuracy too low: {:.1}% of {}",
        overall.accuracy(),
        overall.total
    );
    assert!(!outcomes.is_empty());
}

#[test]
fn fresh_annotations_dominate() {
    // Paper Table 5: ~95% of assessed predictions are ϵ→τ (most symbols
    // are unannotated). Our corpus is more annotated, so we only require
    // that the fresh category is non-trivial.
    let (system, data) = system_and_data();
    let (_, table) = check_predictions(&system, &data, &data.split.test, CheckerProfile::Mypy, 0.0);
    assert!(table.fresh.total > 0, "expected ϵ→τ substitutions");
    let fresh_prop = table.proportion(Category::FreshAnnotation);
    assert!(
        fresh_prop > 10.0,
        "fresh proportion too small: {fresh_prop:.1}%"
    );
}

#[test]
fn pytype_profile_flags_at_least_as_much_as_mypy() {
    let (system, data) = system_and_data();
    let (_, mypy) = check_predictions(&system, &data, &data.split.test, CheckerProfile::Mypy, 0.0);
    let (_, pytype) = check_predictions(
        &system,
        &data,
        &data.split.test,
        CheckerProfile::Pytype,
        0.0,
    );
    // pytype's extra inference catches more errors, so its accuracy is
    // at most mypy's (83% vs 89% in the paper). Tolerance for noise.
    assert!(
        pytype.overall().accuracy() <= mypy.overall().accuracy() + 5.0,
        "pytype {:.1}% should not exceed mypy {:.1}% by much",
        pytype.overall().accuracy(),
        mypy.overall().accuracy()
    );
}

#[test]
fn confidence_threshold_trades_recall_for_precision() {
    let (system, data) = system_and_data();
    let (outcomes, _) =
        check_predictions(&system, &data, &data.split.test, CheckerProfile::Mypy, 0.0);
    let curve = check_pr_curve(&outcomes, &[0.0, 0.5, 0.9]);
    assert!(curve[0].recall >= curve[1].recall);
    assert!(curve[1].recall >= curve[2].recall);
    // Precision at high confidence is at least precision at zero
    // threshold (within noise).
    assert!(curve[2].precision + 0.10 >= curve[0].precision);
}
