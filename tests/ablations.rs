//! Ablation shape tests (paper Table 4) and approximate-index fidelity,
//! at a scale small enough for CI.

use typilus::{
    evaluate_files, train, EdgeSet, EncoderKind, GraphConfig, KnnConfig, LossKind, MatchRates,
    ModelConfig, PreparedCorpus, TypilusConfig,
};
use typilus_corpus::{generate, CorpusConfig};
use typilus_space::RpForestConfig;

fn run_with_edges(edges: EdgeSet, files: usize, epochs: usize) -> (f64, usize) {
    let corpus = generate(&CorpusConfig {
        files,
        seed: 17,
        ..CorpusConfig::default()
    });
    let graph = GraphConfig {
        edges,
        ..GraphConfig::default()
    };
    let data = PreparedCorpus::from_corpus(&corpus, &graph, 17);
    let config = TypilusConfig {
        model: ModelConfig {
            encoder: EncoderKind::Graph,
            loss: LossKind::Typilus,
            dim: 16,
            gnn_steps: 3,
            min_subtoken_count: 1,
            ..ModelConfig::default()
        },
        graph,
        epochs,
        batch_size: 8,
        lr: 0.02,
        common_threshold: 8,
        ..TypilusConfig::default()
    };
    let system = train(&data, &config);
    let examples = evaluate_files(&system, &data, &data.split.test);
    let rates = MatchRates::compute(&examples, &system.hierarchy, |_| true);
    (rates.exact, rates.count)
}

#[test]
fn edge_ablations_change_outcomes() {
    let (full, n_full) = run_with_edges(EdgeSet::all(), 40, 6);
    let (names_only, n_names) = run_with_edges(EdgeSet::only_names(), 40, 6);
    assert_eq!(n_full, n_names, "same evaluation set");
    // Table 4 shape with slack for the small scale: removing all
    // relational edges should not *beat* the full model by a margin,
    // and the full model should be usable.
    assert!(full > 20.0, "full model too weak: {full:.1}%");
    assert!(
        names_only <= full + 8.0,
        "only-names ({names_only:.1}%) should not outperform the full graph ({full:.1}%)"
    );
}

#[test]
fn approximate_index_preserves_predictions() {
    let corpus = generate(&CorpusConfig {
        files: 40,
        seed: 19,
        ..CorpusConfig::default()
    });
    let data = PreparedCorpus::from_corpus(&corpus, &GraphConfig::default(), 19);
    let config = TypilusConfig {
        model: ModelConfig {
            encoder: EncoderKind::Graph,
            loss: LossKind::Typilus,
            dim: 16,
            gnn_steps: 3,
            min_subtoken_count: 1,
            ..ModelConfig::default()
        },
        epochs: 5,
        batch_size: 8,
        lr: 0.02,
        knn: KnnConfig::default(),
        common_threshold: 8,
        ..TypilusConfig::default()
    };
    let exact_system = train(&data, &config);
    let mut approx_system = exact_system.clone();
    approx_system.type_map.build_index(
        RpForestConfig {
            trees: 12,
            leaf_size: 16,
            search_k: 512,
        },
        7,
    );
    let mut total = 0usize;
    let mut agree = 0usize;
    for &idx in &data.split.test {
        let a = exact_system.predict_file(&data, idx);
        let b = approx_system.predict_file(&data, idx);
        for (x, y) in a.iter().zip(&b) {
            let (Some(tx), Some(ty)) = (x.top(), y.top()) else {
                continue;
            };
            total += 1;
            if tx.ty == ty.ty {
                agree += 1;
            }
        }
    }
    assert!(total > 30, "too few comparisons: {total}");
    let agreement = agree as f64 / total as f64;
    assert!(
        agreement >= 0.9,
        "approximate index agreement too low: {agreement:.2} ({agree}/{total})"
    );
}
