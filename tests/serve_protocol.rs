//! Protocol-level tests of the serve daemon: hostile frames, abrupt
//! disconnects, typed error replies, concurrent batched prediction vs
//! one-shot calls, and the no-artifact-writes guarantee. The server
//! must never panic on anything a client sends.

use std::sync::{Mutex, OnceLock};
use std::thread;
use typilus::{
    train, EncoderKind, GraphConfig, LossKind, ModelConfig, PreparedCorpus, TrainedSystem,
    TypilusConfig,
};
use typilus_corpus::{generate, CorpusConfig};
use typilus_serve::{
    Client, ClientError, ClientOptions, Endpoint, ErrorCode, Health, Request, Response,
    ServeOptions, ServeSummary, Server, SymbolHints, MAX_FRAME_LEN,
};

/// One small trained system shared (by clone) across all tests.
fn fresh_system() -> TrainedSystem {
    static SYSTEM: OnceLock<Mutex<TrainedSystem>> = OnceLock::new();
    SYSTEM
        .get_or_init(|| {
            let corpus = generate(&CorpusConfig {
                files: 30,
                seed: 9,
                ..CorpusConfig::default()
            });
            let data = PreparedCorpus::from_corpus(&corpus, &GraphConfig::default(), 9);
            let config = TypilusConfig {
                model: ModelConfig {
                    encoder: EncoderKind::Graph,
                    loss: LossKind::Typilus,
                    dim: 16,
                    gnn_steps: 3,
                    min_subtoken_count: 1,
                    ..ModelConfig::default()
                },
                epochs: 4,
                batch_size: 8,
                lr: 0.02,
                common_threshold: 8,
                ..TypilusConfig::default()
            };
            Mutex::new(train(&data, &config))
        })
        .lock()
        .unwrap()
        .clone()
}

/// Binds an ephemeral TCP server over a clone of the fixture system
/// and runs it on its own thread; joining the handle yields the
/// summary and the (possibly mutated) system back.
fn start_server(
    options: ServeOptions,
) -> (Endpoint, thread::JoinHandle<(ServeSummary, TrainedSystem)>) {
    let mut system = fresh_system();
    let server = Server::bind(&Endpoint::Tcp("127.0.0.1:0".to_string()), options).unwrap();
    let endpoint = server.endpoint().clone();
    let handle = thread::spawn(move || {
        let summary = server.run(&mut system);
        (summary, system)
    });
    (endpoint, handle)
}

fn shutdown_and_join(
    endpoint: &Endpoint,
    handle: thread::JoinHandle<(ServeSummary, TrainedSystem)>,
) -> (ServeSummary, TrainedSystem) {
    let mut client = Client::connect(endpoint).unwrap();
    assert!(matches!(client.shutdown().unwrap(), Response::Bye));
    handle.join().unwrap()
}

const QUERY_SRC: &str =
    "def charge(flux_capacitor):\n    flux_capacitor.engage()\n    return flux_capacitor\n";
const BINDING_SRC: &str =
    "def drain(flux_capacitor):\n    flux_capacitor.engage()\n    return flux_capacitor\n";

#[test]
fn malformed_frame_gets_error_reply_and_connection_survives() {
    let (endpoint, handle) = start_server(ServeOptions::default());
    let mut client = Client::connect(&endpoint).unwrap();
    client.send_raw_frame(b"not a serbin request").unwrap();
    match client.read_reply().unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected malformed-frame error, got {other:?}"),
    }
    // Framing stayed intact: the same connection still serves.
    assert!(matches!(client.stats().unwrap(), Response::Stats(_)));
    shutdown_and_join(&endpoint, handle);
}

#[test]
fn oversized_frame_is_rejected_and_connection_drops() {
    let (endpoint, handle) = start_server(ServeOptions::default());
    let mut client = Client::connect(&endpoint).unwrap();
    // A hostile prefix announcing one byte past the limit; the stream
    // cannot be resynchronised after it, so the server replies and
    // hangs up without ever allocating the announced buffer.
    client
        .send_raw_bytes(&(MAX_FRAME_LEN + 1).to_le_bytes())
        .unwrap();
    match client.read_reply().unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Oversized),
        other => panic!("expected oversized-frame error, got {other:?}"),
    }
    assert!(client.read_reply().is_err(), "connection should be closed");
    // The server itself is unharmed.
    let mut fresh = Client::connect(&endpoint).unwrap();
    assert!(matches!(fresh.stats().unwrap(), Response::Stats(_)));
    shutdown_and_join(&endpoint, handle);
}

#[test]
fn mid_request_disconnect_leaves_server_serving() {
    let (endpoint, handle) = start_server(ServeOptions::default());
    {
        let mut rude = Client::connect(&endpoint).unwrap();
        // Announce a 100-byte frame, deliver 10 bytes, vanish.
        rude.send_raw_bytes(&100u32.to_le_bytes()).unwrap();
        rude.send_raw_bytes(b"0123456789").unwrap();
    }
    let mut fresh = Client::connect(&endpoint).unwrap();
    match fresh.predict(QUERY_SRC).unwrap() {
        Response::Predictions(symbols) => assert!(!symbols.is_empty()),
        other => panic!("expected predictions, got {other:?}"),
    }
    shutdown_and_join(&endpoint, handle);
}

#[test]
fn batched_concurrent_replies_match_one_shot_predictions() {
    let reference = fresh_system();
    let sources = [
        QUERY_SRC.to_string(),
        "def scale(values, factor):\n    return [v * factor for v in values]\n".to_string(),
        "def greet(name):\n    message = 'hi ' + name\n    return message\n".to_string(),
        "def total(counts):\n    acc = 0\n    for c in counts:\n        acc = acc + c\n    return acc\n"
            .to_string(),
    ];
    let expected: Vec<Vec<SymbolHints>> = sources
        .iter()
        .map(|s| {
            reference
                .predict_source(s)
                .unwrap()
                .iter()
                .map(SymbolHints::of)
                .collect()
        })
        .collect();

    let (endpoint, handle) = start_server(ServeOptions::default());
    let mut threads = Vec::new();
    // 3 clients per source, all in flight at once: batching and
    // interleaving must be invisible in the replies.
    for (src, want) in sources.iter().zip(&expected) {
        for _ in 0..3 {
            let endpoint = endpoint.clone();
            let src = src.clone();
            let want = want.clone();
            threads.push(thread::spawn(move || {
                let mut client = Client::connect(&endpoint).unwrap();
                match client.predict(&src).unwrap() {
                    Response::Predictions(got) => assert_eq!(got, want),
                    other => panic!("expected predictions, got {other:?}"),
                }
            }));
        }
    }
    for t in threads {
        t.join().unwrap();
    }
    let (summary, _) = shutdown_and_join(&endpoint, handle);
    assert_eq!(summary.predicts, 12);
    assert_eq!(summary.errors, 0);
}

#[test]
fn concurrent_add_marker_and_predict_stay_consistent() {
    let reference = fresh_system();
    let markers_before = reference.type_map.len();
    let before: Vec<SymbolHints> = reference
        .predict_source(QUERY_SRC)
        .unwrap()
        .iter()
        .map(SymbolHints::of)
        .collect();
    let mut mutated = reference.clone();
    mutated
        .add_marker(
            BINDING_SRC,
            "flux_capacitor",
            "quantum.FluxCapacitor".parse().unwrap(),
        )
        .unwrap();
    let after: Vec<SymbolHints> = mutated
        .predict_source(QUERY_SRC)
        .unwrap()
        .iter()
        .map(SymbolHints::of)
        .collect();

    let (endpoint, handle) = start_server(ServeOptions::default());
    let mut threads = Vec::new();
    for _ in 0..4 {
        let endpoint = endpoint.clone();
        let before = before.clone();
        let after = after.clone();
        threads.push(thread::spawn(move || {
            let mut client = Client::connect(&endpoint).unwrap();
            for _ in 0..5 {
                match client.predict(QUERY_SRC).unwrap() {
                    // The engine serializes jobs, so every reply is
                    // exactly the pre-add or post-add one-shot answer —
                    // never a torn in-between.
                    Response::Predictions(got) => {
                        assert!(got == before || got == after, "torn prediction: {got:?}")
                    }
                    other => panic!("expected predictions, got {other:?}"),
                }
            }
        }));
    }
    {
        let endpoint = endpoint.clone();
        threads.push(thread::spawn(move || {
            let mut client = Client::connect(&endpoint).unwrap();
            match client
                .add_marker(BINDING_SRC, "flux_capacitor", "quantum.FluxCapacitor")
                .unwrap()
            {
                Response::MarkerAdded { markers } => assert_eq!(markers, markers_before + 1),
                other => panic!("expected marker-added, got {other:?}"),
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    let (summary, served_system) = shutdown_and_join(&endpoint, handle);
    assert_eq!(summary.errors, 0);
    assert_eq!(summary.markers_added, 1);
    assert_eq!(served_system.type_map.len(), markers_before + 1);
}

#[test]
fn failures_are_typed_replies_not_panics() {
    let (endpoint, handle) = start_server(ServeOptions::default());
    let mut client = Client::connect(&endpoint).unwrap();
    let cases: Vec<(Request, ErrorCode)> = vec![
        (
            Request::Predict {
                source: "def broken($):\n    pass\n".to_string(),
            },
            ErrorCode::Parse,
        ),
        (
            Request::AddMarker {
                source: "def broken($):\n    pass\n".to_string(),
                symbol: "x".to_string(),
                ty: "int".to_string(),
            },
            ErrorCode::Parse,
        ),
        (
            Request::AddMarker {
                source: "def f(x):\n    return x\n".to_string(),
                symbol: "no_such_symbol".to_string(),
                ty: "int".to_string(),
            },
            ErrorCode::SymbolNotFound,
        ),
        (
            Request::AddMarker {
                source: "def f(x):\n    return x\n".to_string(),
                symbol: "x".to_string(),
                ty: "List[[".to_string(),
            },
            ErrorCode::BadType,
        ),
    ];
    for (request, want) in cases {
        match client.roundtrip(&request).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, want, "for {request:?}"),
            other => panic!("expected {want:?} error for {request:?}, got {other:?}"),
        }
    }
    // After every failure the connection and server still work.
    assert!(matches!(
        client.predict(QUERY_SRC).unwrap(),
        Response::Predictions(_)
    ));
    shutdown_and_join(&endpoint, handle);
}

#[test]
fn reindex_and_stats_report_the_map_state() {
    let (endpoint, handle) = start_server(ServeOptions::default());
    let mut client = Client::connect(&endpoint).unwrap();
    let markers = match client.stats().unwrap() {
        Response::Stats(s) => {
            assert!(s.markers > 0);
            assert_eq!(s.dim, 16);
            s.markers
        }
        other => panic!("expected stats, got {other:?}"),
    };
    match client.reindex().unwrap() {
        Response::Reindexed { markers: m, index } => {
            assert_eq!(m, markers);
            assert_eq!(index, "sharded");
        }
        other => panic!("expected reindexed, got {other:?}"),
    }
    match client.stats().unwrap() {
        Response::Stats(s) => assert_eq!(s.index, "sharded"),
        other => panic!("expected stats, got {other:?}"),
    }
    shutdown_and_join(&endpoint, handle);
}

#[test]
fn serving_and_mutating_never_touch_saved_artifacts() {
    let dir = std::env::temp_dir().join(format!("typilus_serve_artifacts_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("model.typilus");
    let system = fresh_system();
    system.save(&model_path).unwrap();
    let bytes_before = std::fs::read(&model_path).unwrap();

    let mut loaded = TrainedSystem::load(&model_path).unwrap();
    let server = Server::bind(
        &Endpoint::Tcp("127.0.0.1:0".to_string()),
        ServeOptions::default(),
    )
    .unwrap();
    let endpoint = server.endpoint().clone();
    let handle = thread::spawn(move || server.run(&mut loaded));

    let mut client = Client::connect(&endpoint).unwrap();
    assert!(matches!(
        client.predict(QUERY_SRC).unwrap(),
        Response::Predictions(_)
    ));
    assert!(matches!(
        client
            .add_marker(BINDING_SRC, "flux_capacitor", "quantum.FluxCapacitor")
            .unwrap(),
        Response::MarkerAdded { .. }
    ));
    assert!(matches!(
        client.reindex().unwrap(),
        Response::Reindexed { .. }
    ));
    // One client vanishes mid-frame for good measure.
    {
        let mut rude = Client::connect(&endpoint).unwrap();
        rude.send_raw_bytes(&50u32.to_le_bytes()).unwrap();
    }
    assert!(matches!(client.shutdown().unwrap(), Response::Bye));
    handle.join().unwrap();

    let bytes_after = std::fs::read(&model_path).unwrap();
    assert_eq!(
        bytes_before, bytes_after,
        "serving must never write to model artifacts"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn drain_refuses_new_connections_but_serves_established_ones() {
    let (endpoint, handle) = start_server(ServeOptions::default());
    let mut established = Client::connect(&endpoint).unwrap();
    assert!(matches!(established.drain().unwrap(), Response::Draining));

    // The established connection keeps working through the drain.
    assert!(matches!(
        established.predict(QUERY_SRC).unwrap(),
        Response::Predictions(_)
    ));
    match established.stats().unwrap() {
        Response::Stats(s) => assert_eq!(s.health, Health::Draining),
        other => panic!("expected stats, got {other:?}"),
    }

    // A new connection is accepted at the TCP level, answered with one
    // typed `draining` frame, and dropped.
    let mut refused = Client::connect(&endpoint).unwrap();
    match refused.read_reply().unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Draining),
        other => panic!("expected draining error, got {other:?}"),
    }
    assert!(
        refused.read_reply().is_err(),
        "refused connection should be closed"
    );

    // Shutdown still rides the established connection.
    assert!(matches!(established.shutdown().unwrap(), Response::Bye));
    let (summary, _) = handle.join().unwrap();
    assert!(summary.errors >= 1, "the refusal is counted as an error");
}

#[test]
fn batch_byte_cap_splits_batches_without_changing_replies() {
    let reference = fresh_system();
    let expected: Vec<SymbolHints> = reference
        .predict_source(QUERY_SRC)
        .unwrap()
        .iter()
        .map(SymbolHints::of)
        .collect();
    // A 1-byte cap forces every batch down to a single request.
    let (endpoint, handle) = start_server(ServeOptions {
        batch_bytes_max: 1,
        ..ServeOptions::default()
    });
    let mut threads = Vec::new();
    for _ in 0..6 {
        let endpoint = endpoint.clone();
        let expected = expected.clone();
        threads.push(thread::spawn(move || {
            let mut client = Client::connect(&endpoint).unwrap();
            match client.predict(QUERY_SRC).unwrap() {
                Response::Predictions(got) => assert_eq!(got, expected),
                other => panic!("expected predictions, got {other:?}"),
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    let (summary, _) = shutdown_and_join(&endpoint, handle);
    assert_eq!(summary.predicts, 6);
    assert_eq!(
        summary.largest_batch, 1,
        "the byte cap must split concurrent predicts into single-job batches"
    );
    assert_eq!(summary.errors, 0);
}

/// A hostile mock server: drops its first accepted connection without
/// replying, then speaks one well-formed reply per connection. Returns
/// the endpoint and a handle yielding how many connections it saw.
fn flaky_listener(replies: usize) -> (Endpoint, thread::JoinHandle<usize>) {
    use typilus_serve::protocol::{decode, encode};
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let endpoint = Endpoint::Tcp(listener.local_addr().unwrap().to_string());
    let handle = thread::spawn(move || {
        let mut seen = 0usize;
        // First connection: accept and hang up without a reply.
        if let Ok((stream, _)) = listener.accept() {
            seen += 1;
            drop(stream);
        }
        for _ in 0..replies {
            let Ok((mut stream, _)) = listener.accept() else {
                break;
            };
            seen += 1;
            let Ok(payload) = typilus_serve::read_frame(&mut stream) else {
                continue;
            };
            let _request: Request = decode(&payload).unwrap();
            let bytes = encode(&Response::Draining).unwrap();
            typilus_serve::write_frame(&mut stream, &bytes).unwrap();
        }
        seen
    });
    (endpoint, handle)
}

#[test]
fn resilient_client_retries_idempotent_requests_after_reconnect() {
    let (endpoint, listener) = flaky_listener(1);
    let options = ClientOptions {
        retries: 3,
        backoff_base_ms: 1,
        backoff_cap_ms: 5,
        deadline_ms: 10_000,
        ..ClientOptions::default()
    };
    let mut client = Client::connect_with(&endpoint, options).unwrap();
    // First attempt lands on the dropped connection; the retry
    // reconnects and gets the reply.
    match client.stats().unwrap() {
        Response::Draining => {}
        other => panic!("expected the mock reply, got {other:?}"),
    }
    assert_eq!(
        listener.join().unwrap(),
        2,
        "exactly one reconnect should have happened"
    );
}

#[test]
fn resilient_client_never_retries_add_marker() {
    let (endpoint, listener) = flaky_listener(0);
    let options = ClientOptions {
        retries: 3,
        backoff_base_ms: 1,
        backoff_cap_ms: 5,
        deadline_ms: 10_000,
        ..ClientOptions::default()
    };
    let mut client = Client::connect_with(&endpoint, options).unwrap();
    // The dropped connection surfaces immediately: a lost add-marker
    // reply must not risk binding the marker twice.
    match client.add_marker(BINDING_SRC, "flux_capacitor", "quantum.FluxCapacitor") {
        Err(ClientError::Frame(_)) | Err(ClientError::Connect(_)) => {}
        other => panic!("expected a transport error, got {other:?}"),
    }
    assert_eq!(
        listener.join().unwrap(),
        1,
        "a non-idempotent request must never reconnect"
    );
}

#[test]
fn clean_shutdown_returns_summary_and_removes_unix_socket() {
    let dir = std::env::temp_dir().join(format!("typilus_serve_sock_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("daemon.sock");
    let mut system = fresh_system();
    let server = Server::bind(&Endpoint::Unix(sock.clone()), ServeOptions::default()).unwrap();
    let endpoint = server.endpoint().clone();
    let handle = thread::spawn(move || server.run(&mut system));

    let mut client = Client::connect(&endpoint).unwrap();
    assert!(matches!(
        client.predict(QUERY_SRC).unwrap(),
        Response::Predictions(_)
    ));
    assert!(matches!(client.shutdown().unwrap(), Response::Bye));
    let summary = handle.join().unwrap();
    assert!(summary.requests >= 2);
    assert_eq!(summary.errors, 0);
    assert!(
        !sock.exists(),
        "unix socket should be removed on clean shutdown"
    );
    std::fs::remove_dir_all(&dir).ok();
}
