//! The blocked/fused/arena-backed Fast kernels and the pre-optimisation
//! Naive reference kernels must be interchangeable end to end: a full
//! train + predict pipeline run under each mode — and at each
//! selectable SIMD tile width — produces bit-identical per-epoch
//! losses, identical τ-map markers and identical predictions.
//!
//! Kernel mode and SIMD width are process-global, so this lives in its
//! own test binary with a single `#[test]`: nothing else in the process
//! observes the temporary switches.

use typilus::{
    train, EncoderKind, LossKind, ModelConfig, Parallelism, PreparedCorpus, TrainedSystem,
    TypilusConfig,
};
use typilus_corpus::{generate, CorpusConfig};
use typilus_nn::{available_widths, set_kernel_mode, set_simd_width, KernelMode};

fn run(seed: u64, threads: usize) -> (TrainedSystem, PreparedCorpus) {
    let corpus = generate(&CorpusConfig {
        files: 12,
        seed,
        ..CorpusConfig::default()
    });
    let data = PreparedCorpus::from_corpus(&corpus, &typilus::GraphConfig::default(), seed);
    let config = TypilusConfig {
        model: ModelConfig {
            encoder: EncoderKind::Graph,
            loss: LossKind::Typilus,
            dim: 12,
            gnn_steps: 2,
            min_subtoken_count: 1,
            seed,
            ..ModelConfig::default()
        },
        epochs: 2,
        batch_size: 8,
        lr: 0.02,
        seed,
        parallelism: Parallelism::fixed(threads),
        ..TypilusConfig::default()
    };
    let system = train(&data, &config);
    (system, data)
}

fn fingerprint(
    system: &TrainedSystem,
    data: &PreparedCorpus,
) -> (Vec<u32>, Vec<Vec<u32>>, Vec<String>) {
    let losses = system
        .epochs
        .iter()
        .map(|e| e.mean_loss.to_bits())
        .collect();
    let markers = system
        .type_map
        .iter()
        .map(|(emb, _)| emb.iter().map(|x| x.to_bits()).collect())
        .collect();
    let predictions = system
        .predict_files(data, &data.split.test)
        .into_iter()
        .flatten()
        .map(|p| {
            format!(
                "{}:{}",
                p.name,
                p.top().map(|t| t.ty.to_string()).unwrap_or_default()
            )
        })
        .collect();
    (losses, markers, predictions)
}

#[test]
fn fast_and_naive_kernels_are_bitwise_interchangeable() {
    set_kernel_mode(KernelMode::Fast);
    let (fast_system, fast_data) = run(23, 2);
    let fast = fingerprint(&fast_system, &fast_data);

    // Pool size must be invisible too: a wide pool under the fast
    // (arena-recycling) kernels matches the 2-worker run exactly.
    let (wide_system, wide_data) = run(23, 7);
    let wide = fingerprint(&wide_system, &wide_data);
    assert_eq!(fast, wide, "pool size changed fast-mode results");

    // SIMD width must be invisible too: force each selectable tile
    // width in turn (auto-detection picked one already; this covers
    // both on AVX2 hardware) and expect the exact same artifacts.
    for width in available_widths() {
        set_simd_width(width);
        let (w_system, w_data) = run(23, 2);
        let w = fingerprint(&w_system, &w_data);
        assert_eq!(
            fast,
            w,
            "SIMD width {} changed fast-mode results",
            width.name()
        );
    }

    set_kernel_mode(KernelMode::Naive);
    let (naive_system, naive_data) = run(23, 2);
    let naive = fingerprint(&naive_system, &naive_data);
    set_kernel_mode(KernelMode::Fast);

    assert_eq!(
        fast.0, naive.0,
        "per-epoch losses diverge between kernel modes"
    );
    assert_eq!(
        fast.1, naive.1,
        "τ-map markers diverge between kernel modes"
    );
    assert_eq!(fast.2, naive.2, "predictions diverge between kernel modes");
    assert!(!fast.0.is_empty() && !fast.2.is_empty());
}
