//! The data-parallel engine must be invisible in the results: training
//! with 1 worker thread and with many must produce bit-identical
//! per-epoch losses, identical τmap contents and identical predictions
//! for the same seed.

use typilus::{
    train, EncoderKind, LossKind, ModelConfig, Parallelism, PreparedCorpus, TrainedSystem,
    TypilusConfig,
};
use typilus_corpus::{generate, CorpusConfig};

fn run(seed: u64, threads: usize, loss: LossKind) -> (TrainedSystem, PreparedCorpus) {
    let corpus = generate(&CorpusConfig {
        files: 16,
        seed,
        ..CorpusConfig::default()
    });
    let data = PreparedCorpus::from_corpus(&corpus, &typilus::GraphConfig::default(), seed);
    let config = TypilusConfig {
        model: ModelConfig {
            encoder: EncoderKind::Graph,
            loss,
            dim: 12,
            gnn_steps: 2,
            min_subtoken_count: 1,
            seed,
            ..ModelConfig::default()
        },
        epochs: 3,
        batch_size: 8,
        lr: 0.02,
        seed,
        parallelism: Parallelism::fixed(threads),
        ..TypilusConfig::default()
    };
    let system = train(&data, &config);
    (system, data)
}

fn top1_predictions(system: &TrainedSystem, data: &PreparedCorpus) -> Vec<String> {
    system
        .predict_files(data, &data.split.test)
        .into_iter()
        .flatten()
        .map(|p| {
            format!(
                "{}:{}",
                p.name,
                p.top().map(|t| t.ty.to_string()).unwrap_or_default()
            )
        })
        .collect()
}

fn tau_map_markers(system: &TrainedSystem) -> Vec<(Vec<u32>, String)> {
    system
        .type_map
        .iter()
        .map(|(emb, ty)| (emb.iter().map(|x| x.to_bits()).collect(), ty.to_string()))
        .collect()
}

#[test]
fn thread_count_does_not_change_results() {
    for loss in [LossKind::Typilus, LossKind::Class] {
        let (base, base_data) = run(42, 1, loss);
        let base_losses: Vec<u32> = base.epochs.iter().map(|e| e.mean_loss.to_bits()).collect();
        assert!(!base_losses.is_empty());
        for threads in [2, 4, 7] {
            let (system, data) = run(42, threads, loss);
            let losses: Vec<u32> = system
                .epochs
                .iter()
                .map(|e| e.mean_loss.to_bits())
                .collect();
            assert_eq!(
                base_losses, losses,
                "{loss:?}: per-epoch losses must be bit-identical at {threads} threads"
            );
            assert_eq!(
                tau_map_markers(&base),
                tau_map_markers(&system),
                "{loss:?}: type-map markers must be identical at {threads} threads"
            );
            assert_eq!(
                top1_predictions(&base, &base_data),
                top1_predictions(&system, &data),
                "{loss:?}: top-1 predictions must be identical at {threads} threads"
            );
        }
    }
}

#[test]
fn arena_tape_preserves_parallel_bit_identity() {
    // The arena-backed tape recycles buffers across training steps; that
    // must stay invisible to the determinism guarantee. Guard against a
    // silently disabled pool by requiring actual reuse during training.
    typilus_nn::set_kernel_mode(typilus_nn::KernelMode::Fast);
    let before = typilus_nn::arena_stats();
    let (base, base_data) = run(11, 1, LossKind::Typilus);
    let (multi, multi_data) = run(11, 4, LossKind::Typilus);
    let stats = typilus_nn::arena_stats().since(&before);
    assert!(stats.reused > 0, "arena pool saw no reuse during training");
    assert!(stats.recycled > 0, "no buffers were returned to the arena");
    let base_losses: Vec<u32> = base.epochs.iter().map(|e| e.mean_loss.to_bits()).collect();
    let multi_losses: Vec<u32> = multi.epochs.iter().map(|e| e.mean_loss.to_bits()).collect();
    assert_eq!(
        base_losses, multi_losses,
        "losses must be bit-identical at 1 vs 4 threads"
    );
    assert_eq!(tau_map_markers(&base), tau_map_markers(&multi));
    assert_eq!(
        top1_predictions(&base, &base_data),
        top1_predictions(&multi, &multi_data)
    );
}

#[test]
fn pooled_engine_matches_spawn_per_call_primitive() {
    // The persistent pool replaced the spawn-per-call crossbeam engine;
    // both primitives must still agree bit-for-bit on the same jobs, so
    // the pipeline's guarantees carry over unchanged.
    let items: Vec<f32> = (0..173).map(|i| (i as f32).sin() * 0.01).collect();
    for threads in [2, 4, 7] {
        let pool = typilus_nn::WorkerPool::new(threads);
        let pooled: Vec<u32> = pool.map_ordered(&items, |i, &x| (x * x + i as f32).to_bits());
        let spawned: Vec<u32> =
            typilus_nn::par_map_ordered(&items, threads, |i, &x| (x * x + i as f32).to_bits());
        assert_eq!(
            pooled, spawned,
            "pool and spawn-per-call disagree at {threads} threads"
        );
    }
}

#[test]
fn batched_prediction_matches_per_file() {
    let (system, data) = run(7, 3, LossKind::Typilus);
    let batched = system.predict_files(&data, &data.split.test);
    for (&idx, batch) in data.split.test.iter().zip(&batched) {
        let single = system.predict_file(&data, idx);
        assert_eq!(single.len(), batch.len());
        for (a, b) in single.iter().zip(batch) {
            assert_eq!(a.name, b.name);
            assert_eq!(
                a.top().map(|t| t.ty.to_string()),
                b.top().map(|t| t.ty.to_string())
            );
        }
    }
}

#[test]
fn auto_detected_parallelism_matches_fixed() {
    // threads = 0 resolves via env/auto-detection; whatever it picks,
    // the results must equal the single-threaded run.
    let (auto, auto_data) = run(9, 0, LossKind::Typilus);
    let (one, one_data) = run(9, 1, LossKind::Typilus);
    let a: Vec<u32> = auto.epochs.iter().map(|e| e.mean_loss.to_bits()).collect();
    let b: Vec<u32> = one.epochs.iter().map(|e| e.mean_loss.to_bits()).collect();
    assert_eq!(a, b);
    assert_eq!(
        top1_predictions(&auto, &auto_data),
        top1_predictions(&one, &one_data)
    );
}
