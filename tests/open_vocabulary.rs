//! The paper's headline capability: open-vocabulary, one-shot type
//! prediction (Sec. 4.2). A type never seen in training becomes
//! predictable after binding a *single* example into the type map — no
//! retraining — and meta-learning losses beat classification on rare
//! types.

use typilus::{
    evaluate_files, table2_row, train, EncoderKind, LossKind, ModelConfig, PreparedCorpus, PyType,
    TypilusConfig,
};
use typilus_corpus::{generate, CorpusConfig};

fn data_and_config() -> (PreparedCorpus, TypilusConfig) {
    let corpus = generate(&CorpusConfig {
        files: 40,
        seed: 21,
        ..CorpusConfig::default()
    });
    let data = PreparedCorpus::from_corpus(&corpus, &typilus::GraphConfig::default(), 21);
    let config = TypilusConfig {
        model: ModelConfig {
            encoder: EncoderKind::Graph,
            loss: LossKind::Typilus,
            dim: 16,
            gnn_steps: 3,
            min_subtoken_count: 1,
            ..ModelConfig::default()
        },
        epochs: 6,
        batch_size: 8,
        lr: 0.02,
        common_threshold: 8,
        ..TypilusConfig::default()
    };
    (data, config)
}

#[test]
fn one_shot_adaptation_to_unseen_type() {
    let (data, config) = data_and_config();
    let mut system = train(&data, &config);

    // A brand-new type that cannot exist in the corpus.
    let novel: PyType = "quantum.FluxCapacitor".parse().unwrap();
    assert_eq!(system.train_count(&novel), 0, "type must be unseen");

    let query_src =
        "def charge(flux_capacitor):\n    flux_capacitor.engage()\n    return flux_capacitor\n";

    // Before binding: the novel type is never predicted.
    let before = system.predict_source(query_src).unwrap();
    let fc = before.iter().find(|p| p.name == "flux_capacitor").unwrap();
    assert!(fc.candidates.iter().all(|c| c.ty != novel));

    // Bind ONE example (different code, same naming/usage pattern).
    let binding_src =
        "def drain(flux_capacitor):\n    flux_capacitor.engage()\n    return flux_capacitor\n";
    assert!(system.bind_type_example(binding_src, "flux_capacitor", novel.clone()));

    // After binding: the nearest-neighbour prediction includes it.
    let after = system.predict_source(query_src).unwrap();
    let fc = after.iter().find(|p| p.name == "flux_capacitor").unwrap();
    assert!(
        fc.candidates.iter().any(|c| c.ty == novel),
        "novel type should now be predictable: {:?}",
        fc.candidates
    );
}

#[test]
fn meta_learning_beats_classification_on_rare_types() {
    let (data, config) = data_and_config();

    let typilus = train(&data, &config);
    let class_cfg = TypilusConfig {
        model: ModelConfig {
            loss: LossKind::Class,
            ..config.model
        },
        ..config
    };
    let classifier = train(&data, &class_cfg);

    let t_examples = evaluate_files(&typilus, &data, &data.split.test);
    let c_examples = evaluate_files(&classifier, &data, &data.split.test);
    let t_row = table2_row(&t_examples, &typilus.hierarchy, config.common_threshold);
    let c_row = table2_row(&c_examples, &classifier.hierarchy, config.common_threshold);

    // The paper's central claim (Table 2): the similarity-learned space
    // is far better on rare types. We allow slack but require a clear
    // ordering.
    assert!(
        t_row.exact_rare >= c_row.exact_rare,
        "Typilus rare-type exact match {:.1} should be >= classification {:.1}",
        t_row.exact_rare,
        c_row.exact_rare
    );
}

#[test]
fn unseen_types_have_zero_train_count_but_exist_in_test() {
    let (data, config) = data_and_config();
    let system = train(&data, &config);
    let examples = evaluate_files(&system, &data, &data.split.test);
    // The Zipf tail guarantees some test symbols carry types rarely or
    // never seen in training.
    let rare = examples
        .iter()
        .filter(|e| e.truth_train_count < config.common_threshold)
        .count();
    assert!(rare > 0, "expected rare-type examples in the test split");
}
