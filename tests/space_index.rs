//! End-to-end round trip of the sharded TypeSpace index through the
//! model sidecar: a trained system whose type map serves from the
//! zero-copy on-disk index must predict identically after save +
//! mmap-backed load, a corrupted sidecar must surface as a typed
//! [`PersistError`], and a missing sidecar must degrade to exact
//! search — warn, not fail — because the markers themselves live in
//! the model artifact.

use std::path::PathBuf;
use std::sync::OnceLock;
use typilus::{
    space_sidecar_path, train, EncoderKind, GraphConfig, LossKind, ModelConfig, PersistError,
    PreparedCorpus, RpForestConfig, SpaceConfig, TrainedSystem, TypilusConfig,
};
use typilus_corpus::{generate, CorpusConfig};

/// One tiny trained system with a built sharded index, shared by every
/// test. `search_k` far above the marker count makes the approximate
/// index exhaustive, so predictions are comparable hit-for-hit with
/// exact search.
fn sharded_system() -> &'static (TrainedSystem, PreparedCorpus) {
    static SYS: OnceLock<(TrainedSystem, PreparedCorpus)> = OnceLock::new();
    SYS.get_or_init(|| {
        let corpus = generate(&CorpusConfig {
            files: 20,
            seed: 29,
            ..CorpusConfig::default()
        });
        let data = PreparedCorpus::from_corpus(&corpus, &GraphConfig::default(), 29);
        let config = TypilusConfig {
            model: ModelConfig {
                encoder: EncoderKind::Graph,
                loss: LossKind::Typilus,
                dim: 8,
                gnn_steps: 1,
                min_subtoken_count: 1,
                seed: 29,
                ..ModelConfig::default()
            },
            epochs: 1,
            batch_size: 4,
            seed: 29,
            ..TypilusConfig::default()
        };
        let mut system = train(&data, &config);
        let space = SpaceConfig {
            shards: 4,
            forest: RpForestConfig {
                trees: 8,
                leaf_size: 8,
                search_k: 1 << 20,
            },
            rebuild_threshold: 1024,
        };
        system
            .type_map
            .build_sharded_index(&space, 29, None)
            .expect("build sharded index");
        (system, data)
    })
}

fn work_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("typilus_space_ix_{}_{label}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create work dir");
    dir
}

fn assert_identical_predictions(a: &TrainedSystem, b: &TrainedSystem, data: &PreparedCorpus) {
    let mut compared = 0usize;
    for &idx in &data.split.test {
        let pa = a.predict_file(data, idx);
        let pb = b.predict_file(data, idx);
        assert_eq!(pa.len(), pb.len(), "symbol count differs in file {idx}");
        for (x, y) in pa.iter().zip(&pb) {
            assert_eq!(x.candidates.len(), y.candidates.len());
            for (cx, cy) in x.candidates.iter().zip(&y.candidates) {
                assert_eq!(cx.ty, cy.ty, "type differs for `{}` in file {idx}", x.name);
                assert_eq!(
                    cx.probability.to_bits(),
                    cy.probability.to_bits(),
                    "probability differs for `{}` in file {idx}",
                    x.name
                );
                compared += 1;
            }
        }
    }
    assert!(compared > 10, "too few candidates compared: {compared}");
}

#[test]
fn predictions_survive_save_and_mmap_load() {
    let (system, data) = sharded_system();
    let dir = work_dir("roundtrip");
    let model = dir.join("model.typilus");
    system.save(&model).expect("save");

    let sidecar = space_sidecar_path(&model);
    assert!(sidecar.exists(), "save must write the index sidecar");

    let loaded = TrainedSystem::load(&model).expect("load");
    let before = system.type_map.space_index().expect("index built");
    let after = loaded
        .type_map
        .space_index()
        .expect("load must reattach the sidecar index, not fall back");
    assert_eq!(after.file_id(), before.file_id(), "index identity survives");
    assert_eq!(after.len(), before.len());

    assert_identical_predictions(system, &loaded, data);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_sidecar_is_a_typed_load_error() {
    let (system, _) = sharded_system();
    let dir = work_dir("corrupt");
    let model = dir.join("model.typilus");
    system.save(&model).expect("save");

    let sidecar = space_sidecar_path(&model);
    let mut bytes = std::fs::read(&sidecar).expect("read sidecar");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&sidecar, &bytes).expect("rewrite sidecar");

    match TrainedSystem::load(&model) {
        Err(PersistError::Space(e)) => {
            // The damage lands in the index body: caught by the
            // checksum sweep, reported as the corrupt section.
            let msg = e.to_string();
            assert!(
                msg.contains("corrupt") || msg.contains("truncated"),
                "unexpected space error: {msg}"
            );
        }
        Err(other) => {
            // A flip in the atomic_io footer region is caught one
            // layer down; still a typed corruption error.
            assert!(
                matches!(
                    other,
                    PersistError::ChecksumMismatch { .. }
                        | PersistError::Truncated { .. }
                        | PersistError::MissingFooter
                ),
                "unexpected error kind: {other}"
            );
        }
        Ok(_) => panic!("a model with a corrupt index sidecar must not load"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_sidecar_degrades_to_exact_search() {
    let (system, data) = sharded_system();
    let dir = work_dir("missing");
    let model = dir.join("model.typilus");
    system.save(&model).expect("save");
    std::fs::remove_file(space_sidecar_path(&model)).expect("delete sidecar");

    let loaded = TrainedSystem::load(&model).expect("markers live in the model; load must succeed");
    assert!(
        loaded.type_map.space_index().is_none(),
        "without the sidecar the map must fall back to exact search"
    );
    // With `search_k` above the marker count the sharded index is
    // exhaustive, so the exact-search fallback predicts identically.
    assert_identical_predictions(system, &loaded, data);
    std::fs::remove_dir_all(&dir).ok();
}
