//! Steady-state training through one long-lived worker pool performs
//! zero fresh arena allocations: worker arenas stay warm across
//! batches, and buffers that migrate between threads (gradients, seeds,
//! value snapshots) cycle back through the shared backstop pool.
//!
//! The arena counters are process-global, so this lives in its own test
//! binary with a single `#[test]`: a concurrently running test would
//! bleed its allocations into the measurement.

use typilus::{EncoderKind, LossKind, ModelConfig, PreparedCorpus};
use typilus_corpus::{generate, CorpusConfig};
use typilus_models::{PreparedFile, TypeModel};
use typilus_nn::{Adam, WorkerPool};

#[test]
fn pool_reuse_keeps_arena_counters_flat_across_batches() {
    typilus_nn::set_kernel_mode(typilus_nn::KernelMode::Fast);
    let seed = 5;
    let corpus = generate(&CorpusConfig {
        files: 16,
        seed,
        ..CorpusConfig::default()
    });
    let data = PreparedCorpus::from_corpus(&corpus, &typilus::GraphConfig::default(), seed);
    let config = ModelConfig {
        encoder: EncoderKind::Graph,
        loss: LossKind::Typilus,
        dim: 12,
        gnn_steps: 2,
        min_subtoken_count: 1,
        seed,
        ..ModelConfig::default()
    };
    let train_graphs = data.graphs_of(&data.split.train);
    let mut model = TypeModel::new(config, &train_graphs);
    let pool = WorkerPool::new(4);
    let graphs: Vec<_> = data.files.iter().map(|f| f.graph.clone()).collect();
    let prepared = model.prepare_batch(&graphs, &pool);
    let batch: Vec<&PreparedFile> = prepared.iter().collect();
    let mut adam = Adam::new(0.01);
    // Warm-up: the first steps populate the thread-local worker arenas
    // and the shared backstop, and let Adam build its moment buffers.
    for _ in 0..3 {
        let (_, grads) = model.train_step_parallel(&batch, &pool).unwrap();
        adam.step(&mut model.params, grads);
    }
    let warm = typilus_nn::arena_stats();
    for step in 0..3 {
        let (_, grads) = model.train_step_parallel(&batch, &pool).unwrap();
        adam.step(&mut model.params, grads);
        let stats = typilus_nn::arena_stats().since(&warm);
        assert_eq!(
            stats.fresh, 0,
            "warm step {step} allocated {} fresh buffers; worker arenas went cold",
            stats.fresh
        );
    }
    let stats = typilus_nn::arena_stats().since(&warm);
    assert!(
        stats.reused > 0,
        "steady-state steps must be served from the arenas"
    );
}
