//! The persistent worker pool must (a) keep results bit-identical at
//! any pool size and (b) surface worker panic payloads without dying.
//! (The warm-arena guarantee — zero fresh allocations in steady state —
//! is asserted in `worker_pool_arena.rs`, its own binary, because the
//! arena counters are process-global and tests here run concurrently.)

use typilus::{EncoderKind, LossKind, ModelConfig, PreparedCorpus};
use typilus_corpus::{generate, CorpusConfig};
use typilus_models::{PreparedFile, TypeModel};
use typilus_nn::WorkerPool;

fn fixture(seed: u64) -> (TypeModel, Vec<PreparedFile>) {
    let corpus = generate(&CorpusConfig {
        files: 16,
        seed,
        ..CorpusConfig::default()
    });
    let data = PreparedCorpus::from_corpus(&corpus, &typilus::GraphConfig::default(), seed);
    let config = ModelConfig {
        encoder: EncoderKind::Graph,
        loss: LossKind::Typilus,
        dim: 12,
        gnn_steps: 2,
        min_subtoken_count: 1,
        seed,
        ..ModelConfig::default()
    };
    let train_graphs = data.graphs_of(&data.split.train);
    let model = TypeModel::new(config, &train_graphs);
    let graphs: Vec<_> = data.files.iter().map(|f| f.graph.clone()).collect();
    let prepared = model.prepare_batch(&graphs, &WorkerPool::new(2));
    (model, prepared)
}

/// A full train step through pools of 1, 2 and 7 workers produces
/// bit-identical losses and gradients — and agrees with the
/// spawn-per-call engine the pool replaced.
#[test]
fn full_train_step_is_bit_identical_across_pool_sizes() {
    let (model, prepared) = fixture(3);
    let batch: Vec<&PreparedFile> = prepared.iter().collect();
    let (base_loss, base_grads) = model
        .train_step_parallel(&batch, &WorkerPool::new(1))
        .expect("annotated targets");
    for workers in [2usize, 7] {
        let pool = WorkerPool::new(workers);
        let (loss, grads) = model.train_step_parallel(&batch, &pool).unwrap();
        assert_eq!(
            base_loss.to_bits(),
            loss.to_bits(),
            "loss differs at {workers} workers"
        );
        let (spawn_loss, spawn_grads) = model.train_step_spawning(&batch, workers).unwrap();
        assert_eq!(base_loss.to_bits(), spawn_loss.to_bits());
        for (pooled, spawned) in [(&grads, &base_grads), (&spawn_grads, &grads)] {
            for ((id_a, ga), (id_b, gb)) in pooled.iter().zip(spawned.iter()) {
                assert_eq!(id_a, id_b);
                for (a, b) in ga.as_slice().iter().zip(gb.as_slice()) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "gradient differs at {workers} workers"
                    );
                }
            }
        }
    }
}

/// A panic on a worker stripe reaches the caller with its original
/// payload, and the pool keeps serving full train steps afterwards.
#[test]
fn pool_survives_worker_panic_and_surfaces_payload() {
    let (model, prepared) = fixture(8);
    let batch: Vec<&PreparedFile> = prepared.iter().collect();
    let pool = WorkerPool::new(3);
    let items: Vec<usize> = (0..24).collect();
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.map_ordered(&items, |i, _| {
            assert!(i != 13, "stripe worker died on item {i}");
            i
        })
    }))
    .expect_err("worker panic must propagate to the caller");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("stripe worker died on item 13"),
        "original panic payload was lost: {msg:?}"
    );
    // The same pool — with the same still-alive workers — must keep
    // serving real work.
    let (loss, _) = model
        .train_step_parallel(&batch, &pool)
        .expect("pool still serves");
    assert!(loss.is_finite());
    let single = model
        .train_step_parallel(&batch, &WorkerPool::new(1))
        .unwrap();
    assert_eq!(single.0.to_bits(), loss.to_bits());
}
