//! Serve-path fault-injection suite (`--features faults`): engine
//! panics mid-batch, reply-write failures and disk-fault stand-ins on
//! the mutating verbs, plus protocol-level chaos (torn frames,
//! slow-loris clients). The daemon must survive every one of them,
//! answer with typed errors, keep artifacts byte-identical, and keep
//! post-recovery replies byte-identical to one-shot predictions.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::thread;
use typilus::faults::{self, Fault};
use typilus::{
    train, EncoderKind, GraphConfig, LossKind, ModelConfig, PreparedCorpus, TrainedSystem,
    TypilusConfig,
};
use typilus_corpus::{generate, CorpusConfig};
use typilus_serve::{
    Client, ClientError, Endpoint, ErrorCode, Health, Response, ServeOptions, ServeSummary, Server,
    SymbolHints,
};

/// The failpoint registry is process-global: every test takes this
/// lock, starts disarmed, and disarms again on drop (even when the
/// test's body panics).
fn faults_session() -> FaultSession {
    static LOCK: Mutex<()> = Mutex::new(());
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    faults::disarm_all();
    FaultSession(guard)
}

struct FaultSession(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for FaultSession {
    fn drop(&mut self) {
        faults::disarm_all();
    }
}

/// One small trained system shared (by clone) across all tests.
fn fresh_system() -> TrainedSystem {
    static SYSTEM: OnceLock<Mutex<TrainedSystem>> = OnceLock::new();
    SYSTEM
        .get_or_init(|| {
            let corpus = generate(&CorpusConfig {
                files: 30,
                seed: 9,
                ..CorpusConfig::default()
            });
            let data = PreparedCorpus::from_corpus(&corpus, &GraphConfig::default(), 9);
            let config = TypilusConfig {
                model: ModelConfig {
                    encoder: EncoderKind::Graph,
                    loss: LossKind::Typilus,
                    dim: 16,
                    gnn_steps: 3,
                    min_subtoken_count: 1,
                    ..ModelConfig::default()
                },
                epochs: 4,
                batch_size: 8,
                lr: 0.02,
                common_threshold: 8,
                ..TypilusConfig::default()
            };
            Mutex::new(train(&data, &config))
        })
        .lock()
        .unwrap()
        .clone()
}

fn start_server(
    options: ServeOptions,
) -> (Endpoint, thread::JoinHandle<(ServeSummary, TrainedSystem)>) {
    let mut system = fresh_system();
    let server = Server::bind(&Endpoint::Tcp("127.0.0.1:0".to_string()), options).unwrap();
    let endpoint = server.endpoint().clone();
    let handle = thread::spawn(move || {
        let summary = server.run(&mut system);
        (summary, system)
    });
    (endpoint, handle)
}

fn shutdown_and_join(
    endpoint: &Endpoint,
    handle: thread::JoinHandle<(ServeSummary, TrainedSystem)>,
) -> (ServeSummary, TrainedSystem) {
    let mut client = Client::connect(endpoint).unwrap();
    assert!(matches!(client.shutdown().unwrap(), Response::Bye));
    handle.join().unwrap()
}

/// One-shot reference predictions for `src`, computed outside the
/// daemon — the byte-identity baseline for every recovery test.
fn one_shot(src: &str) -> Vec<SymbolHints> {
    fresh_system()
        .predict_source(src)
        .unwrap()
        .iter()
        .map(SymbolHints::of)
        .collect()
}

const QUERY_SRC: &str =
    "def charge(flux_capacitor):\n    flux_capacitor.engage()\n    return flux_capacitor\n";
const OTHER_SRC: &str = "def scale(values, factor):\n    return [v * factor for v in values]\n";
const BINDING_SRC: &str =
    "def drain(flux_capacitor):\n    flux_capacitor.engage()\n    return flux_capacitor\n";

#[test]
fn engine_panic_mid_batch_is_recovered_and_replies_stay_byte_identical() {
    let _session = faults_session();
    let expected = one_shot(QUERY_SRC);
    let (endpoint, handle) = start_server(ServeOptions::default());
    let mut client = Client::connect(&endpoint).unwrap();

    faults::arm("serve.engine.batch", Fault::Panic);
    match client.predict(QUERY_SRC).unwrap() {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::Internal);
            assert!(message.contains("panicked"), "{message}");
        }
        other => panic!("expected internal error, got {other:?}"),
    }
    faults::disarm_all();

    // The daemon survived; the same connection still serves, and the
    // post-recovery reply is exactly the one-shot answer (recovery
    // replaced only the worker pool, never the model or the τmap).
    match client.predict(QUERY_SRC).unwrap() {
        Response::Predictions(got) => assert_eq!(got, expected),
        other => panic!("expected predictions, got {other:?}"),
    }
    match client.stats().unwrap() {
        Response::Stats(s) => {
            assert_eq!(s.panics_recovered, 1);
            assert_eq!(s.quarantined, 0, "one panic must not quarantine yet");
            assert_eq!(s.health, Health::Degraded);
        }
        other => panic!("expected stats, got {other:?}"),
    }
    let (summary, _) = shutdown_and_join(&endpoint, handle);
    assert_eq!(summary.panics_recovered, 1);
}

#[test]
fn repeatedly_panicking_request_is_quarantined_and_others_still_serve() {
    let _session = faults_session();
    let expected_other = one_shot(OTHER_SRC);
    let (endpoint, handle) = start_server(ServeOptions::default());
    let mut client = Client::connect(&endpoint).unwrap();

    // Two panics charged to the same request hash cross the
    // quarantine threshold.
    faults::arm("serve.engine.batch", Fault::Panic);
    for _ in 0..2 {
        match client.predict(QUERY_SRC).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Internal),
            other => panic!("expected internal error, got {other:?}"),
        }
    }
    faults::disarm_all();

    // Even with the fault gone, the poisoned request is refused — the
    // quarantine outlives the injection.
    match client.predict(QUERY_SRC).unwrap() {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::Quarantined);
            assert!(message.contains("quarantined"), "{message}");
        }
        other => panic!("expected quarantined error, got {other:?}"),
    }
    // Every other source is unaffected and byte-identical.
    match client.predict(OTHER_SRC).unwrap() {
        Response::Predictions(got) => assert_eq!(got, expected_other),
        other => panic!("expected predictions, got {other:?}"),
    }
    match client.stats().unwrap() {
        Response::Stats(s) => {
            assert_eq!(s.panics_recovered, 2);
            assert_eq!(s.quarantined, 1);
            assert_eq!(s.health, Health::Degraded);
        }
        other => panic!("expected stats, got {other:?}"),
    }
    let (summary, _) = shutdown_and_join(&endpoint, handle);
    assert_eq!(summary.quarantined, 1);
}

#[test]
fn disk_faults_on_mutating_verbs_are_typed_errors_and_artifacts_survive() {
    let _session = faults_session();
    let dir = std::env::temp_dir().join(format!("typilus_serve_fault_art_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("model.typilus");
    let system = fresh_system();
    system.save(&model_path).unwrap();
    let bytes_before = std::fs::read(&model_path).unwrap();
    let markers_before = system.type_map.len();

    let mut loaded = TrainedSystem::load(&model_path).unwrap();
    let server = Server::bind(
        &Endpoint::Tcp("127.0.0.1:0".to_string()),
        ServeOptions::default(),
    )
    .unwrap();
    let endpoint = server.endpoint().clone();
    let handle = thread::spawn(move || server.run(&mut loaded));
    let mut client = Client::connect(&endpoint).unwrap();

    faults::arm("serve.add_marker", Fault::IoError);
    match client
        .add_marker(BINDING_SRC, "flux_capacitor", "quantum.FluxCapacitor")
        .unwrap()
    {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::Space);
            assert!(message.contains("injected fault"), "{message}");
        }
        other => panic!("expected space error, got {other:?}"),
    }
    faults::disarm_all();
    faults::arm("serve.reindex", Fault::IoError);
    match client.reindex().unwrap() {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::Space);
            assert!(message.contains("index unchanged"), "{message}");
        }
        other => panic!("expected space error, got {other:?}"),
    }
    faults::disarm_all();

    // The faulted add-marker bound nothing; the next one succeeds.
    match client.stats().unwrap() {
        Response::Stats(s) => assert_eq!(s.markers, markers_before),
        other => panic!("expected stats, got {other:?}"),
    }
    assert!(matches!(
        client
            .add_marker(BINDING_SRC, "flux_capacitor", "quantum.FluxCapacitor")
            .unwrap(),
        Response::MarkerAdded { .. }
    ));
    assert!(matches!(client.shutdown().unwrap(), Response::Bye));
    handle.join().unwrap();

    let bytes_after = std::fs::read(&model_path).unwrap();
    assert_eq!(
        bytes_before, bytes_after,
        "faulted serving must never write to model artifacts"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reply_write_fault_is_counted_server_side_and_daemon_keeps_serving() {
    let _session = faults_session();
    let (endpoint, handle) = start_server(ServeOptions::default());
    let mut doomed = Client::connect(&endpoint).unwrap();

    faults::arm("serve.reply.write", Fault::IoError);
    // The engine answers, the reply write fails server-side, and the
    // connection is dropped: the client sees a transport error, never
    // a half-decoded frame.
    match doomed.predict(QUERY_SRC) {
        Err(ClientError::Frame(_)) | Err(ClientError::Connect(_)) => {}
        other => panic!("expected a transport error, got {other:?}"),
    }
    faults::disarm_all();

    let mut fresh = Client::connect(&endpoint).unwrap();
    match fresh.stats().unwrap() {
        Response::Stats(s) => {
            assert_eq!(s.write_faults, 1, "server-side write fault must be counted");
            assert_eq!(s.client_gone, 0);
        }
        other => panic!("expected stats, got {other:?}"),
    }
    let (summary, _) = shutdown_and_join(&endpoint, handle);
    assert_eq!(summary.write_faults, 1);
}

#[test]
fn torn_reply_write_surfaces_as_transport_error_not_bad_decode() {
    let _session = faults_session();
    let (endpoint, handle) = start_server(ServeOptions::default());
    let mut doomed = Client::connect(&endpoint).unwrap();

    // The server tears its own reply after 3 payload bytes: the
    // client must fail on framing, not hand back a garbage response.
    faults::arm("serve.reply.write", Fault::ShortWrite(3));
    match doomed.predict(QUERY_SRC) {
        Err(ClientError::Frame(_)) | Err(ClientError::Connect(_)) => {}
        other => panic!("expected a transport error, got {other:?}"),
    }
    faults::disarm_all();

    let mut fresh = Client::connect(&endpoint).unwrap();
    assert!(matches!(
        fresh.predict(QUERY_SRC).unwrap(),
        Response::Predictions(_)
    ));
    shutdown_and_join(&endpoint, handle);
}

#[test]
fn slow_loris_and_torn_frame_clients_leave_the_daemon_serving() {
    let _session = faults_session();
    let expected = one_shot(QUERY_SRC);
    let (endpoint, handle) = start_server(ServeOptions::default());

    // Slow loris: announces a frame, delivers a trickle, then just
    // holds the connection open. Only its own connection thread waits.
    let mut loris = Client::connect(&endpoint).unwrap();
    loris.send_raw_bytes(&64u32.to_le_bytes()).unwrap();
    loris.send_raw_bytes(b"drip").unwrap();

    // Torn frame: announces 100 bytes, sends 10, vanishes.
    {
        let mut torn = Client::connect(&endpoint).unwrap();
        torn.send_raw_bytes(&100u32.to_le_bytes()).unwrap();
        torn.send_raw_bytes(b"0123456789").unwrap();
    }

    // The daemon still serves other clients, byte-identically.
    let mut fresh = Client::connect(&endpoint).unwrap();
    match fresh.predict(QUERY_SRC).unwrap() {
        Response::Predictions(got) => assert_eq!(got, expected),
        other => panic!("expected predictions, got {other:?}"),
    }
    drop(loris);
    let (summary, _) = shutdown_and_join(&endpoint, handle);
    assert_eq!(summary.panics_recovered, 0);
}
