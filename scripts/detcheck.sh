#!/usr/bin/env bash
# Determinism check: the dynamic witness of the contract typilus-lint
# enforces statically. Runs the example pipeline twice — once with 1
# thread, once with 4 — and requires every produced artifact and every
# prediction/evaluation output to be byte-identical. A second leg
# kills training at an epoch boundary (exit code 3), resumes from the
# checkpoint, and requires the resumed artifacts to match the
# uninterrupted ones byte-for-byte — including a run whose newest
# checkpoint was corrupted (resume must fall back to the previous
# one). Further legs force the SIMD tile width (TYPILUS_SIMD), the
# naive reference kernels (TYPILUS_NN_NAIVE) and a kill-and-resume run
# at a forced width: artifacts must be byte-identical across kernel
# mode x SIMD width x thread count x resume path. Run from anywhere;
# operates on the repo root. Expects `cargo build --release` to have
# run (tier1.sh orders it that way) but builds on demand otherwise.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
TYPILUS=target/release/typilus
[ -x "$TYPILUS" ] || cargo build --release -p typilus-cli

WORK=$(mktemp -d "${TMPDIR:-/tmp}/typilus-detcheck.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

# Small but non-trivial scale: enough files/epochs that a stray
# unordered reduction or map-order leak has room to show up.
"$TYPILUS" gen-corpus --out "$WORK/corpus" --files 24 --seed 7

run() { # run <threads> <outdir> [ENV=value ...]
    local threads=$1 out=$2
    shift 2
    mkdir -p "$out"
    env "$@" TYPILUS_THREADS=$threads "$TYPILUS" train --corpus "$WORK/corpus" \
        --model "$out/model.typilus" \
        --epochs 2 --dim 16 --gnn-steps 2 --seed 7 >"$out/train.out"
    find "$WORK/corpus" -name '*.py' | sort | head -8 |
        env "$@" TYPILUS_THREADS=$threads xargs "$TYPILUS" predict \
            --model "$out/model.typilus" --top 3 >"$out/predict.out"
    env "$@" TYPILUS_THREADS=$threads "$TYPILUS" eval --model "$out/model.typilus" \
        --corpus "$WORK/corpus" >"$out/eval.out"
}

# Kill-and-resume leg: train with checkpointing, die right after the
# checkpoint of epoch $3 (the CLI exits 3 for the injected kill), then
# resume — possibly at a different thread count — and produce the same
# artifacts as an uninterrupted run. With corrupt=yes the newest
# checkpoint is truncated before resuming, so resume must fall back to
# the previous valid one.
run_resumed() { # run_resumed <threads> <outdir> <kill_after_epoch> <corrupt> [ENV=value ...]
    local threads=$1 out=$2 kill_epoch=$3 corrupt=$4
    shift 4
    mkdir -p "$out"
    set +e
    env "$@" TYPILUS_THREADS=$threads "$TYPILUS" train --corpus "$WORK/corpus" \
        --model "$out/model.typilus" --checkpoint-dir "$out/ckpt" \
        --epochs 2 --dim 16 --gnn-steps 2 --seed 7 \
        --kill-after-epoch "$kill_epoch" >"$out/train.out" 2>"$out/train.err"
    local code=$?
    set -e
    if [ "$code" -ne 3 ]; then
        echo "detcheck: injected kill expected exit 3, got $code" >&2
        cat "$out/train.err" >&2
        exit 1
    fi
    if [ -e "$out/model.typilus" ]; then
        echo "detcheck: killed run must not write a model artifact" >&2
        exit 1
    fi
    if [ "$corrupt" = yes ]; then
        local newest
        newest=$(ls "$out/ckpt"/epoch-*.ckpt | sort | tail -1)
        local size
        size=$(wc -c <"$newest")
        head -c "$((size / 2))" "$newest" >"$newest.torn" && mv "$newest.torn" "$newest"
    fi
    env "$@" TYPILUS_THREADS=$threads "$TYPILUS" train --corpus "$WORK/corpus" \
        --model "$out/model.typilus" --checkpoint-dir "$out/ckpt" --resume \
        --epochs 2 --dim 16 --gnn-steps 2 --seed 7 >"$out/train.out"
    find "$WORK/corpus" -name '*.py' | sort | head -8 |
        env "$@" TYPILUS_THREADS=$threads xargs "$TYPILUS" predict \
            --model "$out/model.typilus" --top 3 --out "$out/predict.out"
    env "$@" TYPILUS_THREADS=$threads "$TYPILUS" eval --model "$out/model.typilus" \
        --corpus "$WORK/corpus" >"$out/eval.out"
}

run 1 "$WORK/t1"
run 4 "$WORK/t4"
run_resumed 1 "$WORK/r1" 0 no
run_resumed 4 "$WORK/r4" 0 no
run_resumed 1 "$WORK/rc" 1 yes
# Kernel-variant legs: forced baseline SIMD width, forced widened
# width (clamped to baseline on CPUs without AVX2), naive reference
# kernels, and a kill-and-resume run at the forced baseline width.
run 4 "$WORK/sse2" TYPILUS_SIMD=sse2
run 2 "$WORK/avx2" TYPILUS_SIMD=avx2
run 2 "$WORK/naive" TYPILUS_NN_NAIVE=1
run_resumed 2 "$WORK/rs" 0 no TYPILUS_SIMD=sse2

status=0
check() { # check <artifact> <dir_a> <label_a> <dir_b> <label_b>
    local artifact=$1 a=$2 la=$3 b=$4 lb=$5
    local ha hb
    ha=$(sha256sum "$a/$artifact" | cut -d' ' -f1)
    hb=$(sha256sum "$b/$artifact" | cut -d' ' -f1)
    if [ "$ha" = "$hb" ]; then
        echo "detcheck: $artifact $la vs $lb OK ($ha)"
    else
        echo "detcheck: $artifact DIFFERS: $la $ha vs $lb $hb" >&2
        status=1
    fi
}

# Sharded-index leg: build the mmap-able TypeSpace index sidecar on
# copies of the 1-thread model at 1 vs 4 threads. The rewritten model
# and the sidecar must be byte-identical, the sidecar must pass its
# checksum sweep, and predictions served through the zero-copy view
# must not depend on the thread count either.
for t in 1 4; do
    mkdir -p "$WORK/ix$t"
    cp "$WORK/t1/model.typilus" "$WORK/ix$t/model.typilus"
    TYPILUS_THREADS=$t "$TYPILUS" index --model "$WORK/ix$t/model.typilus" \
        --shards 6 --trees 8 --search-k 64 >"$WORK/ix$t/index.out"
    TYPILUS_THREADS=$t "$TYPILUS" index --model "$WORK/ix$t/model.typilus" \
        --verify >>"$WORK/ix$t/index.out"
    find "$WORK/corpus" -name '*.py' | sort | head -8 |
        TYPILUS_THREADS=$t xargs "$TYPILUS" predict \
            --model "$WORK/ix$t/model.typilus" --top 3 >"$WORK/ix$t/predict.out"
done

for artifact in model.typilus predict.out eval.out; do
    check "$artifact" "$WORK/t1" 1-thread "$WORK/t4" 4-thread
    check "$artifact" "$WORK/t1" 1-thread "$WORK/r1" resumed-1t
    check "$artifact" "$WORK/t1" 1-thread "$WORK/r4" resumed-4t
    check "$artifact" "$WORK/t1" 1-thread "$WORK/rc" resumed-corrupt
    check "$artifact" "$WORK/t1" 1-thread "$WORK/sse2" sse2-4t
    check "$artifact" "$WORK/t1" 1-thread "$WORK/avx2" avx2-2t
    check "$artifact" "$WORK/t1" 1-thread "$WORK/naive" naive-2t
    check "$artifact" "$WORK/t1" 1-thread "$WORK/rs" resumed-sse2
done

for artifact in model.typilus model.typilus.space predict.out; do
    check "$artifact" "$WORK/ix1" index-1t "$WORK/ix4" index-4t
done

if [ "$status" -ne 0 ]; then
    echo "detcheck: FAILED — results depend on thread count, kernel variant or resume path" >&2
    exit "$status"
fi
echo "detcheck: OK"
