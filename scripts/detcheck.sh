#!/usr/bin/env bash
# Determinism check: the dynamic witness of the contract typilus-lint
# enforces statically. Runs the example pipeline twice — once with 1
# thread, once with 4 — and requires every produced artifact and every
# prediction/evaluation output to be byte-identical. Run from anywhere;
# operates on the repo root. Expects `cargo build --release` to have
# run (tier1.sh orders it that way) but builds on demand otherwise.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
TYPILUS=target/release/typilus
[ -x "$TYPILUS" ] || cargo build --release -p typilus-cli

WORK=$(mktemp -d "${TMPDIR:-/tmp}/typilus-detcheck.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

# Small but non-trivial scale: enough files/epochs that a stray
# unordered reduction or map-order leak has room to show up.
"$TYPILUS" gen-corpus --out "$WORK/corpus" --files 24 --seed 7

run() { # run <threads> <outdir>
    local threads=$1 out=$2
    mkdir -p "$out"
    TYPILUS_THREADS=$threads "$TYPILUS" train --corpus "$WORK/corpus" \
        --model "$out/model.typilus" \
        --epochs 2 --dim 16 --gnn-steps 2 --seed 7 >"$out/train.out"
    find "$WORK/corpus" -name '*.py' | sort | head -8 |
        TYPILUS_THREADS=$threads xargs "$TYPILUS" predict \
            --model "$out/model.typilus" --top 3 >"$out/predict.out"
    TYPILUS_THREADS=$threads "$TYPILUS" eval --model "$out/model.typilus" \
        --corpus "$WORK/corpus" >"$out/eval.out"
}

run 1 "$WORK/t1"
run 4 "$WORK/t4"

status=0
for artifact in model.typilus predict.out eval.out; do
    h1=$(sha256sum "$WORK/t1/$artifact" | cut -d' ' -f1)
    h4=$(sha256sum "$WORK/t4/$artifact" | cut -d' ' -f1)
    if [ "$h1" = "$h4" ]; then
        echo "detcheck: $artifact OK ($h1)"
    else
        echo "detcheck: $artifact DIFFERS: 1-thread $h1 vs 4-thread $h4" >&2
        status=1
    fi
done

if [ "$status" -ne 0 ]; then
    echo "detcheck: FAILED — results depend on thread count" >&2
    exit "$status"
fi
echo "detcheck: OK"
