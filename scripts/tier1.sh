#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, clippy with warnings
# denied. Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings

echo "tier1: OK"
