#!/usr/bin/env bash
# Tier-1 gate: formatting, release build, full test suite (once
# normally, once with TYPILUS_THREADS=2 to exercise the worker pool's
# env-driven thread resolution), the kernel bit-equivalence properties
# under each forced SIMD width, the fault-injection suites (core
# atomic-I/O faults and serve chaos: engine panics, disk faults, torn
# reply writes), the determinism/panic-freedom lint (stale
# suppressions denied), the dynamic determinism and kill-and-resume
# check (threads x SIMD width x kernel mode), the benchmark-regression
# smoke, the serve round-trip gate (byte-identical served replies,
# untouched artifacts), clippy with warnings denied. Run from
# anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo fmt --check
cargo build --release
cargo test -q
TYPILUS_THREADS=2 cargo test -q
TYPILUS_SIMD=sse2 cargo test -q -p typilus-nn --test kernel_bitident
TYPILUS_SIMD=avx2 cargo test -q -p typilus-nn --test kernel_bitident
cargo test -q -p typilus --features faults --test fault_injection
cargo test -q -p typilus-serve --features faults --test serve_faults
cargo run -p typilus-lint --release -- --deny-stale
scripts/detcheck.sh
scripts/servecheck.sh
scripts/benchdiff.sh
cargo clippy --workspace --all-targets -- -D warnings

echo "tier1: OK"
