#!/usr/bin/env bash
# Tier-1 gate: formatting, release build, full test suite (once
# normally, once with TYPILUS_THREADS=2 to exercise the worker pool's
# env-driven thread resolution), the fault-injection suite, the
# determinism lint, the dynamic 1-vs-4-thread determinism and
# kill-and-resume check, clippy with warnings denied. Run from
# anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo fmt --check
cargo build --release
cargo test -q
TYPILUS_THREADS=2 cargo test -q
cargo test -q -p typilus --features faults --test fault_injection
cargo run -p typilus-lint --release
scripts/detcheck.sh
cargo clippy --workspace --all-targets -- -D warnings

echo "tier1: OK"
