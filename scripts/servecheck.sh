#!/usr/bin/env bash
# Serve round-trip gate: trains a tiny sharded-index model, serves it
# over a Unix socket, and asserts
#
#   1. the served predict report is byte-identical to one-shot
#      `typilus predict` output over the same files (the serve
#      determinism contract),
#   2. the chaos suite passes: `serve_faults` (under `--features
#      faults`) injects engine panics, disk faults, and torn/failed
#      reply writes, and the live daemon still serves the byte-
#      identical report afterwards — resilience never costs
#      determinism,
#   3. add-marker / reindex / stats round-trip and predictions still
#      render afterwards,
#   4. the daemon shuts down cleanly on `query --shutdown` (exit 0),
#   5. serving (including the in-memory add-marker and reindex) never
#      modified the on-disk model or sidecar artifacts.
#
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

BIN=target/release/typilus
[ -x "$BIN" ] || cargo build --release -p typilus-cli

WORK=$(mktemp -d "${TMPDIR:-/tmp}/typilus_serve.XXXXXX")
SERVER_PID=
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "servecheck: training a tiny model ..."
"$BIN" gen-corpus --out "$WORK/corpus" --files 24 --seed 7 >/dev/null
"$BIN" train --corpus "$WORK/corpus" --model "$WORK/model.typilus" \
    --epochs 3 --dim 16 --gnn-steps 3 \
    --index sharded --shards 2 >/dev/null 2>&1

mapfile -t FILES < <(find "$WORK/corpus" -name '*.py' | sort | head -3)
[ "${#FILES[@]}" -ge 1 ] || { echo "servecheck: no corpus files" >&2; exit 1; }

"$BIN" predict --model "$WORK/model.typilus" --out "$WORK/oneshot.txt" "${FILES[@]}"

artifact_hash() {
    sha256sum "$WORK/model.typilus" "$WORK/model.typilus.space" | sha256sum
}
hash_before=$(artifact_hash)

SOCK="$WORK/serve.sock"
"$BIN" serve --model "$WORK/model.typilus" --socket "$SOCK" \
    >"$WORK/serve.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && break
    sleep 0.1
done
[ -S "$SOCK" ] || {
    echo "servecheck: server did not come up" >&2
    cat "$WORK/serve.log" >&2
    exit 1
}

# 1. byte-identity of served vs one-shot predictions
"$BIN" query --socket "$SOCK" --out "$WORK/served.txt" "${FILES[@]}"
cmp "$WORK/oneshot.txt" "$WORK/served.txt" || {
    echo "servecheck: served report differs from one-shot predict output" >&2
    exit 1
}
echo "servecheck: served report byte-identical to one-shot output"

# 2. chaos leg: fault-injection suite, then prove the daemon that was
# running the whole time still serves the byte-identical report.
echo "servecheck: running serve fault-injection suite ..."
cargo test -q -p typilus-serve --features faults --test serve_faults >/dev/null || {
    echo "servecheck: serve fault-injection suite failed" >&2
    exit 1
}
"$BIN" query --socket "$SOCK" --out "$WORK/served_chaos.txt" "${FILES[@]}"
cmp "$WORK/oneshot.txt" "$WORK/served_chaos.txt" || {
    echo "servecheck: served report drifted after chaos suite" >&2
    exit 1
}
echo "servecheck: chaos suite green; served report still byte-identical"

# 3. add-marker / reindex / stats round trip
printf 'def drain(fresh_marker_symbol):\n    return fresh_marker_symbol\n' \
    >"$WORK/bind.py"
"$BIN" query --socket "$SOCK" --add-symbol fresh_marker_symbol --add-type int \
    "$WORK/bind.py" | grep -q 'bound fresh_marker_symbol' || {
    echo "servecheck: add-marker round trip failed" >&2
    exit 1
}
"$BIN" query --socket "$SOCK" --reindex | grep -q 'reindexed' || {
    echo "servecheck: reindex round trip failed" >&2
    exit 1
}
"$BIN" query --socket "$SOCK" --stats | grep -q 'markers added' || {
    echo "servecheck: stats round trip failed" >&2
    exit 1
}
"$BIN" query --socket "$SOCK" --out "$WORK/served2.txt" "${FILES[@]}"
[ -s "$WORK/served2.txt" ] || {
    echo "servecheck: predictions stopped rendering after mutation" >&2
    exit 1
}

# 4. clean shutdown
"$BIN" query --socket "$SOCK" --shutdown >/dev/null
wait "$SERVER_PID" || {
    echo "servecheck: server exited non-zero" >&2
    cat "$WORK/serve.log" >&2
    exit 1
}
SERVER_PID=

# 5. artifacts untouched by serving
hash_after=$(artifact_hash)
[ "$hash_before" = "$hash_after" ] || {
    echo "servecheck: serving modified the on-disk artifacts" >&2
    exit 1
}
echo "servecheck: artifacts untouched; clean shutdown"
echo "servecheck: OK"
