#!/usr/bin/env bash
# Benchmark-regression smoke over the committed benchmark reports.
#
# Leg 1 (BENCH_nn.json): regenerates the kernel benchmark and compares
# each dim's fast-vs-naive train-step speedup against the committed
# report, failing if any fresh speedup falls more than 10% below the
# committed one.
#
# Leg 2 (BENCH_space.json): regenerates the TypeSpace index benchmark
# at reduced scale (10^4 and 10^5 markers) and fails if any scale's
# sharded-query speedup over the exact scan falls more than 10% below
# the committed ratio, or if recall@10 drops below the 0.95 floor.
#
# Speedups are ratios measured within a single run, so — unlike
# absolute timings — they compare across machines. Pass paths to
# already-generated fresh JSONs ($1 = nn, $2 = space) to skip the
# (slow) regenerations. Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

status=0

# ---------------- leg 1: nn kernel speedups ----------------
COMMITTED=BENCH_nn.json
[ -f "$COMMITTED" ] || { echo "benchdiff: no committed $COMMITTED" >&2; exit 1; }

FRESH=${1:-}
if [ -z "$FRESH" ]; then
    FRESH=$(mktemp "${TMPDIR:-/tmp}/bench_nn.XXXXXX.json")
    trap 'rm -f "$FRESH"' EXIT
    echo "benchdiff: regenerating nn benchmark into $FRESH ..."
    TYPILUS_BENCH_OUT="$FRESH" cargo run -q --release -p typilus-bench --bin bench_nn >/dev/null
fi

extract() { # extract <json> -> lines of "dim step_speedup"
    awk '
        /"dim":/          { v = $2; gsub(/[^0-9]/, "", v); dim = v }
        /"step_speedup":/ { v = $2; gsub(/[^0-9.]/, "", v); print dim, v }
    ' "$1"
}

found=0
while read -r dim fresh_speedup; do
    found=1
    committed_speedup=$(extract "$COMMITTED" | awk -v d="$dim" '$1 == d { print $2 }')
    if [ -z "$committed_speedup" ]; then
        echo "benchdiff: dim $dim missing from committed $COMMITTED" >&2
        status=1
        continue
    fi
    if awk -v f="$fresh_speedup" -v c="$committed_speedup" 'BEGIN { exit !(f < 0.9 * c) }'; then
        echo "benchdiff: dim $dim REGRESSED: fresh ${fresh_speedup}x vs committed ${committed_speedup}x (>10% below)" >&2
        status=1
    else
        echo "benchdiff: dim $dim OK: fresh ${fresh_speedup}x vs committed ${committed_speedup}x"
    fi
done < <(extract "$FRESH")

if [ "$found" -eq 0 ]; then
    echo "benchdiff: no step_speedup entries found in $FRESH" >&2
    status=1
fi

# ---------------- leg 2: space index query speedup + recall ----------------
SPACE_COMMITTED=BENCH_space.json
[ -f "$SPACE_COMMITTED" ] || { echo "benchdiff: no committed $SPACE_COMMITTED" >&2; exit 1; }

SPACE_FRESH=${2:-}
if [ -z "$SPACE_FRESH" ]; then
    SPACE_FRESH=$(mktemp "${TMPDIR:-/tmp}/bench_space.XXXXXX.json")
    trap 'rm -f "$FRESH" "$SPACE_FRESH"' EXIT
    echo "benchdiff: regenerating space benchmark into $SPACE_FRESH ..."
    TYPILUS_SPACE_SCALES="10000,100000" TYPILUS_BENCH_OUT="$SPACE_FRESH" \
        cargo run -q --release -p typilus-bench --bin bench_space >/dev/null
fi

extract_space() { # extract_space <json> -> lines of "markers speedup recall"
    awk '
        /"markers":/                { v = $2; gsub(/[^0-9]/, "", v); markers = v }
        /"recall_at_10":/           { v = $2; gsub(/[^0-9.]/, "", v); recall = v }
        /"query_speedup_vs_exact":/ { v = $2; gsub(/[^0-9.]/, "", v); print markers, v, recall }
    ' "$1"
}

space_found=0
while read -r markers fresh_speedup fresh_recall; do
    space_found=1
    committed_speedup=$(extract_space "$SPACE_COMMITTED" | awk -v m="$markers" '$1 == m { print $2 }')
    if [ -z "$committed_speedup" ]; then
        echo "benchdiff: $markers markers missing from committed $SPACE_COMMITTED" >&2
        status=1
        continue
    fi
    if awk -v f="$fresh_speedup" -v c="$committed_speedup" 'BEGIN { exit !(f < 0.9 * c) }'; then
        echo "benchdiff: space $markers markers query REGRESSED: fresh ${fresh_speedup}x vs committed ${committed_speedup}x (>10% below)" >&2
        status=1
    else
        echo "benchdiff: space $markers markers query OK: fresh ${fresh_speedup}x vs committed ${committed_speedup}x"
    fi
    if awk -v r="$fresh_recall" 'BEGIN { exit !(r < 0.95) }'; then
        echo "benchdiff: space $markers markers recall@10 TOO LOW: ${fresh_recall} (< 0.95)" >&2
        status=1
    else
        echo "benchdiff: space $markers markers recall@10 OK: ${fresh_recall}"
    fi
done < <(extract_space "$SPACE_FRESH")

if [ "$space_found" -eq 0 ]; then
    echo "benchdiff: no query_speedup_vs_exact entries found in $SPACE_FRESH" >&2
    status=1
fi

if [ "$status" -ne 0 ]; then
    echo "benchdiff: FAILED" >&2
    exit "$status"
fi
echo "benchdiff: OK"
