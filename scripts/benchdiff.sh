#!/usr/bin/env bash
# Benchmark-regression smoke: regenerates BENCH_nn.json into a temp
# file and compares each dim's fast-vs-naive train-step speedup against
# the committed BENCH_nn.json, failing if any fresh speedup falls more
# than 10% below the committed one. Speedups are ratios measured within
# a single run, so — unlike absolute timings — they compare across
# machines. Pass a path to an already-generated fresh JSON to skip the
# (slow) regeneration; otherwise the benchmark is built and run.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

COMMITTED=BENCH_nn.json
[ -f "$COMMITTED" ] || { echo "benchdiff: no committed $COMMITTED" >&2; exit 1; }

FRESH=${1:-}
if [ -z "$FRESH" ]; then
    FRESH=$(mktemp "${TMPDIR:-/tmp}/bench_nn.XXXXXX.json")
    trap 'rm -f "$FRESH"' EXIT
    echo "benchdiff: regenerating benchmark into $FRESH ..."
    TYPILUS_BENCH_OUT="$FRESH" cargo run -q --release -p typilus-bench --bin bench_nn >/dev/null
fi

extract() { # extract <json> -> lines of "dim step_speedup"
    awk '
        /"dim":/          { v = $2; gsub(/[^0-9]/, "", v); dim = v }
        /"step_speedup":/ { v = $2; gsub(/[^0-9.]/, "", v); print dim, v }
    ' "$1"
}

status=0
found=0
while read -r dim fresh_speedup; do
    found=1
    committed_speedup=$(extract "$COMMITTED" | awk -v d="$dim" '$1 == d { print $2 }')
    if [ -z "$committed_speedup" ]; then
        echo "benchdiff: dim $dim missing from committed $COMMITTED" >&2
        status=1
        continue
    fi
    if awk -v f="$fresh_speedup" -v c="$committed_speedup" 'BEGIN { exit !(f < 0.9 * c) }'; then
        echo "benchdiff: dim $dim REGRESSED: fresh ${fresh_speedup}x vs committed ${committed_speedup}x (>10% below)" >&2
        status=1
    else
        echo "benchdiff: dim $dim OK: fresh ${fresh_speedup}x vs committed ${committed_speedup}x"
    fi
done < <(extract "$FRESH")

if [ "$found" -eq 0 ]; then
    echo "benchdiff: no step_speedup entries found in $FRESH" >&2
    status=1
fi

if [ "$status" -ne 0 ]; then
    echo "benchdiff: FAILED" >&2
    exit "$status"
fi
echo "benchdiff: OK"
