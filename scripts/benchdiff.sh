#!/usr/bin/env bash
# Benchmark-regression smoke over the committed benchmark reports.
#
# Leg 1 (BENCH_nn.json): regenerates the kernel benchmark and compares
# each dim's fast-vs-naive train-step speedup against the committed
# report, failing if any fresh speedup falls more than 10% below the
# committed one.
#
# Leg 2 (BENCH_space.json): regenerates the TypeSpace index benchmark
# at reduced scale (10^4 and 10^5 markers) and fails if any scale's
# sharded-query speedup over the exact scan falls more than 10% below
# the committed ratio, or if recall@10 drops below the 0.95 floor.
#
# Leg 3 (BENCH_serve.json): regenerates the serve daemon benchmark and
# fails if any client count produced error replies (concurrency may
# never cost correctness), if the fresh throughput-scaling ratio
# (largest client count vs one client) falls below half the committed
# one, or if the engine's catch_unwind supervision wrapper costs more
# than 5% p50 on the unfaulted predict path
# (supervision_p50_overhead >= 1.05).
#
# Speedups are ratios measured within a single run, so — unlike
# absolute timings — they compare across machines. Pass paths to
# already-generated fresh JSONs ($1 = nn, $2 = space, $3 = serve) to
# skip the (slow) regenerations. Run from anywhere; operates on the
# repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

status=0

# ---------------- leg 1: nn kernel speedups ----------------
COMMITTED=BENCH_nn.json
[ -f "$COMMITTED" ] || { echo "benchdiff: no committed $COMMITTED" >&2; exit 1; }

FRESH=${1:-}
if [ -z "$FRESH" ]; then
    FRESH=$(mktemp "${TMPDIR:-/tmp}/bench_nn.XXXXXX.json")
    trap 'rm -f "$FRESH"' EXIT
    echo "benchdiff: regenerating nn benchmark into $FRESH ..."
    TYPILUS_BENCH_OUT="$FRESH" cargo run -q --release -p typilus-bench --bin bench_nn >/dev/null
fi

extract() { # extract <json> -> lines of "dim step_speedup"
    awk '
        /"dim":/          { v = $2; gsub(/[^0-9]/, "", v); dim = v }
        /"step_speedup":/ { v = $2; gsub(/[^0-9.]/, "", v); print dim, v }
    ' "$1"
}

found=0
while read -r dim fresh_speedup; do
    found=1
    committed_speedup=$(extract "$COMMITTED" | awk -v d="$dim" '$1 == d { print $2 }')
    if [ -z "$committed_speedup" ]; then
        echo "benchdiff: dim $dim missing from committed $COMMITTED" >&2
        status=1
        continue
    fi
    if awk -v f="$fresh_speedup" -v c="$committed_speedup" 'BEGIN { exit !(f < 0.9 * c) }'; then
        echo "benchdiff: dim $dim REGRESSED: fresh ${fresh_speedup}x vs committed ${committed_speedup}x (>10% below)" >&2
        status=1
    else
        echo "benchdiff: dim $dim OK: fresh ${fresh_speedup}x vs committed ${committed_speedup}x"
    fi
done < <(extract "$FRESH")

if [ "$found" -eq 0 ]; then
    echo "benchdiff: no step_speedup entries found in $FRESH" >&2
    status=1
fi

# ---------------- leg 2: space index query speedup + recall ----------------
SPACE_COMMITTED=BENCH_space.json
[ -f "$SPACE_COMMITTED" ] || { echo "benchdiff: no committed $SPACE_COMMITTED" >&2; exit 1; }

SPACE_FRESH=${2:-}
if [ -z "$SPACE_FRESH" ]; then
    SPACE_FRESH=$(mktemp "${TMPDIR:-/tmp}/bench_space.XXXXXX.json")
    trap 'rm -f "$FRESH" "$SPACE_FRESH"' EXIT
    echo "benchdiff: regenerating space benchmark into $SPACE_FRESH ..."
    TYPILUS_SPACE_SCALES="10000,100000" TYPILUS_BENCH_OUT="$SPACE_FRESH" \
        cargo run -q --release -p typilus-bench --bin bench_space >/dev/null
fi

extract_space() { # extract_space <json> -> lines of "markers speedup recall"
    awk '
        /"markers":/                { v = $2; gsub(/[^0-9]/, "", v); markers = v }
        /"recall_at_10":/           { v = $2; gsub(/[^0-9.]/, "", v); recall = v }
        /"query_speedup_vs_exact":/ { v = $2; gsub(/[^0-9.]/, "", v); print markers, v, recall }
    ' "$1"
}

space_found=0
while read -r markers fresh_speedup fresh_recall; do
    space_found=1
    committed_speedup=$(extract_space "$SPACE_COMMITTED" | awk -v m="$markers" '$1 == m { print $2 }')
    if [ -z "$committed_speedup" ]; then
        echo "benchdiff: $markers markers missing from committed $SPACE_COMMITTED" >&2
        status=1
        continue
    fi
    if awk -v f="$fresh_speedup" -v c="$committed_speedup" 'BEGIN { exit !(f < 0.9 * c) }'; then
        echo "benchdiff: space $markers markers query REGRESSED: fresh ${fresh_speedup}x vs committed ${committed_speedup}x (>10% below)" >&2
        status=1
    else
        echo "benchdiff: space $markers markers query OK: fresh ${fresh_speedup}x vs committed ${committed_speedup}x"
    fi
    if awk -v r="$fresh_recall" 'BEGIN { exit !(r < 0.95) }'; then
        echo "benchdiff: space $markers markers recall@10 TOO LOW: ${fresh_recall} (< 0.95)" >&2
        status=1
    else
        echo "benchdiff: space $markers markers recall@10 OK: ${fresh_recall}"
    fi
done < <(extract_space "$SPACE_FRESH")

if [ "$space_found" -eq 0 ]; then
    echo "benchdiff: no query_speedup_vs_exact entries found in $SPACE_FRESH" >&2
    status=1
fi

# ---------------- leg 3: serve error-free replies + throughput scaling ----------------
SERVE_COMMITTED=BENCH_serve.json
[ -f "$SERVE_COMMITTED" ] || { echo "benchdiff: no committed $SERVE_COMMITTED" >&2; exit 1; }

SERVE_FRESH=${3:-}
if [ -z "$SERVE_FRESH" ]; then
    SERVE_FRESH=$(mktemp "${TMPDIR:-/tmp}/bench_serve.XXXXXX.json")
    trap 'rm -f "$FRESH" "$SPACE_FRESH" "$SERVE_FRESH"' EXIT
    echo "benchdiff: regenerating serve benchmark into $SERVE_FRESH ..."
    TYPILUS_BENCH_OUT="$SERVE_FRESH" \
        cargo run -q --release -p typilus-bench --bin bench_serve >/dev/null
fi

extract_serve() { # extract_serve <json> -> lines of "clients errors"
    awk '
        /"clients":/ { v = $2; gsub(/[^0-9]/, "", v); clients = v }
        /"errors":/  { v = $2; gsub(/[^0-9]/, "", v); print clients, v }
    ' "$1"
}
scaling_of() { # scaling_of <json> -> the throughput_scaling value
    awk '/"throughput_scaling":/ { v = $2; gsub(/[^0-9.]/, "", v); print v }' "$1"
}
supervision_of() { # supervision_of <json> -> the supervision_p50_overhead value
    awk '/"supervision_p50_overhead":/ { v = $2; gsub(/[^0-9.]/, "", v); print v }' "$1"
}

serve_found=0
while read -r clients errs; do
    serve_found=1
    if [ "$errs" -ne 0 ]; then
        echo "benchdiff: serve $clients clients REGRESSED: $errs error replies (must be 0)" >&2
        status=1
    else
        echo "benchdiff: serve $clients clients OK: 0 error replies"
    fi
done < <(extract_serve "$SERVE_FRESH")

if [ "$serve_found" -eq 0 ]; then
    echo "benchdiff: no serve rows found in $SERVE_FRESH" >&2
    status=1
fi

fresh_scaling=$(scaling_of "$SERVE_FRESH")
committed_scaling=$(scaling_of "$SERVE_COMMITTED")
if [ -z "$fresh_scaling" ] || [ -z "$committed_scaling" ]; then
    echo "benchdiff: throughput_scaling missing from serve reports" >&2
    status=1
elif awk -v f="$fresh_scaling" -v c="$committed_scaling" 'BEGIN { exit !(f < 0.5 * c) }'; then
    echo "benchdiff: serve throughput scaling REGRESSED: fresh ${fresh_scaling}x vs committed ${committed_scaling}x (below half)" >&2
    status=1
else
    echo "benchdiff: serve throughput scaling OK: fresh ${fresh_scaling}x vs committed ${committed_scaling}x"
fi

fresh_supervision=$(supervision_of "$SERVE_FRESH")
if [ -z "$fresh_supervision" ]; then
    echo "benchdiff: supervision_p50_overhead missing from $SERVE_FRESH" >&2
    status=1
elif awk -v s="$fresh_supervision" 'BEGIN { exit !(s >= 1.05) }'; then
    echo "benchdiff: serve supervision wrapper REGRESSED: ${fresh_supervision}x p50 overhead (>= 1.05)" >&2
    status=1
else
    echo "benchdiff: serve supervision wrapper OK: ${fresh_supervision}x p50 overhead"
fi

if [ "$status" -ne 0 ]; then
    echo "benchdiff: FAILED" >&2
    exit "$status"
fi
echo "benchdiff: OK"
