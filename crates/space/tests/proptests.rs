//! Property-based invariants of the kNN indexes and the type map.

use proptest::prelude::*;
use typilus_nn::{available_widths, set_simd_width};
use typilus_space::{
    build_payload, l1, l1_pruned, l1_pruned_reference, l1_reference, reference_forest, ExactIndex,
    Hit, KnnConfig, PointStore, QueryScratch, RpForest, RpForestConfig, SpaceConfig, SpaceIndex,
    TypeMap,
};
use typilus_types::PyType;

fn arb_points(n: std::ops::Range<usize>, dim: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(prop::collection::vec(-1.0f32..1.0, dim), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn exact_query_is_sorted_and_within_bounds(
        points in arb_points(1..40, 4),
        query in prop::collection::vec(-1.0f32..1.0, 4),
        k in 1usize..10,
    ) {
        let idx = ExactIndex::new(points.clone());
        let hits = idx.query(&query, k);
        prop_assert!(hits.len() <= k.min(points.len()));
        for w in hits.windows(2) {
            prop_assert!(w[0].distance <= w[1].distance);
        }
        for h in &hits {
            prop_assert!(h.index < points.len());
        }
    }

    /// The chunked early-exit L1 kernel with bounded-heap top-k must
    /// reproduce the naive full-sort selection exactly — distances
    /// bit-for-bit, ties broken by index. Coordinates are drawn from a
    /// tiny discrete grid so equal distances actually occur.
    #[test]
    fn pruned_top_k_equals_naive_reference_including_ties(
        grid in prop::collection::vec(prop::collection::vec(0i8..4, 3), 1..50),
        query_grid in prop::collection::vec(0i8..4, 3),
        k in 1usize..12,
    ) {
        let points: Vec<Vec<f32>> =
            grid.iter().map(|p| p.iter().map(|&v| f32::from(v) * 0.5).collect()).collect();
        let query: Vec<f32> = query_grid.iter().map(|&v| f32::from(v) * 0.5).collect();
        let mut naive: Vec<Hit> = points
            .iter()
            .enumerate()
            .map(|(i, p)| Hit { index: i, distance: l1(&query, p) })
            .collect();
        naive.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.index.cmp(&b.index)));
        naive.truncate(k);
        let pruned = ExactIndex::new(points).query(&query, k);
        prop_assert_eq!(pruned.len(), naive.len());
        for (p, n) in pruned.iter().zip(&naive) {
            prop_assert_eq!(p.index, n.index);
            prop_assert_eq!(p.distance.to_bits(), n.distance.to_bits());
        }
    }

    /// Within the bound, the pruned kernel is bit-identical to plain L1;
    /// past the bound it must still report a value above the bound.
    #[test]
    fn pruned_l1_is_exact_or_provably_rejected(
        a in prop::collection::vec(-1.0f32..1.0, 1..40),
        b_seed in prop::collection::vec(-1.0f32..1.0, 40),
        bound in 0.0f32..30.0,
    ) {
        let b = &b_seed[..a.len()];
        let exact = l1(&a, b);
        let pruned = l1_pruned(&a, b, bound);
        if exact <= bound {
            prop_assert_eq!(pruned.to_bits(), exact.to_bits());
        } else {
            prop_assert!(pruned > bound, "pruned {pruned} must exceed bound {bound}");
        }
    }

    #[test]
    fn forest_with_full_search_matches_exact(
        points in arb_points(2..60, 3),
        query in prop::collection::vec(-1.0f32..1.0, 3),
        seed in 0u64..100,
    ) {
        let n = points.len();
        let exact = ExactIndex::new(points.clone());
        let forest = RpForest::build(
            points,
            RpForestConfig { trees: 6, leaf_size: 4, search_k: n },
            seed,
        );
        let e: Vec<usize> = exact.query(&query, 5).iter().map(|h| h.index).collect();
        let f: Vec<usize> = forest.query(&query, 5).iter().map(|h| h.index).collect();
        prop_assert_eq!(e, f);
    }

    #[test]
    fn typemap_probabilities_form_distribution(
        points in arb_points(1..30, 3),
        query in prop::collection::vec(-1.0f32..1.0, 3),
        k in 1usize..8,
        p in 0.01f32..5.0,
    ) {
        let mut map = TypeMap::new(3);
        let tys = ["int", "str", "bool"];
        for (i, pt) in points.iter().enumerate() {
            map.add(pt.clone(), tys[i % 3].parse::<PyType>().expect("valid"))
                .expect("matching-dim add");
        }
        let preds = map.predict(&query, KnnConfig { k, p });
        prop_assert!(!preds.is_empty());
        let total: f32 = preds.iter().map(|x| x.probability).sum();
        prop_assert!((total - 1.0).abs() < 1e-3, "total probability {total}");
        for w in preds.windows(2) {
            prop_assert!(w[0].probability >= w[1].probability);
        }
    }

    #[test]
    fn nearest_marker_type_wins_with_high_p(
        mut points in arb_points(2..20, 2),
        seed_point in prop::collection::vec(-1.0f32..1.0, 2),
    ) {
        // Plant a marker exactly at the query: with p -> infinity it must
        // dominate regardless of the rest of the map.
        let mut map = TypeMap::new(2);
        for pt in points.drain(..) {
            map.add(pt, "str".parse::<PyType>().expect("valid"))
                .expect("matching-dim add");
        }
        map.add(seed_point.clone(), "int".parse::<PyType>().expect("valid"))
            .expect("matching-dim add");
        let top = map
            .predict_top(&seed_point, KnnConfig { k: 5, p: 30.0 })
            .expect("nonempty map");
        prop_assert_eq!(top.ty.to_string(), "int");
    }

    /// At every SIMD width the dispatcher can select on this CPU, the
    /// dispatched L1 kernels are bit-identical to their scalar
    /// references — the TypeSpace analogue of the matmul
    /// `kernel_bitident` contract.
    #[test]
    fn l1_kernels_bit_identical_at_every_simd_width(
        a in prop::collection::vec(-8.0f32..8.0, 0..70),
        b_seed in prop::collection::vec(-8.0f32..8.0, 70),
        bound in 0.0f32..50.0,
    ) {
        let b = &b_seed[..a.len()];
        let want = l1_reference(&a, b);
        let want_pruned = l1_pruned_reference(&a, b, bound);
        for width in available_widths() {
            set_simd_width(width);
            prop_assert_eq!(l1(&a, b).to_bits(), want.to_bits());
            prop_assert_eq!(l1_pruned(&a, b, bound).to_bits(), want_pruned.to_bits());
        }
    }

    /// The zero-copy on-disk index returns exactly the hits of the
    /// in-memory forest the sharded build is defined against — same
    /// indexes, same distance bits — for any shard count and seed.
    #[test]
    fn disk_index_query_equals_reference_forest(
        points in arb_points(2..40, 4),
        query in prop::collection::vec(-1.0f32..1.0, 4),
        seed in 0u64..50,
        shards in 1usize..5,
        k in 1usize..8,
    ) {
        let mut store = PointStore::new(4);
        for p in &points {
            store.push(p);
        }
        let config = SpaceConfig {
            shards,
            forest: RpForestConfig { trees: 5, leaf_size: 4, search_k: 64 },
            rebuild_threshold: 8,
        };
        let names: Vec<String> =
            (0..points.len()).map(|i| format!("t{}", i % 3)).collect();
        let payload = build_payload(&store, &names, &config, seed, None).expect("build");
        let index = SpaceIndex::from_payload(&payload).expect("open");
        let forest = reference_forest(store, &config, seed);
        let mut scratch = QueryScratch::new();
        let mut disk_hits = Vec::new();
        index.query_into(&query, k, &mut scratch, &mut disk_hits);
        let mem_hits = forest.query(&query, k);
        prop_assert_eq!(disk_hits.len(), mem_hits.len());
        for (d, m) in disk_hits.iter().zip(&mem_hits) {
            prop_assert_eq!(d.index, m.index);
            prop_assert_eq!(d.distance.to_bits(), m.distance.to_bits());
        }
    }

    /// `query_into` with dirty, reused buffers returns exactly what the
    /// allocating `query` does, for both index kinds.
    #[test]
    fn query_into_with_reused_buffers_matches_query(
        points in arb_points(2..40, 3),
        queries in prop::collection::vec(prop::collection::vec(-1.0f32..1.0, 3), 1..5),
        k in 1usize..6,
        seed in 0u64..20,
    ) {
        let n = points.len();
        let exact = ExactIndex::new(points.clone());
        let forest = RpForest::build(
            points,
            RpForestConfig { trees: 4, leaf_size: 4, search_k: n },
            seed,
        );
        let mut scratch = QueryScratch::new();
        // Pre-soiled output: query_into must fully overwrite it.
        let mut out = vec![Hit { index: usize::MAX, distance: f32::NAN }];
        for q in &queries {
            exact.query_into(q, k, &mut scratch, &mut out);
            prop_assert_eq!(&out, &exact.query(q, k));
            forest.query_into(q, k, &mut scratch, &mut out);
            prop_assert_eq!(&out, &forest.query(q, k));
        }
    }

    /// A map serving part of its markers from the zero-copy sharded
    /// index and the rest from the incremental overlay predicts exactly
    /// what a plain exact-scan map over the same markers does.
    #[test]
    fn sharded_map_with_overlay_matches_exact_map(
        points in arb_points(4..30, 3),
        extra in arb_points(1..6, 3),
        query in prop::collection::vec(-1.0f32..1.0, 3),
        k in 1usize..6,
    ) {
        let tys = ["int", "str", "bool"];
        let mut sharded = TypeMap::new(3);
        let mut exact = TypeMap::new(3);
        for (i, p) in points.iter().enumerate() {
            let ty = tys[i % 3].parse::<PyType>().expect("valid");
            sharded.add(p.clone(), ty.clone()).expect("matching-dim add");
            exact.add(p.clone(), ty).expect("matching-dim add");
        }
        let config = SpaceConfig {
            shards: 3,
            // search_k far above the point count: the approximate index
            // degenerates to exhaustive search, so results must match
            // the exact scan hit-for-hit.
            forest: RpForestConfig { trees: 4, leaf_size: 4, search_k: 1 << 20 },
            // High threshold: the extra markers stay in the overlay.
            rebuild_threshold: 1_000_000,
        };
        sharded.build_sharded_index(&config, 9, None).expect("build");
        for (i, p) in extra.iter().enumerate() {
            let ty = tys[(i + 1) % 3].parse::<PyType>().expect("valid");
            sharded.add(p.clone(), ty.clone()).expect("matching-dim add");
            exact.add(p.clone(), ty).expect("matching-dim add");
        }
        prop_assert_eq!(sharded.overlay_len(), extra.len());
        let a = sharded.predict(&query, KnnConfig { k, p: 1.3 });
        let b = exact.predict(&query, KnnConfig { k, p: 1.3 });
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.ty.to_string(), y.ty.to_string());
            prop_assert_eq!(x.probability.to_bits(), y.probability.to_bits());
        }
    }
}
