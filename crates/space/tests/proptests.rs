//! Property-based invariants of the kNN indexes and the type map.

use proptest::prelude::*;
use typilus_space::{l1, l1_pruned, ExactIndex, Hit, KnnConfig, RpForest, RpForestConfig, TypeMap};
use typilus_types::PyType;

fn arb_points(n: std::ops::Range<usize>, dim: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(prop::collection::vec(-1.0f32..1.0, dim), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn exact_query_is_sorted_and_within_bounds(
        points in arb_points(1..40, 4),
        query in prop::collection::vec(-1.0f32..1.0, 4),
        k in 1usize..10,
    ) {
        let idx = ExactIndex::new(points.clone());
        let hits = idx.query(&query, k);
        prop_assert!(hits.len() <= k.min(points.len()));
        for w in hits.windows(2) {
            prop_assert!(w[0].distance <= w[1].distance);
        }
        for h in &hits {
            prop_assert!(h.index < points.len());
        }
    }

    /// The chunked early-exit L1 kernel with bounded-heap top-k must
    /// reproduce the naive full-sort selection exactly — distances
    /// bit-for-bit, ties broken by index. Coordinates are drawn from a
    /// tiny discrete grid so equal distances actually occur.
    #[test]
    fn pruned_top_k_equals_naive_reference_including_ties(
        grid in prop::collection::vec(prop::collection::vec(0i8..4, 3), 1..50),
        query_grid in prop::collection::vec(0i8..4, 3),
        k in 1usize..12,
    ) {
        let points: Vec<Vec<f32>> =
            grid.iter().map(|p| p.iter().map(|&v| f32::from(v) * 0.5).collect()).collect();
        let query: Vec<f32> = query_grid.iter().map(|&v| f32::from(v) * 0.5).collect();
        let mut naive: Vec<Hit> = points
            .iter()
            .enumerate()
            .map(|(i, p)| Hit { index: i, distance: l1(&query, p) })
            .collect();
        naive.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.index.cmp(&b.index)));
        naive.truncate(k);
        let pruned = ExactIndex::new(points).query(&query, k);
        prop_assert_eq!(pruned.len(), naive.len());
        for (p, n) in pruned.iter().zip(&naive) {
            prop_assert_eq!(p.index, n.index);
            prop_assert_eq!(p.distance.to_bits(), n.distance.to_bits());
        }
    }

    /// Within the bound, the pruned kernel is bit-identical to plain L1;
    /// past the bound it must still report a value above the bound.
    #[test]
    fn pruned_l1_is_exact_or_provably_rejected(
        a in prop::collection::vec(-1.0f32..1.0, 1..40),
        b_seed in prop::collection::vec(-1.0f32..1.0, 40),
        bound in 0.0f32..30.0,
    ) {
        let b = &b_seed[..a.len()];
        let exact = l1(&a, b);
        let pruned = l1_pruned(&a, b, bound);
        if exact <= bound {
            prop_assert_eq!(pruned.to_bits(), exact.to_bits());
        } else {
            prop_assert!(pruned > bound, "pruned {pruned} must exceed bound {bound}");
        }
    }

    #[test]
    fn forest_with_full_search_matches_exact(
        points in arb_points(2..60, 3),
        query in prop::collection::vec(-1.0f32..1.0, 3),
        seed in 0u64..100,
    ) {
        let n = points.len();
        let exact = ExactIndex::new(points.clone());
        let forest = RpForest::build(
            points,
            RpForestConfig { trees: 6, leaf_size: 4, search_k: n },
            seed,
        );
        let e: Vec<usize> = exact.query(&query, 5).iter().map(|h| h.index).collect();
        let f: Vec<usize> = forest.query(&query, 5).iter().map(|h| h.index).collect();
        prop_assert_eq!(e, f);
    }

    #[test]
    fn typemap_probabilities_form_distribution(
        points in arb_points(1..30, 3),
        query in prop::collection::vec(-1.0f32..1.0, 3),
        k in 1usize..8,
        p in 0.01f32..5.0,
    ) {
        let mut map = TypeMap::new(3);
        let tys = ["int", "str", "bool"];
        for (i, pt) in points.iter().enumerate() {
            map.add(pt.clone(), tys[i % 3].parse::<PyType>().expect("valid"));
        }
        let preds = map.predict(&query, KnnConfig { k, p });
        prop_assert!(!preds.is_empty());
        let total: f32 = preds.iter().map(|x| x.probability).sum();
        prop_assert!((total - 1.0).abs() < 1e-3, "total probability {total}");
        for w in preds.windows(2) {
            prop_assert!(w[0].probability >= w[1].probability);
        }
    }

    #[test]
    fn nearest_marker_type_wins_with_high_p(
        mut points in arb_points(2..20, 2),
        seed_point in prop::collection::vec(-1.0f32..1.0, 2),
    ) {
        // Plant a marker exactly at the query: with p -> infinity it must
        // dominate regardless of the rest of the map.
        let mut map = TypeMap::new(2);
        for pt in points.drain(..) {
            map.add(pt, "str".parse::<PyType>().expect("valid"));
        }
        map.add(seed_point.clone(), "int".parse::<PyType>().expect("valid"));
        let top = map
            .predict_top(&seed_point, KnnConfig { k: 5, p: 30.0 })
            .expect("nonempty map");
        prop_assert_eq!(top.ty.to_string(), "int");
    }
}
