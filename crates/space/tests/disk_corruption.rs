//! Corruption detection for the on-disk TypeSpace index.
//!
//! Mirrors `tests/persist_corruption.rs` for the model artifact: every
//! damage mode an operator can plausibly hit — truncation, a stale
//! format version, bit rot in the header, in a tree block, in the point
//! block — must surface as the matching typed [`SpaceError`], never as
//! a panic, a garbage query result, or a silently shorter index. A
//! final exhaustive sweep flips every byte of a small payload and
//! requires each flip to be caught by open-time validation or by
//! `verify()`.

use typilus_space::{
    build_payload, PointStore, RpForestConfig, SpaceConfig, SpaceError, SpaceIndex,
    SPACE_HEADER_LEN, SPACE_VERSION,
};

fn sample_config() -> SpaceConfig {
    SpaceConfig {
        shards: 4,
        forest: RpForestConfig {
            trees: 4,
            leaf_size: 8,
            search_k: 256,
        },
        rebuild_threshold: 1024,
    }
}

fn sample_payload(n: usize) -> Vec<u8> {
    let dim = 6;
    let mut points = PointStore::new(dim);
    let mut row = vec![0.0f32; dim];
    for i in 0..n {
        for (d, slot) in row.iter_mut().enumerate() {
            *slot = ((i * 31 + d * 7) % 13) as f32 * 0.25 - 1.5;
        }
        points.push(&row);
    }
    let names: Vec<String> = (0..n).map(|i| format!("type_{}", i % 5)).collect();
    build_payload(&points, &names, &sample_config(), 42, None).expect("build")
}

fn u64_at(payload: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(payload[off..off + 8].try_into().expect("8 bytes"))
}

#[test]
fn truncation_short_of_header_is_typed() {
    let payload = sample_payload(80);
    for cut in [0, 1, 7, 8, 50, SPACE_HEADER_LEN - 1] {
        match SpaceIndex::from_payload(&payload[..cut]) {
            Err(SpaceError::Truncated { found, .. }) => assert_eq!(found, cut as u64),
            other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
        }
    }
}

#[test]
fn truncation_mid_payload_is_typed() {
    let payload = sample_payload(80);
    let cuts = [
        SPACE_HEADER_LEN,
        SPACE_HEADER_LEN + 10,
        payload.len() / 2,
        payload.len() - 1,
    ];
    for cut in cuts {
        match SpaceIndex::from_payload(&payload[..cut]) {
            Err(SpaceError::Truncated { expected, found }) => {
                assert_eq!(expected, payload.len() as u64);
                assert_eq!(found, cut as u64);
            }
            other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
        }
    }
}

#[test]
fn stale_version_is_typed_before_checksums() {
    let mut payload = sample_payload(60);
    // Bump the version field without re-fixing the header CRC: the
    // version check must fire first so a reader from the future gets
    // "unsupported version", not "corrupt header".
    payload[8] = payload[8].wrapping_add(1);
    match SpaceIndex::from_payload(&payload) {
        Err(SpaceError::VersionMismatch { found, expected }) => {
            assert_eq!(found, SPACE_VERSION + 1);
            assert_eq!(expected, SPACE_VERSION);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
}

#[test]
fn bad_magic_is_typed() {
    let mut payload = sample_payload(60);
    payload[3] ^= 0x40;
    assert_eq!(
        SpaceIndex::from_payload(&payload).err(),
        Some(SpaceError::BadMagic)
    );
}

#[test]
fn header_flip_is_typed() {
    // Flip a byte of the seed field (offsets 40..48): past magic and
    // version, so only the header CRC can catch it.
    let mut payload = sample_payload(60);
    payload[41] ^= 0x01;
    match SpaceIndex::from_payload(&payload) {
        Err(SpaceError::HeaderCorrupt { .. }) => {}
        other => panic!("expected HeaderCorrupt, got {other:?}"),
    }
}

#[test]
fn tree_block_flip_opens_but_fails_verify_naming_the_shard() {
    let payload = sample_payload(120);
    // Shard table entry 0 starts right after the header: off, len, crc.
    let off = u64_at(&payload, SPACE_HEADER_LEN) as usize;
    let len = u64_at(&payload, SPACE_HEADER_LEN + 8) as usize;
    assert!(len > 0, "first shard must hold trees");
    let mut bad = payload.clone();
    bad[off + len / 2] ^= 0x10;
    // Open-time validation is O(header) by design — it must succeed.
    let index = SpaceIndex::from_payload(&bad).expect("open is O(header)");
    match index.verify() {
        Err(SpaceError::SectionCorrupt { section, .. }) => {
            assert_eq!(section, "shard 0", "shard CRC must localize the damage");
        }
        other => panic!("expected SectionCorrupt, got {other:?}"),
    }
    // The pristine payload passes the same sweep.
    SpaceIndex::from_payload(&payload)
        .expect("open")
        .verify()
        .expect("pristine payload verifies");
}

#[test]
fn point_block_flip_fails_verify_as_payload_corruption() {
    let payload = sample_payload(120);
    // points_off lives at header offset 56; the point block is covered
    // by the whole-payload checksum (file_id), not a shard CRC.
    let points_off = u64_at(&payload, 56) as usize;
    let mut bad = payload.clone();
    bad[points_off] ^= 0x04;
    let index = SpaceIndex::from_payload(&bad).expect("open is O(header)");
    match index.verify() {
        Err(SpaceError::SectionCorrupt { section, .. }) => assert_eq!(section, "payload"),
        other => panic!("expected SectionCorrupt, got {other:?}"),
    }
}

#[test]
fn every_single_byte_flip_is_detected() {
    // The exhaustive guarantee behind the targeted cases above: no
    // byte of the file is outside some integrity check. Open-time
    // validation (magic, version, header CRC, layout bounds) or the
    // verify() sweep (per-shard CRCs, whole-payload file_id) must
    // reject every 1-byte corruption.
    let payload = sample_payload(40);
    let mut bad = payload.clone();
    for i in 0..bad.len() {
        bad[i] ^= 0xA5;
        let detected = match SpaceIndex::from_payload(&bad) {
            Err(_) => true,
            Ok(index) => index.verify().is_err(),
        };
        assert!(detected, "flip at byte {i} of {} went unnoticed", bad.len());
        bad[i] = payload[i];
    }
}
