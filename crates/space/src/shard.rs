//! Sharded, pool-parallel construction of the TypeSpace forest.
//!
//! The forest's trees are statistically independent — each is grown
//! from its own slice of an RNG stream — so the natural unit of
//! parallelism is a *shard*: a group of trees built from one
//! deterministic seed derived from `(base seed, shard number)` with a
//! splitmix64 mix. Shards build concurrently on the
//! [`typilus_nn::WorkerPool`]'s `map_ordered` (stride assignment,
//! ordered reduction), so the resulting tree sets — and the on-disk
//! bytes serialized from them — are identical at any thread count,
//! including a serial build with no pool at all. The benchmark and
//! detcheck assert this byte-identity.

use crate::index::{PointStore, RpForest, RpForestConfig, TreeBuilder, TreeNode};
use serde::{Deserialize, Serialize};
use typilus_nn::WorkerPool;

/// Configuration of the sharded TypeSpace index.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpaceConfig {
    /// Number of tree groups built (and checksummed) independently;
    /// also the grain of build parallelism. Clamped up to 1.
    pub shards: usize,
    /// Per-tree construction and search parameters.
    pub forest: RpForestConfig,
    /// Overlay markers accumulated before [`crate::TypeMap`] triggers
    /// an automatic deterministic rebuild of the sharded index.
    pub rebuild_threshold: usize,
}

impl Default for SpaceConfig {
    fn default() -> Self {
        SpaceConfig {
            shards: 8,
            forest: RpForestConfig::default(),
            rebuild_threshold: 1024,
        }
    }
}

/// Finalizer of the splitmix64 generator — a full-avalanche mix, so
/// neighbouring shard numbers land in unrelated RNG streams.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The RNG seed of shard `shard` under base seed `seed`. Pure data —
/// independent of thread count or build order.
pub(crate) fn shard_seed(seed: u64, shard: usize) -> u64 {
    splitmix64(seed ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Distributes `trees` trees over `shards` shards: `trees / shards`
/// each, with the remainder going to the first shards.
pub(crate) fn tree_counts(trees: usize, shards: usize) -> Vec<usize> {
    let shards = shards.max(1);
    let base = trees / shards;
    let extra = trees % shards;
    (0..shards).map(|s| base + usize::from(s < extra)).collect()
}

/// One shard's trees: a node arena plus the root of each tree.
pub(crate) struct ShardTrees {
    pub(crate) nodes: Vec<TreeNode>,
    pub(crate) roots: Vec<usize>,
}

/// Builds one shard's tree group serially.
pub(crate) fn build_shard(
    points: &PointStore,
    config: RpForestConfig,
    trees: usize,
    seed: u64,
) -> ShardTrees {
    let mut builder = TreeBuilder::new(points, config);
    builder.build_trees(trees, seed);
    ShardTrees {
        nodes: builder.nodes,
        roots: builder.roots,
    }
}

/// Builds every shard — on the pool when one is given, serially
/// otherwise. Output is a pure function of `(points, config, seed)`:
/// each shard's seed is derived from its shard *number*, and
/// `map_ordered` returns results in input order, so the two paths are
/// interchangeable bit-for-bit.
pub(crate) fn build_shards(
    points: &PointStore,
    config: &SpaceConfig,
    seed: u64,
    pool: Option<&WorkerPool>,
) -> Vec<ShardTrees> {
    let specs: Vec<(usize, usize)> = tree_counts(config.forest.trees, config.shards)
        .into_iter()
        .enumerate()
        .collect();
    match pool {
        Some(pool) => pool.map_ordered(&specs, |_, &(s, trees)| {
            build_shard(points, config.forest, trees, shard_seed(seed, s))
        }),
        None => specs
            .iter()
            .map(|&(s, trees)| build_shard(points, config.forest, trees, shard_seed(seed, s)))
            .collect(),
    }
}

/// The in-memory equivalent of the sharded on-disk index: every
/// shard's trees merged into a single [`RpForest`] (node indexes
/// rebased, roots concatenated in shard order). The on-disk writer
/// consumes the identical per-shard tree sets, so tests can assert the
/// zero-copy view returns exactly this forest's results.
pub fn reference_forest(points: PointStore, config: &SpaceConfig, seed: u64) -> RpForest {
    let shards = build_shards(&points, config, seed, None);
    let mut nodes: Vec<TreeNode> = Vec::new();
    let mut roots: Vec<usize> = Vec::new();
    for shard in shards {
        let base = nodes.len();
        nodes.extend(shard.nodes.into_iter().map(|node| match node {
            TreeNode::Leaf { points } => TreeNode::Leaf { points },
            TreeNode::Split {
                direction,
                threshold,
                left,
                right,
            } => TreeNode::Split {
                direction,
                threshold,
                left: left + base,
                right: right + base,
            },
        }));
        roots.extend(shard.roots.into_iter().map(|r| r + base));
    }
    RpForest::from_parts(points, nodes, roots, config.forest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_distribution_covers_all_trees() {
        assert_eq!(tree_counts(12, 4), vec![3, 3, 3, 3]);
        assert_eq!(tree_counts(13, 4), vec![4, 3, 3, 3]);
        assert_eq!(tree_counts(2, 4), vec![1, 1, 0, 0]);
        assert_eq!(tree_counts(5, 0), vec![5]);
        for (trees, shards) in [(12, 4), (7, 3), (1, 8), (0, 2)] {
            assert_eq!(tree_counts(trees, shards).iter().sum::<usize>(), trees);
        }
    }

    #[test]
    fn shard_seeds_are_distinct_and_stable() {
        let a = shard_seed(42, 0);
        assert_eq!(a, shard_seed(42, 0));
        let seeds: std::collections::BTreeSet<u64> = (0..16).map(|s| shard_seed(42, s)).collect();
        assert_eq!(seeds.len(), 16, "shard seeds must not collide");
        assert_ne!(shard_seed(42, 0), shard_seed(43, 0));
    }

    #[test]
    fn pooled_build_equals_serial_build() {
        let mut points = PointStore::new(4);
        let mut state = 7u64;
        for _ in 0..200 {
            let row: Vec<f32> = (0..4)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
                })
                .collect();
            points.push(&row);
        }
        let config = SpaceConfig {
            shards: 4,
            forest: RpForestConfig {
                trees: 6,
                leaf_size: 8,
                search_k: 64,
            },
            rebuild_threshold: 64,
        };
        let serial = build_shards(&points, &config, 9, None);
        let pool = WorkerPool::new(3);
        let pooled = build_shards(&points, &config, 9, Some(&pool));
        assert_eq!(serial.len(), pooled.len());
        for (a, b) in serial.iter().zip(&pooled) {
            assert_eq!(a.roots, b.roots);
            assert_eq!(a.nodes.len(), b.nodes.len());
        }
    }
}
