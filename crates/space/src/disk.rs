//! The contiguous, mmap-able on-disk layout of the sharded TypeSpace
//! index, and the zero-copy view that queries it without
//! deserialization.
//!
//! # Layout (all integers and floats little-endian)
//!
//! ```text
//! offset  size          field
//! 0       8             magic "TYPSPIDX"
//! 8       4             format version (u32, currently 1)
//! 12      4             dim (u32)
//! 16      4             shards (u32)
//! 20      4             trees (u32, total across shards)
//! 24      4             leaf_size (u32)
//! 28      4             search_k (u32)
//! 32      8             points (u64)
//! 40      8             build seed (u64)
//! 48      8             rebuild_threshold (u64)
//! 56      8             points_off (u64; == 104 + shards·24)
//! 64      8             types_off (u64)
//! 72      8             payload_len (u64, whole payload)
//! 80      8             file_id (u64: CRC-64/XZ of payload[104..])
//! 88      8             reserved (0)
//! 96      8             header_crc (u64: CRC-64/XZ of payload[0..96])
//! 104     shards·24     shard table: per shard { off u64, len u64, crc u64 }
//! ...     points·dim·4  point block (row-major f32; 8-byte aligned)
//! ...     Σ len         per-shard tree blocks (u32 words, 4-byte aligned)
//! ...     rest          type table: count u32, then per distinct type
//!                       { len u32, utf-8 bytes, pad to 4 }, then
//!                       points·u32 type ids
//! ```
//!
//! A shard's tree block is a flat `u32` word stream, offsets relative
//! to the block start: `word 0` = root count `R`, words `1..=R` = root
//! offsets, then nodes. A node starting at word `o` is a leaf when
//! `word[o]` is even (`word[o] >> 1` point ids follow) and a split when
//! odd (`left off, right off, threshold bits, dim direction bits`
//! follow). Children are emitted before parents (the builder pushes
//! post-order), so the writer needs no fix-ups.
//!
//! # Integrity and forward compatibility
//!
//! The header is self-checksummed (`header_crc`); `file_id` checksums
//! everything after the header and doubles as the index's identity —
//! the model artifact stores it to pair with the sidecar file. Each
//! shard block carries its own CRC so [`SpaceIndex::verify`] can
//! localize corruption. On disk the payload is framed by
//! `atomic_io::write_artifact`, adding the standard footer. Readers
//! must reject any version they do not know — fields are only ever
//! appended by bumping the version, never reinterpreted — and unknown
//! trailing bytes are an error (`payload_len` pins the exact size).
//!
//! Opening a view costs O(header + shard table): no node is touched
//! until a query walks it, and no allocation other than the `Vec` of
//! shard ranges is made. [`SpaceIndex::verify`] is the optional
//! O(payload) corruption sweep — still allocation- and
//! deserialization-free.

use crate::error::SpaceError;
use crate::index::{dot, top_k_into, Hit, PointStore, QueryScratch, SliceRows, TreeNode};
use crate::shard::{build_shards, ShardTrees, SpaceConfig};
use crate::RpForestConfig;
use std::sync::Arc;
use typilus_nn::WorkerPool;

/// First 8 payload bytes of a TypeSpace index.
pub const SPACE_MAGIC: &[u8; 8] = b"TYPSPIDX";
/// On-disk format version this build writes and reads.
pub const SPACE_VERSION: u32 = 1;
/// Fixed header size in bytes (8-byte aligned so the following
/// sections inherit the buffer's alignment).
pub const SPACE_HEADER_LEN: usize = 104;

const SHARD_ENTRY_LEN: usize = 24;
const HEADER_CRC_OFF: usize = 96;

// CRC-64/XZ, duplicated from `typilus_core::atomic_io` — `core`
// depends on this crate, so the shared checksum lives on both sides of
// the boundary. The known-answer test below pins the two in sync.
const CRC64_POLY: u64 = 0xC96C_5795_D787_0F42;

const fn crc64_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ CRC64_POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC64_TABLE: [u64; 256] = crc64_table();

// lint: allow(S3) — the lookup index is masked to 8 bits and CRC64_TABLE has 256 entries
fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = !0u64;
    for &b in bytes {
        crc = CRC64_TABLE[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

// --- little-endian field access ------------------------------------------

fn read_u32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"))
}

fn read_u64(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"))
}

fn write_u32(bytes: &mut [u8], off: usize, v: u32) {
    bytes[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

fn write_u64(bytes: &mut [u8], off: usize, v: u64) {
    bytes[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

/// Reinterprets 4-aligned bytes as `f32`s.
fn cast_f32s(bytes: &[u8]) -> &[f32] {
    debug_assert_eq!(bytes.len() % 4, 0);
    debug_assert_eq!(bytes.as_ptr() as usize % 4, 0);
    // SAFETY: the view constructor guarantees the backing buffer is
    // 8-byte aligned and every section offset is a multiple of 4, so
    // `bytes` is 4-aligned; any bit pattern is a valid f32; the
    // lifetime is tied to the borrowed bytes.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<f32>(), bytes.len() / 4) }
}

/// Reinterprets 4-aligned bytes as `u32` words.
fn cast_u32s(bytes: &[u8]) -> &[u32] {
    debug_assert_eq!(bytes.len() % 4, 0);
    debug_assert_eq!(bytes.as_ptr() as usize % 4, 0);
    // SAFETY: as in `cast_f32s` — alignment is a structural invariant
    // of the view, and any bit pattern is a valid u32.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u32>(), bytes.len() / 4) }
}

/// Reinterprets a word subslice as `f32`s (same size and alignment).
fn words_as_f32s(words: &[u32]) -> &[f32] {
    // SAFETY: u32 and f32 have identical size and alignment; any bit
    // pattern is a valid f32.
    unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<f32>(), words.len()) }
}

/// Owned byte buffer guaranteed 8-byte aligned (backed by `Vec<u64>`),
/// so an owned payload supports the same zero-copy casts as a
/// page-aligned mmap.
#[derive(Debug, Clone)]
pub struct AlignedBytes {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBytes {
    /// Copies `bytes` into fresh 8-aligned storage.
    pub fn from_slice(bytes: &[u8]) -> AlignedBytes {
        let mut buf = AlignedBytes {
            words: vec![0u64; bytes.len().div_ceil(8)],
            len: bytes.len(),
        };
        // SAFETY: the u64 buffer owns at least `len` bytes; u8 has no
        // alignment requirement and the write stays in bounds.
        unsafe { std::slice::from_raw_parts_mut(buf.words.as_mut_ptr().cast::<u8>(), buf.len) }
            .copy_from_slice(bytes);
        buf
    }
}

impl AsRef<[u8]> for AlignedBytes {
    fn as_ref(&self) -> &[u8] {
        // SAFETY: the u64 buffer owns at least `len` bytes and u8 has
        // no alignment requirement.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }
}

// --- writer ---------------------------------------------------------------

/// Serializes one shard's trees into its flat word stream.
fn shard_block(shard: &ShardTrees, dim: usize) -> Result<Vec<u8>, SpaceError> {
    let node_words = |node: &TreeNode| match node {
        TreeNode::Leaf { points } => 1 + points.len(),
        TreeNode::Split { .. } => 4 + dim,
    };
    let base = 1 + shard.roots.len();
    let mut offsets: Vec<usize> = Vec::with_capacity(shard.nodes.len());
    let mut off = base;
    for node in &shard.nodes {
        offsets.push(off);
        off += node_words(node);
    }
    if off > u32::MAX as usize {
        return Err(SpaceError::TooLarge {
            what: format!("shard tree block ({off} words)"),
        });
    }
    let mut words: Vec<u32> = Vec::with_capacity(off);
    words.push(shard.roots.len() as u32);
    for &root in &shard.roots {
        words.push(offsets[root] as u32);
    }
    for node in &shard.nodes {
        match node {
            TreeNode::Leaf { points } => {
                // Leaf tag is the count shifted left; bit 0 = 0.
                words.push((points.len() as u32) << 1);
                for &p in points {
                    words.push(p as u32);
                }
            }
            TreeNode::Split {
                direction,
                threshold,
                left,
                right,
            } => {
                words.push(1); // split tag: bit 0 = 1
                words.push(offsets[*left] as u32);
                words.push(offsets[*right] as u32);
                words.push(threshold.to_bits());
                for &d in direction {
                    words.push(d.to_bits());
                }
            }
        }
    }
    debug_assert_eq!(words.len(), off);
    let mut bytes = Vec::with_capacity(words.len() * 4);
    for w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    Ok(bytes)
}

/// Serializes the type table: distinct names (sorted, so the table is
/// canonical) followed by one id per marker.
fn type_block(type_names: &[String]) -> Result<Vec<u8>, SpaceError> {
    let distinct: Vec<&str> = type_names
        .iter()
        .map(String::as_str)
        .collect::<std::collections::BTreeSet<&str>>()
        .into_iter()
        .collect();
    if distinct.len() > u32::MAX as usize {
        return Err(SpaceError::TooLarge {
            what: format!("distinct types ({})", distinct.len()),
        });
    }
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&(distinct.len() as u32).to_le_bytes());
    for name in &distinct {
        if name.len() > u32::MAX as usize {
            return Err(SpaceError::TooLarge {
                what: "type name".to_string(),
            });
        }
        bytes.extend_from_slice(&(name.len() as u32).to_le_bytes());
        bytes.extend_from_slice(name.as_bytes());
        while bytes.len() % 4 != 0 {
            bytes.push(0);
        }
    }
    for name in type_names {
        let id = distinct
            .binary_search(&name.as_str())
            .expect("every marker's type is in the distinct set");
        bytes.extend_from_slice(&(id as u32).to_le_bytes());
    }
    Ok(bytes)
}

/// Builds the complete index payload for `points` (one type name per
/// point). Shards build on `pool` when given; the bytes are identical
/// either way. The payload is what `atomic_io::write_artifact` frames
/// on disk, and what [`SpaceIndex`] views zero-copy. Public so
/// benchmarks and determinism checks can assert byte-identity across
/// thread counts without opening a view.
pub fn build_payload(
    points: &PointStore,
    type_names: &[String],
    config: &SpaceConfig,
    seed: u64,
    pool: Option<&WorkerPool>,
) -> Result<Vec<u8>, SpaceError> {
    if type_names.len() != points.len() {
        return Err(SpaceError::MarkerMismatch {
            index_points: points.len(),
            map_markers: type_names.len(),
        });
    }
    if points.len() > u32::MAX as usize {
        return Err(SpaceError::TooLarge {
            what: format!("points ({})", points.len()),
        });
    }
    if points.dim() > u32::MAX as usize {
        return Err(SpaceError::TooLarge {
            what: format!("dim ({})", points.dim()),
        });
    }
    let config = SpaceConfig {
        shards: config.shards.max(1),
        ..*config
    };
    let shards = build_shards(points, &config, seed, pool);
    let mut blocks = Vec::with_capacity(shards.len());
    for shard in &shards {
        blocks.push(shard_block(shard, points.dim())?);
    }
    let types = type_block(type_names)?;

    let table_off = SPACE_HEADER_LEN;
    let points_off = table_off + shards.len() * SHARD_ENTRY_LEN;
    let points_len = points.len() * points.dim() * 4;
    let mut shard_offs = Vec::with_capacity(blocks.len());
    let mut off = points_off + points_len;
    for block in &blocks {
        shard_offs.push(off);
        off += block.len();
    }
    let types_off = off;
    let payload_len = types_off + types.len();

    let mut payload = vec![0u8; payload_len];
    for (i, &x) in points.data().iter().enumerate() {
        let off = points_off + i * 4;
        payload[off..off + 4].copy_from_slice(&x.to_le_bytes());
    }
    for ((block, &boff), entry) in blocks.iter().zip(&shard_offs).zip(0..) {
        payload[boff..boff + block.len()].copy_from_slice(block);
        let entry_off = table_off + entry * SHARD_ENTRY_LEN;
        write_u64(&mut payload, entry_off, boff as u64);
        write_u64(&mut payload, entry_off + 8, block.len() as u64);
        write_u64(&mut payload, entry_off + 16, crc64(block));
    }
    payload[types_off..].copy_from_slice(&types);

    payload[..8].copy_from_slice(SPACE_MAGIC);
    write_u32(&mut payload, 8, SPACE_VERSION);
    write_u32(&mut payload, 12, points.dim() as u32);
    write_u32(&mut payload, 16, shards.len() as u32);
    write_u32(&mut payload, 20, config.forest.trees as u32);
    write_u32(&mut payload, 24, config.forest.leaf_size as u32);
    write_u32(&mut payload, 28, config.forest.search_k as u32);
    write_u64(&mut payload, 32, points.len() as u64);
    write_u64(&mut payload, 40, seed);
    write_u64(&mut payload, 48, config.rebuild_threshold as u64);
    write_u64(&mut payload, 56, points_off as u64);
    write_u64(&mut payload, 64, types_off as u64);
    write_u64(&mut payload, 72, payload_len as u64);
    let file_id = crc64(&payload[SPACE_HEADER_LEN..]);
    write_u64(&mut payload, 80, file_id);
    write_u64(&mut payload, 88, 0);
    let header_crc = crc64(&payload[..HEADER_CRC_OFF]);
    write_u64(&mut payload, HEADER_CRC_OFF, header_crc);
    Ok(payload)
}

// --- view -----------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct ShardRange {
    off: usize,
    len: usize,
    crc: u64,
}

#[derive(Debug, Clone)]
struct Meta {
    dim: usize,
    points: usize,
    config: SpaceConfig,
    seed: u64,
    file_id: u64,
    payload_len: usize,
    points_off: usize,
    types_off: usize,
    shards: Vec<ShardRange>,
}

/// Parses and validates the header + shard table. O(header); touches
/// no point, tree, or type bytes.
fn parse_meta(payload: &[u8]) -> Result<Meta, SpaceError> {
    if payload.len() < SPACE_HEADER_LEN {
        return Err(SpaceError::Truncated {
            expected: SPACE_HEADER_LEN as u64,
            found: payload.len() as u64,
        });
    }
    if &payload[..8] != SPACE_MAGIC {
        return Err(SpaceError::BadMagic);
    }
    let version = read_u32(payload, 8);
    if version != SPACE_VERSION {
        return Err(SpaceError::VersionMismatch {
            found: version,
            expected: SPACE_VERSION,
        });
    }
    let recorded_crc = read_u64(payload, HEADER_CRC_OFF);
    let actual_crc = crc64(&payload[..HEADER_CRC_OFF]);
    if recorded_crc != actual_crc {
        return Err(SpaceError::HeaderCorrupt {
            expected: recorded_crc,
            found: actual_crc,
        });
    }
    let payload_len = read_u64(payload, 72);
    if payload_len != payload.len() as u64 {
        return Err(SpaceError::Truncated {
            expected: payload_len,
            found: payload.len() as u64,
        });
    }
    let dim = read_u32(payload, 12) as usize;
    let shard_count = read_u32(payload, 16) as usize;
    let trees = read_u32(payload, 20) as usize;
    let leaf_size = read_u32(payload, 24) as usize;
    let search_k = read_u32(payload, 28) as usize;
    let points = usize::try_from(read_u64(payload, 32)).map_err(|_| SpaceError::TooLarge {
        what: "points".to_string(),
    })?;
    let seed = read_u64(payload, 40);
    let rebuild_threshold =
        usize::try_from(read_u64(payload, 48)).map_err(|_| SpaceError::TooLarge {
            what: "rebuild_threshold".to_string(),
        })?;
    let points_off = read_u64(payload, 56) as usize;
    let types_off = read_u64(payload, 64) as usize;
    let file_id = read_u64(payload, 80);

    let table_end = SPACE_HEADER_LEN + shard_count * SHARD_ENTRY_LEN;
    let points_len = points
        .checked_mul(dim)
        .and_then(|n| n.checked_mul(4))
        .ok_or_else(|| SpaceError::BadLayout {
            what: "points·dim·4 overflows".to_string(),
        })?;
    let points_end = points_off + points_len;
    if points_off != table_end || !points_off.is_multiple_of(8) || points_end > payload.len() {
        return Err(SpaceError::BadLayout {
            what: format!("point block [{points_off}, {points_end})"),
        });
    }
    if types_off < points_end || types_off > payload.len() || !types_off.is_multiple_of(4) {
        return Err(SpaceError::BadLayout {
            what: format!("type table at {types_off}"),
        });
    }
    let mut shards = Vec::with_capacity(shard_count);
    for s in 0..shard_count {
        let entry = SPACE_HEADER_LEN + s * SHARD_ENTRY_LEN;
        let off = read_u64(payload, entry) as usize;
        let len = read_u64(payload, entry + 8) as usize;
        let crc = read_u64(payload, entry + 16);
        let end = off.checked_add(len).ok_or_else(|| SpaceError::BadLayout {
            what: format!("shard {s} extent overflows"),
        })?;
        if off < points_end || end > types_off || !off.is_multiple_of(4) || !len.is_multiple_of(4) {
            return Err(SpaceError::BadLayout {
                what: format!("shard {s} block [{off}, {end})"),
            });
        }
        shards.push(ShardRange { off, len, crc });
    }
    Ok(Meta {
        dim,
        points,
        config: SpaceConfig {
            shards: shard_count.max(1),
            forest: RpForestConfig {
                trees,
                leaf_size,
                search_k,
            },
            rebuild_threshold,
        },
        seed,
        file_id,
        payload_len: payload_len as usize,
        points_off,
        types_off,
        shards,
    })
}

/// Zero-copy view of an on-disk TypeSpace index.
///
/// Backed by any 8-aligned byte provider — an `AlignedBytes` copy, or
/// a memory map owned by the caller — and shared cheaply via `Arc`, so
/// a cloned `TypeMap` clones the view, not the index. Queries walk the
/// tree blocks and the point block in place: opening the view costs
/// O(header), not O(index).
#[derive(Clone)]
pub struct SpaceIndex {
    bytes: Arc<dyn AsRef<[u8]> + Send + Sync>,
    meta: Meta,
}

impl std::fmt::Debug for SpaceIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpaceIndex")
            .field("dim", &self.meta.dim)
            .field("points", &self.meta.points)
            .field("shards", &self.meta.shards.len())
            .field("file_id", &format_args!("{:016x}", self.meta.file_id))
            .field("payload_len", &self.meta.payload_len)
            .finish()
    }
}

impl SpaceIndex {
    /// Builds a fresh index over `points` (one type name per point) and
    /// opens it. See [`build_payload`] for determinism guarantees.
    pub fn build(
        points: &PointStore,
        type_names: &[String],
        config: &SpaceConfig,
        seed: u64,
        pool: Option<&WorkerPool>,
    ) -> Result<SpaceIndex, SpaceError> {
        SpaceIndex::from_payload_vec(build_payload(points, type_names, config, seed, pool)?)
    }

    /// Opens a view over a payload copied into aligned owned storage.
    pub fn from_payload(payload: &[u8]) -> Result<SpaceIndex, SpaceError> {
        let len = payload.len();
        SpaceIndex::from_provider(Arc::new(AlignedBytes::from_slice(payload)), len)
    }

    /// Opens a view over an owned payload (one aligned copy).
    pub fn from_payload_vec(payload: Vec<u8>) -> Result<SpaceIndex, SpaceError> {
        SpaceIndex::from_payload(&payload)
    }

    /// Opens a view over the first `payload_len` bytes of `bytes` —
    /// typically a memory map whose tail is the `atomic_io` footer.
    /// O(header): validates magic, version, header checksum, and
    /// section bounds, touching nothing else.
    ///
    /// # Errors
    ///
    /// [`SpaceError::Misaligned`] when the provider's bytes are not
    /// 8-aligned, [`SpaceError::Truncated`]/[`SpaceError::BadMagic`]/
    /// [`SpaceError::VersionMismatch`]/[`SpaceError::HeaderCorrupt`]/
    /// [`SpaceError::BadLayout`] on a malformed header.
    pub fn from_provider(
        bytes: Arc<dyn AsRef<[u8]> + Send + Sync>,
        payload_len: usize,
    ) -> Result<SpaceIndex, SpaceError> {
        let slice: &[u8] = (*bytes).as_ref();
        if slice.len() < payload_len {
            return Err(SpaceError::Truncated {
                expected: payload_len as u64,
                found: slice.len() as u64,
            });
        }
        if !(slice.as_ptr() as usize).is_multiple_of(8) {
            return Err(SpaceError::Misaligned);
        }
        let meta = parse_meta(&slice[..payload_len])?;
        Ok(SpaceIndex { bytes, meta })
    }

    /// The raw payload bytes (header included) — what gets written to
    /// the sidecar file.
    pub fn payload(&self) -> &[u8] {
        &(*self.bytes).as_ref()[..self.meta.payload_len]
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.meta.points
    }

    /// Whether the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.meta.points == 0
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.meta.dim
    }

    /// The build seed recorded in the header.
    pub fn seed(&self) -> u64 {
        self.meta.seed
    }

    /// The index's identity: CRC-64 of everything after the header.
    /// The model artifact stores this to pair with its sidecar.
    pub fn file_id(&self) -> u64 {
        self.meta.file_id
    }

    /// The build configuration recorded in the header.
    pub fn config(&self) -> SpaceConfig {
        self.meta.config
    }

    /// Overlay markers tolerated before [`crate::TypeMap`] rebuilds.
    pub fn rebuild_threshold(&self) -> usize {
        self.meta.config.rebuild_threshold
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.meta.shards.len()
    }

    /// Full integrity sweep: recomputes the whole-payload checksum
    /// (`file_id`) and each shard block's CRC. O(payload) but
    /// allocation- and deserialization-free. A view that passes
    /// `verify` cannot make a query read out of bounds.
    pub fn verify(&self) -> Result<(), SpaceError> {
        let payload = self.payload();
        // Per-shard CRCs first: a flip inside a tree block is reported
        // as that shard, not as the whole payload.
        for (s, range) in self.meta.shards.iter().enumerate() {
            let actual = crc64(&payload[range.off..range.off + range.len]);
            if actual != range.crc {
                return Err(SpaceError::SectionCorrupt {
                    section: format!("shard {s}"),
                    expected: range.crc,
                    found: actual,
                });
            }
        }
        // The whole-payload checksum (`file_id`) catches everything
        // else: the point block, the type table, and the shard table
        // entries themselves.
        let body = crc64(&payload[SPACE_HEADER_LEN..]);
        if body != self.meta.file_id {
            return Err(SpaceError::SectionCorrupt {
                section: "payload".to_string(),
                expected: self.meta.file_id,
                found: body,
            });
        }
        Ok(())
    }

    fn point_data(&self) -> &[f32] {
        let m = &self.meta;
        cast_f32s(&self.payload()[m.points_off..m.points_off + m.points * m.dim * 4])
    }

    fn shard_words(&self, s: usize) -> &[u32] {
        let range = self.meta.shards[s];
        cast_u32s(&self.payload()[range.off..range.off + range.len])
    }

    /// The approximate `k` nearest points in ascending distance —
    /// exactly the hits [`crate::shard::reference_forest`] returns for
    /// the same `(points, config, seed)`.
    pub fn query(&self, query: &[f32], k: usize) -> Vec<Hit> {
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        self.query_into(query, k, &mut scratch, &mut out);
        out
    }

    /// Allocation-free [`SpaceIndex::query`] straight off the mapped
    /// bytes: priority search over every shard's trees (frontier
    /// ordered by `(margin, insertion seq)`, matching the in-memory
    /// forest), then exact L1 ranking of the candidates.
    ///
    /// On an unverified view, corrupt tree bytes can make this panic
    /// on an out-of-bounds word index (memory-safe); run
    /// [`SpaceIndex::verify`] first to rule that out.
    pub fn query_into(
        &self,
        query: &[f32],
        k: usize,
        scratch: &mut QueryScratch,
        out: &mut Vec<Hit>,
    ) {
        out.clear();
        let m = &self.meta;
        if m.points == 0 {
            return;
        }
        debug_assert_eq!(query.len(), m.dim);
        scratch.begin(m.points);
        for s in 0..m.shards.len() {
            let words = self.shard_words(s);
            let roots = words[0] as usize;
            for &root in &words[1..1 + roots] {
                scratch.frontier_push(0.0, pack(s as u32, root));
            }
        }
        let search_k = m.config.forest.search_k;
        while let Some(payload) = scratch.frontier_pop() {
            let (s, off) = unpack(payload);
            let words = self.shard_words(s as usize);
            let off = off as usize;
            let tag = words[off];
            if tag & 1 == 0 {
                let count = (tag >> 1) as usize;
                for &p in &words[off + 1..off + 1 + count] {
                    if scratch.mark_new(p as usize) {
                        scratch.candidates.push(p);
                    }
                }
                if scratch.candidates.len() >= search_k {
                    break;
                }
            } else {
                let left = words[off + 1];
                let right = words[off + 2];
                let threshold = f32::from_bits(words[off + 3]);
                let direction = words_as_f32s(&words[off + 4..off + 4 + m.dim]);
                let margin = dot(query, direction) - threshold;
                let (near, far) = if margin < 0.0 {
                    (left, right)
                } else {
                    (right, left)
                };
                scratch.frontier_push(0.0, pack(s, near));
                scratch.frontier_push(margin.abs(), pack(s, far));
            }
        }
        let rows = SliceRows {
            data: self.point_data(),
            dim: m.dim,
        };
        let QueryScratch {
            heap, candidates, ..
        } = scratch;
        top_k_into(
            &rows,
            candidates.iter().map(|&c| c as usize),
            query,
            k,
            heap,
            out,
        );
    }

    /// Decodes the type table: the distinct type names and one id per
    /// marker. Allocates — meant for tooling (`typilus index --info`)
    /// and tests, not the query path.
    pub fn type_table(&self) -> Result<(Vec<String>, Vec<u32>), SpaceError> {
        let payload = self.payload();
        let m = &self.meta;
        let bad = |what: &str| SpaceError::BadLayout {
            what: format!("type table: {what}"),
        };
        let mut off = m.types_off;
        let take_u32 = |off: &mut usize| -> Result<u32, SpaceError> {
            if *off + 4 > payload.len() {
                return Err(bad("truncated"));
            }
            let v = read_u32(payload, *off);
            *off += 4;
            Ok(v)
        };
        let count = take_u32(&mut off)? as usize;
        let mut names = Vec::with_capacity(count);
        for _ in 0..count {
            let len = take_u32(&mut off)? as usize;
            if off + len > payload.len() {
                return Err(bad("truncated name"));
            }
            let name = std::str::from_utf8(&payload[off..off + len])
                .map_err(|_| bad("name is not UTF-8"))?;
            names.push(name.to_string());
            off += len;
            off += (4 - off % 4) % 4;
        }
        let mut ids = Vec::with_capacity(m.points);
        for _ in 0..m.points {
            let id = take_u32(&mut off)?;
            if id as usize >= count {
                return Err(bad("type id out of range"));
            }
            ids.push(id);
        }
        if off != payload.len() {
            return Err(bad("trailing bytes"));
        }
        Ok((names, ids))
    }
}

#[inline]
fn pack(shard: u32, word_off: u32) -> u64 {
    (u64::from(shard) << 32) | u64::from(word_off)
}

#[inline]
fn unpack(payload: u64) -> (u32, u32) {
    ((payload >> 32) as u32, payload as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture_points(n: usize, dim: usize, seed: u64) -> (PointStore, Vec<String>) {
        let mut state = seed | 1;
        let mut points = PointStore::new(dim);
        let mut names = Vec::new();
        for i in 0..n {
            let row: Vec<f32> = (0..dim)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (state >> 40) as f32 / (1 << 24) as f32 - 0.5
                })
                .collect();
            points.push(&row);
            names.push(format!("T{}", i % 7));
        }
        (points, names)
    }

    #[test]
    fn crc64_matches_atomic_io_known_vector() {
        // CRC-64/XZ of "123456789" — the same vector atomic_io pins.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn build_open_verify_round_trip() {
        let (points, names) = fixture_points(300, 6, 3);
        let config = SpaceConfig {
            shards: 4,
            forest: RpForestConfig {
                trees: 6,
                leaf_size: 8,
                search_k: 64,
            },
            rebuild_threshold: 128,
        };
        let index = SpaceIndex::build(&points, &names, &config, 17, None).unwrap();
        index.verify().unwrap();
        assert_eq!(index.len(), 300);
        assert_eq!(index.dim(), 6);
        assert_eq!(index.shard_count(), 4);
        assert_eq!(index.seed(), 17);
        assert_eq!(index.config(), config);
        let (table, ids) = index.type_table().unwrap();
        assert_eq!(table.len(), 7);
        assert_eq!(ids.len(), 300);
        assert_eq!(table[ids[0] as usize], "T0");
        // Reopening the exact payload gives the same identity.
        let reopened = SpaceIndex::from_payload(index.payload()).unwrap();
        assert_eq!(reopened.file_id(), index.file_id());
    }

    #[test]
    fn disk_query_equals_reference_forest() {
        let (points, names) = fixture_points(400, 5, 9);
        let config = SpaceConfig {
            shards: 3,
            forest: RpForestConfig {
                trees: 7,
                leaf_size: 8,
                search_k: 96,
            },
            rebuild_threshold: 64,
        };
        let index = SpaceIndex::build(&points, &names, &config, 23, None).unwrap();
        let reference = crate::shard::reference_forest(points, &config, 23);
        let mut state = 77u64;
        for _ in 0..25 {
            let q: Vec<f32> = (0..5)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (state >> 40) as f32 / (1 << 24) as f32 - 0.5
                })
                .collect();
            assert_eq!(index.query(&q, 10), reference.query(&q, 10));
        }
    }

    #[test]
    fn empty_index_round_trips() {
        let points = PointStore::new(4);
        let index = SpaceIndex::build(&points, &[], &SpaceConfig::default(), 1, None).unwrap();
        index.verify().unwrap();
        assert!(index.is_empty());
        assert!(index.query(&[0.0; 4], 5).is_empty());
    }

    #[test]
    fn unaligned_provider_is_rejected() {
        let (points, names) = fixture_points(32, 3, 5);
        let payload = build_payload(&points, &names, &SpaceConfig::default(), 2, None).unwrap();
        // A Vec<u8> offset by one byte cannot be 8-aligned.
        let mut shifted = vec![0u8; payload.len() + 1];
        shifted[1..].copy_from_slice(&payload);
        struct Offset(Vec<u8>);
        impl AsRef<[u8]> for Offset {
            fn as_ref(&self) -> &[u8] {
                &self.0[1..]
            }
        }
        let result = SpaceIndex::from_provider(Arc::new(Offset(shifted)), payload.len());
        // Depending on the allocator the base may happen to make +1
        // aligned — accept either Misaligned or success, never a
        // different error.
        if let Err(e) = result {
            assert_eq!(e, SpaceError::Misaligned);
        }
    }
}
