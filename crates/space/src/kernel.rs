//! The L1 distance kernels of the TypeSpace, runtime SIMD-dispatched.
//!
//! The accumulation order is the determinism contract here: both kernels
//! sum `|a[i] - b[i]|` in strictly ascending index order starting from
//! `0.0`, so every per-element rounding sequence is fixed. The dispatched
//! fast path groups the absolute differences into [`PRUNE_CHUNK`]-wide
//! blocks — the differences are independent and vectorize freely — but
//! feeds them into the *same serial* sum chain, so results stay
//! bit-identical to the scalar references at every width. Where the
//! [`typilus_nn::simd`] dispatcher selects the widened tile, the same
//! generic body is re-instantiated inside a
//! `#[target_feature(enable = "avx2")]` function (plain `vsubps`/
//! `vandps`/`vaddps`; no FMA, which would change rounding).
//!
//! [`l1_reference`] and [`l1_pruned_reference`] keep the original scalar
//! loops; the `kernel_bitident`-style proptests in
//! `crates/space/tests/proptests.rs` prove bit-identity at every
//! selectable width.

use typilus_nn::{simd_width, SimdWidth};

/// Coordinates summed between bound checks of [`l1_pruned`]. Also the
/// vector block width of the fast path: keeping the early-exit cadence
/// equal to the block width means the dispatched kernel tests the bound
/// at exactly the same partial sums as the scalar reference.
pub(crate) const PRUNE_CHUNK: usize = 8;

/// Scalar reference for [`l1`]: the original iterator-sum loop.
pub fn l1_reference(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Scalar reference for [`l1_pruned`]: the original chunked loop.
pub fn l1_pruned_reference(a: &[f32], b: &[f32], bound: f32) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut sum = 0.0f32;
    let mut i = 0;
    let n = a.len();
    while i < n {
        let end = (i + PRUNE_CHUNK).min(n);
        while i < end {
            sum += (a[i] - b[i]).abs();
            i += 1;
        }
        if sum > bound {
            return sum;
        }
    }
    sum
}

/// The shared accumulation body of [`l1`]: blockwise absolute
/// differences (vectorizable), serial ascending-index sum (bit-fixed).
#[inline(always)]
fn l1_body(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    // -0.0, not 0.0: `iter::Sum for f32` folds from -0.0, and the
    // bit-identity contract with [`l1_reference`] includes the empty
    // input (-0.0 + x == x for every abs result, so only n = 0 differs).
    let mut sum = -0.0f32;
    let mut i = 0;
    while i + PRUNE_CHUNK <= n {
        let mut d = [0.0f32; PRUNE_CHUNK];
        for j in 0..PRUNE_CHUNK {
            d[j] = (a[i + j] - b[i + j]).abs();
        }
        for &x in &d {
            sum += x;
        }
        i += PRUNE_CHUNK;
    }
    while i < n {
        sum += (a[i] - b[i]).abs();
        i += 1;
    }
    sum
}

/// The shared accumulation body of [`l1_pruned`]. Exit points and
/// partial sums match [`l1_pruned_reference`] exactly: the bound is
/// tested after every full [`PRUNE_CHUNK`] block and once after the
/// tail, which is where the reference's chunked loop tests it too.
#[inline(always)]
fn l1_pruned_body(a: &[f32], b: &[f32], bound: f32) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let mut sum = 0.0f32;
    let mut i = 0;
    while i + PRUNE_CHUNK <= n {
        let mut d = [0.0f32; PRUNE_CHUNK];
        for j in 0..PRUNE_CHUNK {
            d[j] = (a[i + j] - b[i + j]).abs();
        }
        for &x in &d {
            sum += x;
        }
        i += PRUNE_CHUNK;
        if sum > bound {
            return sum;
        }
    }
    while i < n {
        sum += (a[i] - b[i]).abs();
        i += 1;
    }
    sum
}

/// AVX2 instantiation of [`l1_body`].
///
/// # Safety
///
/// The caller must ensure the CPU supports AVX2 (checked at dispatch
/// via `is_x86_feature_detected!`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn l1_avx2(a: &[f32], b: &[f32]) -> f32 {
    l1_body(a, b)
}

/// AVX2 instantiation of [`l1_pruned_body`].
///
/// # Safety
///
/// The caller must ensure the CPU supports AVX2 (checked at dispatch
/// via `is_x86_feature_detected!`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn l1_pruned_avx2(a: &[f32], b: &[f32], bound: f32) -> f32 {
    l1_pruned_body(a, b, bound)
}

/// L1 (Manhattan) distance — the metric of the paper's type space.
///
/// Bit-identical to [`l1_reference`] at every dispatched SIMD width.
#[inline]
pub fn l1(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if simd_width() == SimdWidth::Avx2 {
        // SAFETY: the dispatcher only selects Avx2 when the CPU
        // reports it (set_simd_width asserts availability).
        return unsafe { l1_avx2(a, b) };
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = simd_width();
    l1_body(a, b)
}

/// L1 distance with early exit: accumulates `|a - b|` in the same
/// left-to-right order as [`l1`], and after every [`PRUNE_CHUNK`]-wide
/// block stops as soon as the partial sum strictly exceeds `bound`.
///
/// When the result is `<= bound` it is bit-identical to `l1(a, b)`;
/// otherwise it is some partial sum `> bound`, which suffices to reject
/// the point in a top-k scan. The exit test is strict so that distances
/// exactly equal to the bound are still computed exactly (ties are
/// broken by index downstream). Bit-identical to
/// [`l1_pruned_reference`] — including every early-exit partial sum —
/// at every dispatched SIMD width.
#[inline]
pub fn l1_pruned(a: &[f32], b: &[f32], bound: f32) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if simd_width() == SimdWidth::Avx2 {
        // SAFETY: the dispatcher only selects Avx2 when the CPU
        // reports it (set_simd_width asserts availability).
        return unsafe { l1_pruned_avx2(a, b, bound) };
    }
    l1_pruned_body(a, b, bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(n: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1 << 24) as f32 - 0.5
        };
        let a = (0..n).map(|_| next()).collect();
        let b = (0..n).map(|_| next()).collect();
        (a, b)
    }

    #[test]
    fn l1_matches_reference_bitwise() {
        for n in [0, 1, 7, 8, 9, 16, 33, 257] {
            let (a, b) = fixture(n, n as u64 + 3);
            assert_eq!(l1(&a, &b).to_bits(), l1_reference(&a, &b).to_bits());
        }
    }

    #[test]
    fn l1_pruned_matches_reference_bitwise_at_any_bound() {
        for n in [1, 8, 9, 31, 64] {
            let (a, b) = fixture(n, n as u64 + 11);
            let exact = l1_reference(&a, &b);
            for bound in [f32::INFINITY, exact, exact * 0.5, exact * 0.1, 0.0] {
                assert_eq!(
                    l1_pruned(&a, &b, bound).to_bits(),
                    l1_pruned_reference(&a, &b, bound).to_bits(),
                    "n={n} bound={bound}"
                );
            }
        }
    }
}
