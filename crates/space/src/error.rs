//! Typed errors of the TypeSpace index machinery.

use std::fmt;

/// Everything that can go wrong building, validating, or attaching the
/// sharded TypeSpace index. Mirrors the typed-corruption philosophy of
/// `typilus_core::PersistError`: a caller can always tell *which*
/// integrity guarantee failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpaceError {
    /// A point's width differs from the store's dimension.
    DimensionMismatch {
        /// Width the store was created with.
        expected: usize,
        /// Width of the offending row.
        found: usize,
    },
    /// The payload does not start with the `TYPSPIDX` magic.
    BadMagic,
    /// The payload was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the header.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// The fixed-size header fails its own CRC-64.
    HeaderCorrupt {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum recomputed from the header bytes.
        found: u64,
    },
    /// The payload is shorter (or longer) than the header records.
    Truncated {
        /// Byte length the header (or format minimum) requires.
        expected: u64,
        /// Byte length actually present.
        found: u64,
    },
    /// A checksummed section's bytes do not match their recorded CRC-64.
    SectionCorrupt {
        /// Which section failed (`"payload"`, `"shard 3"`, ...).
        section: String,
        /// Checksum recorded at build time.
        expected: u64,
        /// Checksum recomputed from the section bytes.
        found: u64,
    },
    /// A section offset or length is inconsistent with the payload.
    BadLayout {
        /// Human-readable description of the inconsistent field.
        what: String,
    },
    /// The buffer backing a zero-copy view is not 8-byte aligned.
    Misaligned,
    /// A count exceeds the 32-bit on-disk id space.
    TooLarge {
        /// Which count overflowed.
        what: String,
    },
    /// An index sidecar's identity does not match what the map expects.
    IndexMismatch {
        /// `file_id` the map's `Detached` marker records.
        expected: u64,
        /// `file_id` of the index actually offered.
        found: u64,
    },
    /// The index covers a different marker set than the map holds.
    MarkerMismatch {
        /// Points the index was built over.
        index_points: usize,
        /// Markers the map (or type table) holds.
        map_markers: usize,
    },
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::DimensionMismatch { expected, found } => {
                write!(f, "point width mismatch: store is {expected}-wide, row is {found}-wide")
            }
            SpaceError::BadMagic => write!(f, "not a TypeSpace index (bad magic)"),
            SpaceError::VersionMismatch { found, expected } => write!(
                f,
                "TypeSpace index format version {found} unsupported (this build reads {expected})"
            ),
            SpaceError::HeaderCorrupt { expected, found } => write!(
                f,
                "TypeSpace index header corrupt: crc {found:016x}, header records {expected:016x}"
            ),
            SpaceError::Truncated { expected, found } => write!(
                f,
                "TypeSpace index truncated: {found} bytes present, {expected} required"
            ),
            SpaceError::SectionCorrupt {
                section,
                expected,
                found,
            } => write!(
                f,
                "TypeSpace index section `{section}` corrupt: crc {found:016x}, recorded {expected:016x}"
            ),
            SpaceError::BadLayout { what } => {
                write!(f, "TypeSpace index layout inconsistent: {what}")
            }
            SpaceError::Misaligned => {
                write!(f, "TypeSpace index buffer is not 8-byte aligned")
            }
            SpaceError::TooLarge { what } => {
                write!(f, "TypeSpace index too large: {what} exceeds the 32-bit id space")
            }
            SpaceError::IndexMismatch { expected, found } => write!(
                f,
                "TypeSpace index identity mismatch: map expects file id {expected:016x}, index has {found:016x}"
            ),
            SpaceError::MarkerMismatch {
                index_points,
                map_markers,
            } => write!(
                f,
                "TypeSpace index covers {index_points} markers but the map holds {map_markers}"
            ),
        }
    }
}

impl std::error::Error for SpaceError {}
