//! The adaptive type map `τmap` and kNN type prediction (paper Sec. 4.2).
//!
//! A [`TypeMap`] stores `(type embedding → type)` markers. Prediction for
//! a query embedding finds the `k` nearest markers under L1 and scores
//! candidate types by Eq. 5:
//!
//! `P(s : τ') = 1/Z · Σᵢ I(τᵢ = τ') · dᵢ^{-p}`
//!
//! The map is *adaptive*: binding a marker for a previously unseen type
//! makes it predictable immediately, with no retraining — the paper's
//! one-shot open-vocabulary mechanism.

use crate::index::{self, Hit, PointStore, RpForest, RpForestConfig};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use typilus_types::PyType;

/// A scored candidate type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TypePrediction {
    /// The candidate type.
    pub ty: PyType,
    /// Normalised probability from Eq. 5.
    pub probability: f32,
}

/// kNN hyperparameters of Eq. 5 (swept in paper Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KnnConfig {
    /// Number of neighbours `k`.
    pub k: usize,
    /// Distance exponent `p` (`p→0`: uniform vote; `p→∞`: 1-NN).
    pub p: f32,
}

impl Default for KnnConfig {
    fn default() -> Self {
        // The sweet spot of the paper's Fig. 6: large k, moderately
        // large p.
        KnnConfig { k: 10, p: 2.0 }
    }
}

impl KnnConfig {
    /// Checks the parameters: `k` must be positive (zero neighbours
    /// would silently predict nothing) and `p` non-negative and finite
    /// (a negative exponent makes Eq. 5 weights *grow* with distance,
    /// inverting the vote).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.k == 0 {
            return Err("knn k must be at least 1 (k = 0 predicts nothing)".to_string());
        }
        if !self.p.is_finite() || self.p < 0.0 {
            return Err(format!(
                "knn exponent p must be finite and non-negative, got {} \
                 (negative p weights far neighbours above near ones)",
                self.p
            ));
        }
        Ok(())
    }

    /// The parameters [`TypeMap::predict`] actually uses: `k` clamped up
    /// to 1, `p` clamped into `[0, ∞)` — so a malformed config degrades
    /// to 1-NN / a uniform vote instead of predicting nothing or
    /// inverting the vote.
    fn effective(self) -> KnnConfig {
        KnnConfig {
            k: self.k.max(1),
            p: if self.p.is_finite() && self.p >= 0.0 {
                self.p
            } else {
                0.0
            },
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Index {
    /// Brute force (always exact, default until `build_index`).
    Exact,
    /// Annoy-style approximate forest.
    Forest(Box<RpForest>),
}

/// The type map: embeddings of symbols with known types, queryable by
/// nearest neighbour.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TypeMap {
    dim: usize,
    embeddings: PointStore,
    types: Vec<PyType>,
    index: Index,
}

impl TypeMap {
    /// Creates an empty map for `dim`-dimensional embeddings.
    pub fn new(dim: usize) -> TypeMap {
        TypeMap {
            dim,
            embeddings: PointStore::new(dim),
            types: Vec::new(),
            index: Index::Exact,
        }
    }

    /// Adds a marker binding `embedding ↦ ty`.
    ///
    /// Invalidates any approximate index built earlier (queries fall back
    /// to exact search until [`TypeMap::build_index`] is called again) —
    /// this is what makes the map adaptive.
    ///
    /// # Panics
    ///
    /// Panics if the embedding width differs from the map's dimension.
    pub fn add(&mut self, embedding: Vec<f32>, ty: PyType) {
        assert_eq!(embedding.len(), self.dim, "embedding width mismatch");
        self.embeddings.push(&embedding);
        self.types.push(ty);
        self.index = Index::Exact;
    }

    /// Number of markers.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the map has no markers.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Iterates over `(embedding, type)` markers.
    pub fn iter(&self) -> impl Iterator<Item = (&[f32], &PyType)> {
        self.embeddings.rows().zip(self.types.iter())
    }

    /// Distinct types currently in the map.
    pub fn distinct_types(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for t in &self.types {
            seen.insert(t.to_string());
        }
        seen.len()
    }

    /// Builds the approximate spatial index (Annoy-like RP forest).
    pub fn build_index(&mut self, config: RpForestConfig, seed: u64) {
        self.index = Index::Forest(Box::new(RpForest::from_store(
            self.embeddings.clone(),
            config,
            seed,
        )));
    }

    fn nearest(&self, query: &[f32], k: usize) -> Vec<Hit> {
        match &self.index {
            // Brute force straight over the marker store — no per-query
            // copy of the embeddings.
            Index::Exact => index::top_k(&self.embeddings, 0..self.embeddings.len(), query, k),
            Index::Forest(f) => f.query(query, k),
        }
    }

    /// Predicts a distribution over candidate types for `query` (Eq. 5),
    /// sorted by descending probability.
    ///
    /// # Panics
    ///
    /// Panics if the query width differs from the map's dimension.
    pub fn predict(&self, query: &[f32], config: KnnConfig) -> Vec<TypePrediction> {
        assert_eq!(query.len(), self.dim, "query width mismatch");
        if self.is_empty() {
            return Vec::new();
        }
        let config = config.effective();
        let hits = self.nearest(query, config.k);
        // Keyed in type-name order so accumulation and the collect
        // below are deterministic (lint rule D1).
        let mut scores: BTreeMap<String, (PyType, f64)> = BTreeMap::new();
        let mut z = 0.0f64;
        for h in hits {
            // d^{-p} with a floor so exact matches dominate but stay finite.
            let d = f64::from(h.distance).max(1e-6);
            let w = d.powf(f64::from(-config.p));
            z += w;
            let ty = &self.types[h.index];
            let e = scores.entry(ty.to_string()).or_insert((ty.clone(), 0.0));
            e.1 += w;
        }
        let mut out: Vec<TypePrediction> = scores
            .into_values()
            .map(|(ty, s)| TypePrediction {
                ty,
                probability: (s / z) as f32,
            })
            .collect();
        out.sort_by(|a, b| {
            b.probability
                .total_cmp(&a.probability)
                .then_with(|| a.ty.to_string().cmp(&b.ty.to_string()))
        });
        out
    }

    /// The single best prediction, if any.
    pub fn predict_top(&self, query: &[f32], config: KnnConfig) -> Option<TypePrediction> {
        self.predict(query, config).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> PyType {
        s.parse().unwrap()
    }

    fn small_map() -> TypeMap {
        let mut m = TypeMap::new(2);
        m.add(vec![0.0, 0.0], t("int"));
        m.add(vec![0.1, 0.1], t("int"));
        m.add(vec![1.0, 1.0], t("str"));
        m.add(vec![1.1, 0.9], t("str"));
        m
    }

    #[test]
    fn nearest_type_wins() {
        let m = small_map();
        let cfg = KnnConfig { k: 4, p: 2.0 };
        let top = m.predict_top(&[0.05, 0.0], cfg).unwrap();
        assert_eq!(top.ty, t("int"));
        let top = m.predict_top(&[1.0, 0.95], cfg).unwrap();
        assert_eq!(top.ty, t("str"));
    }

    #[test]
    fn probabilities_normalise() {
        let m = small_map();
        let preds = m.predict(&[0.5, 0.5], KnnConfig { k: 4, p: 1.0 });
        let total: f32 = preds.iter().map(|p| p.probability).sum();
        assert!((total - 1.0).abs() < 1e-5);
        assert_eq!(preds.len(), 2);
    }

    #[test]
    fn high_p_approaches_one_nearest_neighbour() {
        let mut m = TypeMap::new(1);
        m.add(vec![0.0], t("int"));
        m.add(vec![0.2], t("str"));
        m.add(vec![0.25], t("str"));
        // Query nearest to int but str has more (slightly farther) votes.
        let uniform = m.predict_top(&[0.1], KnnConfig { k: 3, p: 0.01 }).unwrap();
        assert_eq!(uniform.ty, t("str"), "p→0 is a majority vote");
        let sharp = m.predict_top(&[0.09], KnnConfig { k: 3, p: 20.0 }).unwrap();
        assert_eq!(sharp.ty, t("int"), "p→∞ is 1-NN");
    }

    #[test]
    fn one_shot_open_vocabulary_adaptation() {
        let mut m = small_map();
        let cfg = KnnConfig::default();
        let novel = t("bungee.Cord");
        // Before binding, the novel type cannot be predicted.
        assert!(m.predict(&[5.0, 5.0], cfg).iter().all(|p| p.ty != novel));
        // One marker suffices: no retraining.
        m.add(vec![5.0, 5.0], novel.clone());
        let top = m.predict_top(&[5.1, 4.9], cfg).unwrap();
        assert_eq!(top.ty, novel);
    }

    #[test]
    fn approximate_index_agrees_with_exact() {
        let mut m = TypeMap::new(4);
        let mut rng_state = 12345u64;
        let mut next = || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng_state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        for i in 0..300 {
            let ty = if i % 3 == 0 {
                t("int")
            } else if i % 3 == 1 {
                t("str")
            } else {
                t("List[int]")
            };
            m.add(vec![next(), next(), next(), next()], ty);
        }
        let query = vec![0.1, -0.2, 0.3, 0.0];
        let exact_top = m.predict_top(&query, KnnConfig::default()).unwrap();
        m.build_index(
            RpForestConfig {
                trees: 10,
                leaf_size: 8,
                search_k: 300,
            },
            1,
        );
        let approx_top = m.predict_top(&query, KnnConfig::default()).unwrap();
        assert_eq!(exact_top.ty, approx_top.ty);
    }

    #[test]
    fn adding_marker_invalidates_index() {
        let mut m = small_map();
        m.build_index(RpForestConfig::default(), 0);
        m.add(vec![9.0, 9.0], t("bytes"));
        // The new marker must be findable immediately.
        let top = m
            .predict_top(&[9.0, 9.0], KnnConfig { k: 1, p: 1.0 })
            .unwrap();
        assert_eq!(top.ty, t("bytes"));
    }

    #[test]
    fn zero_distance_dominates() {
        let m = small_map();
        let top = m
            .predict_top(&[1.0, 1.0], KnnConfig { k: 4, p: 2.0 })
            .unwrap();
        assert_eq!(top.ty, t("str"));
        assert!(top.probability > 0.9);
    }

    #[test]
    fn empty_map_predicts_nothing() {
        let m = TypeMap::new(3);
        assert!(m.predict(&[0.0, 0.0, 0.0], KnnConfig::default()).is_empty());
    }

    #[test]
    fn zero_k_is_rejected_and_clamped_to_one_neighbour() {
        assert!(KnnConfig { k: 0, p: 2.0 }.validate().is_err());
        // Prediction clamps k to 1 instead of silently returning nothing.
        let m = small_map();
        let preds = m.predict(&[0.05, 0.0], KnnConfig { k: 0, p: 2.0 });
        assert!(
            !preds.is_empty(),
            "k = 0 must degrade to 1-NN, not predict nothing"
        );
        assert_eq!(preds[0].ty, t("int"));
        let one_nn = m.predict(&[0.05, 0.0], KnnConfig { k: 1, p: 2.0 });
        assert_eq!(preds, one_nn);
    }

    #[test]
    fn negative_p_is_rejected_and_clamped_to_uniform_vote() {
        assert!(KnnConfig { k: 4, p: -2.0 }.validate().is_err());
        assert!(KnnConfig { k: 4, p: f32::NAN }.validate().is_err());
        assert!(KnnConfig { k: 4, p: 2.0 }.validate().is_ok());
        // A negative exponent would weight *far* neighbours above near
        // ones; prediction clamps it to 0 (uniform vote) instead.
        let mut m = TypeMap::new(1);
        m.add(vec![0.0], t("int"));
        m.add(vec![5.0], t("str"));
        m.add(vec![6.0], t("str"));
        let preds = m.predict(&[0.1], KnnConfig { k: 3, p: -8.0 });
        let uniform = m.predict(&[0.1], KnnConfig { k: 3, p: 0.0 });
        assert_eq!(preds, uniform, "negative p must clamp to a uniform vote");
        // With the inverted weights the two far `str` markers would win
        // overwhelmingly; under the clamp they win only 2-votes-to-1.
        assert!(preds
            .iter()
            .any(|p| p.ty == t("int") && p.probability > 0.3));
    }

    #[test]
    fn distinct_type_count() {
        assert_eq!(small_map().distinct_types(), 2);
    }
}
