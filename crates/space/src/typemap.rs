//! The adaptive type map `τmap` and kNN type prediction (paper Sec. 4.2).
//!
//! A [`TypeMap`] stores `(type embedding → type)` markers. Prediction for
//! a query embedding finds the `k` nearest markers under L1 and scores
//! candidate types by Eq. 5:
//!
//! `P(s : τ') = 1/Z · Σᵢ I(τᵢ = τ') · dᵢ^{-p}`
//!
//! The map is *adaptive*: binding a marker for a previously unseen type
//! makes it predictable immediately, with no retraining — the paper's
//! one-shot open-vocabulary mechanism.
//!
//! Three index states back the nearest-neighbour search: brute-force
//! [`Index::Exact`], the in-memory [`RpForest`], and the sharded
//! zero-copy [`SpaceIndex`] view. The sharded state supports
//! *incremental* insertion: markers added after the build live in a
//! deterministic overlay that is scanned exactly and merged with the
//! view's hits, and once the overlay reaches the configured threshold
//! the index is rebuilt in place from the same config and seed.
//! When a map with a sharded index is serialized, only the index's
//! identity (`file_id`) travels inside the model artifact; the payload
//! itself is persisted as a sidecar file and re-attached on load
//! ([`Index::Detached`] in between).

use crate::disk::SpaceIndex;
use crate::error::SpaceError;
use crate::index::{self, Hit, PointStore, QueryScratch, RpForest, RpForestConfig};
use crate::shard::SpaceConfig;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use typilus_nn::WorkerPool;
use typilus_types::PyType;

/// A scored candidate type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TypePrediction {
    /// The candidate type.
    pub ty: PyType,
    /// Normalised probability from Eq. 5.
    pub probability: f32,
}

/// kNN hyperparameters of Eq. 5 (swept in paper Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KnnConfig {
    /// Number of neighbours `k`.
    pub k: usize,
    /// Distance exponent `p` (`p→0`: uniform vote; `p→∞`: 1-NN).
    pub p: f32,
}

impl Default for KnnConfig {
    fn default() -> Self {
        // The sweet spot of the paper's Fig. 6: large k, moderately
        // large p.
        KnnConfig { k: 10, p: 2.0 }
    }
}

impl KnnConfig {
    /// Checks the parameters: `k` must be positive (zero neighbours
    /// would silently predict nothing) and `p` non-negative and finite
    /// (a negative exponent makes Eq. 5 weights *grow* with distance,
    /// inverting the vote).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.k == 0 {
            return Err("knn k must be at least 1 (k = 0 predicts nothing)".to_string());
        }
        if !self.p.is_finite() || self.p < 0.0 {
            return Err(format!(
                "knn exponent p must be finite and non-negative, got {} \
                 (negative p weights far neighbours above near ones)",
                self.p
            ));
        }
        Ok(())
    }

    /// The parameters [`TypeMap::predict`] actually uses: `k` clamped up
    /// to 1, `p` clamped into `[0, ∞)` — so a malformed config degrades
    /// to 1-NN / a uniform vote instead of predicting nothing or
    /// inverting the vote.
    fn effective(self) -> KnnConfig {
        KnnConfig {
            k: self.k.max(1),
            p: if self.p.is_finite() && self.p >= 0.0 {
                self.p
            } else {
                0.0
            },
        }
    }
}

#[derive(Debug, Clone)]
enum Index {
    /// Brute force (always exact, default until an index is built).
    Exact,
    /// Annoy-style approximate forest, in memory.
    Forest(Box<RpForest>),
    /// Sharded zero-copy view of the on-disk index payload.
    Sharded(SpaceIndex),
    /// A sharded index existed when the map was serialized; only its
    /// identity travelled. Queries fall back to exact search until
    /// [`TypeMap::attach_space_index`] re-attaches the sidecar.
    Detached {
        /// `file_id` of the sidecar payload to attach.
        file_id: u64,
    },
}

/// The serde wire shape of [`Index`]. `Sharded` intentionally has no
/// wire form — the view's payload is persisted out-of-band as a
/// sidecar, and serializing the in-memory variant writes the same
/// `Detached` record (variant index 2) that deserialization reads
/// back.
#[derive(Deserialize)]
enum IndexWire {
    Exact,
    Forest(Box<RpForest>),
    Detached { file_id: u64 },
}

impl Serialize for Index {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStructVariant;
        match self {
            Index::Exact => serializer.serialize_unit_variant("Index", 0, "Exact"),
            Index::Forest(f) => serializer.serialize_newtype_variant("Index", 1, "Forest", f),
            Index::Sharded(ix) => {
                let mut sv = serializer.serialize_struct_variant("Index", 2, "Detached", 1)?;
                sv.serialize_field("file_id", &ix.file_id())?;
                sv.end()
            }
            Index::Detached { file_id } => {
                let mut sv = serializer.serialize_struct_variant("Index", 2, "Detached", 1)?;
                sv.serialize_field("file_id", file_id)?;
                sv.end()
            }
        }
    }
}

impl<'de> Deserialize<'de> for Index {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(match IndexWire::deserialize(deserializer)? {
            IndexWire::Exact => Index::Exact,
            IndexWire::Forest(f) => Index::Forest(f),
            IndexWire::Detached { file_id } => Index::Detached { file_id },
        })
    }
}

thread_local! {
    /// Per-thread query scratch for [`TypeMap::predict`] — keeps the
    /// serve path allocation-free at steady state without threading a
    /// scratch through every caller.
    static PREDICT_SCRATCH: RefCell<(QueryScratch, Vec<Hit>)> =
        RefCell::new((QueryScratch::new(), Vec::new()));
}

/// The type map: embeddings of symbols with known types, queryable by
/// nearest neighbour.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TypeMap {
    dim: usize,
    embeddings: PointStore,
    types: Vec<PyType>,
    index: Index,
}

impl TypeMap {
    /// Creates an empty map for `dim`-dimensional embeddings.
    pub fn new(dim: usize) -> TypeMap {
        TypeMap {
            dim,
            embeddings: PointStore::new(dim),
            types: Vec::new(),
            index: Index::Exact,
        }
    }

    /// Adds a marker binding `embedding ↦ ty`.
    ///
    /// The new marker is queryable immediately in every index state —
    /// this is what makes the map adaptive. An in-memory forest is
    /// invalidated (queries fall back to exact search until
    /// [`TypeMap::build_index`] runs again). A sharded index stays
    /// attached: the marker joins a deterministic overlay that is
    /// scanned exactly and merged into every query, and once the
    /// overlay reaches the index's `rebuild_threshold` (a threshold of
    /// 0 means every insertion) the index is rebuilt in place from its
    /// recorded config and seed. A *detached* map accepts markers too:
    /// they are served through the exact fallback immediately and
    /// count toward the overlay once the sidecar re-attaches
    /// ([`TypeMap::attach_space_index`] merges and rebuilds at the
    /// same threshold), so adds made before attachment are never lost
    /// to the rebuild accounting.
    ///
    /// # Errors
    ///
    /// [`SpaceError::DimensionMismatch`] when the embedding width
    /// differs from the map's dimension; the map is left unchanged, so
    /// a malformed `add-marker` request cannot corrupt (or crash) a
    /// long-lived server.
    pub fn add(&mut self, embedding: Vec<f32>, ty: PyType) -> Result<(), SpaceError> {
        self.embeddings.try_push(&embedding)?;
        self.types.push(ty);
        enum After {
            Nothing,
            DropForest,
            Rebuild { config: SpaceConfig, seed: u64 },
        }
        let action = match &self.index {
            Index::Exact | Index::Detached { .. } => After::Nothing,
            Index::Forest(_) => After::DropForest,
            Index::Sharded(ix) => {
                let overlay = self.embeddings.len() - ix.len();
                if overlay >= ix.rebuild_threshold().max(1) {
                    After::Rebuild {
                        config: ix.config(),
                        seed: ix.seed(),
                    }
                } else {
                    After::Nothing
                }
            }
        };
        match action {
            After::Nothing => {}
            After::DropForest => self.index = Index::Exact,
            After::Rebuild { config, seed } => {
                if let Err(e) = self.build_sharded_index(&config, seed, None) {
                    // Rebuild failure (e.g. the map outgrew the 32-bit
                    // id space) must not lose markers or correctness:
                    // degrade to exact search. Warn-once so a busy
                    // server hitting this on every add does not flood
                    // stderr.
                    typilus_nn::warn_once(
                        "space.rebuild",
                        &format!(
                            "sharded index rebuild failed ({e}); falling back to exact search"
                        ),
                    );
                    self.index = Index::Exact;
                }
            }
        }
        Ok(())
    }

    /// Number of markers.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Embedding width the map was created with.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The index state backing nearest-neighbour search, as a stable
    /// lowercase name: `"exact"`, `"forest"`, `"sharded"` or
    /// `"detached"`. Diagnostic surface for `stats`-style endpoints.
    pub fn index_kind(&self) -> &'static str {
        match &self.index {
            Index::Exact => "exact",
            Index::Forest(_) => "forest",
            Index::Sharded(_) => "sharded",
            Index::Detached { .. } => "detached",
        }
    }

    /// Whether the map has no markers.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Iterates over `(embedding, type)` markers.
    pub fn iter(&self) -> impl Iterator<Item = (&[f32], &PyType)> {
        self.embeddings.rows().zip(self.types.iter())
    }

    /// Distinct types currently in the map.
    pub fn distinct_types(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for t in &self.types {
            seen.insert(t.to_string());
        }
        seen.len()
    }

    /// Builds the in-memory approximate index (Annoy-like RP forest).
    pub fn build_index(&mut self, config: RpForestConfig, seed: u64) {
        self.index = Index::Forest(Box::new(RpForest::from_store(
            self.embeddings.clone(),
            config,
            seed,
        )));
    }

    /// Builds the sharded on-disk-format index over the current
    /// markers — in parallel on `pool` when given; the resulting bytes
    /// are identical at any thread count.
    ///
    /// # Errors
    ///
    /// [`SpaceError::TooLarge`] when a count exceeds the 32-bit
    /// on-disk id space.
    pub fn build_sharded_index(
        &mut self,
        config: &SpaceConfig,
        seed: u64,
        pool: Option<&WorkerPool>,
    ) -> Result<(), SpaceError> {
        let names: Vec<String> = self.types.iter().map(|t| t.to_string()).collect();
        let index = SpaceIndex::build(&self.embeddings, &names, config, seed, pool)?;
        self.index = Index::Sharded(index);
        Ok(())
    }

    /// The sharded index payload to persist as a sidecar file, if a
    /// sharded index is attached.
    pub fn space_payload(&self) -> Option<&[u8]> {
        match &self.index {
            Index::Sharded(ix) => Some(ix.payload()),
            _ => None,
        }
    }

    /// The identity of the sidecar this map expects attached — set
    /// after deserializing a map that had a sharded index.
    pub fn expected_file_id(&self) -> Option<u64> {
        match &self.index {
            Index::Detached { file_id } => Some(*file_id),
            _ => None,
        }
    }

    /// The attached sharded view, if any.
    pub fn space_index(&self) -> Option<&SpaceIndex> {
        match &self.index {
            Index::Sharded(ix) => Some(ix),
            _ => None,
        }
    }

    /// Markers added since the sharded index was built (scanned
    /// exactly on every query until the next rebuild).
    pub fn overlay_len(&self) -> usize {
        match &self.index {
            Index::Sharded(ix) => self.embeddings.len() - ix.len(),
            _ => 0,
        }
    }

    /// Attaches a loaded sidecar view. When the map is `Detached` the
    /// view's `file_id` must match the recorded identity; in every
    /// case the dimensions must agree and the view may not cover more
    /// markers than the map holds. Markers beyond the view's count —
    /// typically added while the map was detached — become overlay,
    /// and when that overlay already meets the index's rebuild
    /// threshold the index is rebuilt in place over all markers
    /// (*attach-then-merge*): pre-attach adds are counted against the
    /// threshold exactly as post-attach ones, instead of silently
    /// drifting outside the rebuild accounting. A failed merge rebuild
    /// warns once and keeps the attached view — queries stay correct
    /// through the exact overlay scan.
    ///
    /// # Errors
    ///
    /// [`SpaceError::IndexMismatch`], [`SpaceError::DimensionMismatch`]
    /// or [`SpaceError::MarkerMismatch`] when the sidecar does not
    /// belong to this map.
    pub fn attach_space_index(&mut self, index: SpaceIndex) -> Result<(), SpaceError> {
        if let Index::Detached { file_id } = self.index {
            if file_id != index.file_id() {
                return Err(SpaceError::IndexMismatch {
                    expected: file_id,
                    found: index.file_id(),
                });
            }
        }
        if index.dim() != self.dim {
            return Err(SpaceError::DimensionMismatch {
                expected: self.dim,
                found: index.dim(),
            });
        }
        if index.len() > self.embeddings.len() {
            return Err(SpaceError::MarkerMismatch {
                index_points: index.len(),
                map_markers: self.embeddings.len(),
            });
        }
        let overlay = self.embeddings.len() - index.len();
        let merge = if overlay >= index.rebuild_threshold().max(1) {
            Some((index.config(), index.seed()))
        } else {
            None
        };
        self.index = Index::Sharded(index);
        if let Some((config, seed)) = merge {
            if let Err(e) = self.build_sharded_index(&config, seed, None) {
                typilus_nn::warn_once(
                    "space.rebuild",
                    &format!(
                        "attach-time overlay merge failed ({e}); serving the \
                         attached index with an exact-scanned overlay of {overlay}"
                    ),
                );
            }
        }
        Ok(())
    }

    /// Detaches an attached sharded view down to its identity marker —
    /// the state a deserialized map is in before its sidecar is
    /// attached. No-op in other states.
    pub fn detach_space_index(&mut self) {
        if let Index::Sharded(ix) = &self.index {
            self.index = Index::Detached {
                file_id: ix.file_id(),
            };
        }
    }

    /// The `k` nearest markers in ascending `(distance, index)` order,
    /// written into `out` reusing `scratch` — the allocation-free core
    /// of [`TypeMap::predict`]. With a sharded index attached, overlay
    /// markers are scanned exactly and merged with the view's hits.
    // lint: root(hotpath)
    pub fn nearest_into(
        &self,
        query: &[f32],
        k: usize,
        scratch: &mut QueryScratch,
        out: &mut Vec<Hit>,
    ) {
        match &self.index {
            // Brute force straight over the marker store — no per-query
            // copy of the embeddings. A detached map searches exactly
            // too: correct, just not sub-linear, until re-attachment.
            Index::Exact | Index::Detached { .. } => index::top_k_into(
                &self.embeddings,
                0..self.embeddings.len(),
                query,
                k,
                &mut scratch.heap,
                out,
            ),
            Index::Forest(f) => f.query_into(query, k, scratch, out),
            Index::Sharded(ix) => {
                ix.query_into(query, k, scratch, out);
                let base = ix.len();
                if base < self.embeddings.len() {
                    let mut aux = std::mem::take(&mut scratch.aux);
                    index::top_k_into(
                        &self.embeddings,
                        base..self.embeddings.len(),
                        query,
                        k,
                        &mut scratch.heap,
                        &mut aux,
                    );
                    out.extend_from_slice(&aux);
                    scratch.aux = aux;
                    out.sort_by(|a, b| {
                        a.distance
                            .total_cmp(&b.distance)
                            .then(a.index.cmp(&b.index))
                    });
                    out.truncate(k);
                }
            }
        }
    }

    /// Predicts a distribution over candidate types for `query` (Eq. 5),
    /// sorted by descending probability. The kNN search runs through a
    /// per-thread reusable scratch, so it allocates nothing at steady
    /// state.
    ///
    /// A query whose width differs from the map's dimension yields no
    /// predictions (serve-reachable code must not panic, lint rule S2).
    pub fn predict(&self, query: &[f32], config: KnnConfig) -> Vec<TypePrediction> {
        if query.len() != self.dim || self.is_empty() {
            return Vec::new();
        }
        let config = config.effective();
        PREDICT_SCRATCH.with(|cell| {
            let mut guard = cell.borrow_mut();
            let (scratch, hits) = &mut *guard;
            self.nearest_into(query, config.k, scratch, hits);
            // Keyed in type-name order so accumulation and the collect
            // below are deterministic (lint rule D1).
            let mut scores: BTreeMap<String, (PyType, f64)> = BTreeMap::new();
            let mut z = 0.0f64;
            for h in hits.iter() {
                // d^{-p} with a floor so exact matches dominate but stay finite.
                let d = f64::from(h.distance).max(1e-6);
                let w = d.powf(f64::from(-config.p));
                // A hit index out of range would mean index/metadata
                // desync; skip it rather than panic (lint rule S3).
                let Some(ty) = self.types.get(h.index) else {
                    continue;
                };
                z += w;
                let e = scores.entry(ty.to_string()).or_insert((ty.clone(), 0.0));
                e.1 += w;
            }
            let mut out: Vec<TypePrediction> = scores
                .into_values()
                .map(|(ty, s)| TypePrediction {
                    ty,
                    probability: (s / z) as f32,
                })
                .collect();
            out.sort_by(|a, b| {
                b.probability
                    .total_cmp(&a.probability)
                    .then_with(|| a.ty.to_string().cmp(&b.ty.to_string()))
            });
            out
        })
    }

    /// The single best prediction, if any.
    pub fn predict_top(&self, query: &[f32], config: KnnConfig) -> Option<TypePrediction> {
        self.predict(query, config).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> PyType {
        s.parse().unwrap()
    }

    fn small_map() -> TypeMap {
        let mut m = TypeMap::new(2);
        m.add(vec![0.0, 0.0], t("int")).unwrap();
        m.add(vec![0.1, 0.1], t("int")).unwrap();
        m.add(vec![1.0, 1.0], t("str")).unwrap();
        m.add(vec![1.1, 0.9], t("str")).unwrap();
        m
    }

    fn filled_map(n: usize) -> TypeMap {
        let mut m = TypeMap::new(4);
        let mut rng_state = 12345u64;
        let mut next = || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng_state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        for i in 0..n {
            let ty = if i % 3 == 0 {
                t("int")
            } else if i % 3 == 1 {
                t("str")
            } else {
                t("List[int]")
            };
            m.add(vec![next(), next(), next(), next()], ty).unwrap();
        }
        m
    }

    #[test]
    fn nearest_type_wins() {
        let m = small_map();
        let cfg = KnnConfig { k: 4, p: 2.0 };
        let top = m.predict_top(&[0.05, 0.0], cfg).unwrap();
        assert_eq!(top.ty, t("int"));
        let top = m.predict_top(&[1.0, 0.95], cfg).unwrap();
        assert_eq!(top.ty, t("str"));
    }

    #[test]
    fn probabilities_normalise() {
        let m = small_map();
        let preds = m.predict(&[0.5, 0.5], KnnConfig { k: 4, p: 1.0 });
        let total: f32 = preds.iter().map(|p| p.probability).sum();
        assert!((total - 1.0).abs() < 1e-5);
        assert_eq!(preds.len(), 2);
    }

    #[test]
    fn high_p_approaches_one_nearest_neighbour() {
        let mut m = TypeMap::new(1);
        m.add(vec![0.0], t("int")).unwrap();
        m.add(vec![0.2], t("str")).unwrap();
        m.add(vec![0.25], t("str")).unwrap();
        // Query nearest to int but str has more (slightly farther) votes.
        let uniform = m.predict_top(&[0.1], KnnConfig { k: 3, p: 0.01 }).unwrap();
        assert_eq!(uniform.ty, t("str"), "p→0 is a majority vote");
        let sharp = m.predict_top(&[0.09], KnnConfig { k: 3, p: 20.0 }).unwrap();
        assert_eq!(sharp.ty, t("int"), "p→∞ is 1-NN");
    }

    #[test]
    fn one_shot_open_vocabulary_adaptation() {
        let mut m = small_map();
        let cfg = KnnConfig::default();
        let novel = t("bungee.Cord");
        // Before binding, the novel type cannot be predicted.
        assert!(m.predict(&[5.0, 5.0], cfg).iter().all(|p| p.ty != novel));
        // One marker suffices: no retraining.
        m.add(vec![5.0, 5.0], novel.clone()).unwrap();
        let top = m.predict_top(&[5.1, 4.9], cfg).unwrap();
        assert_eq!(top.ty, novel);
    }

    #[test]
    fn approximate_index_agrees_with_exact() {
        let mut m = filled_map(300);
        let query = vec![0.1, -0.2, 0.3, 0.0];
        let exact_top = m.predict_top(&query, KnnConfig::default()).unwrap();
        m.build_index(
            RpForestConfig {
                trees: 10,
                leaf_size: 8,
                search_k: 300,
            },
            1,
        );
        let approx_top = m.predict_top(&query, KnnConfig::default()).unwrap();
        assert_eq!(exact_top.ty, approx_top.ty);
    }

    #[test]
    fn sharded_index_agrees_with_exact() {
        let mut m = filled_map(300);
        let query = vec![0.1, -0.2, 0.3, 0.0];
        let exact = m.predict(&query, KnnConfig::default());
        m.build_sharded_index(
            &SpaceConfig {
                shards: 4,
                forest: RpForestConfig {
                    trees: 8,
                    leaf_size: 8,
                    search_k: 300,
                },
                rebuild_threshold: 1024,
            },
            1,
            None,
        )
        .unwrap();
        assert!(m.space_index().is_some());
        // search_k >= n makes the sharded search exhaustive, so the
        // predictions must be identical, not merely close.
        assert_eq!(m.predict(&query, KnnConfig::default()), exact);
    }

    #[test]
    fn adding_marker_invalidates_index() {
        let mut m = small_map();
        m.build_index(RpForestConfig::default(), 0);
        m.add(vec![9.0, 9.0], t("bytes")).unwrap();
        // The new marker must be findable immediately.
        let top = m
            .predict_top(&[9.0, 9.0], KnnConfig { k: 1, p: 1.0 })
            .unwrap();
        assert_eq!(top.ty, t("bytes"));
    }

    #[test]
    fn sharded_overlay_finds_new_marker_without_rebuild() {
        let mut m = filled_map(300);
        m.build_sharded_index(&SpaceConfig::default(), 7, None)
            .unwrap();
        m.add(vec![9.0, 9.0, 9.0, 9.0], t("bytes")).unwrap();
        assert_eq!(m.overlay_len(), 1, "marker must land in the overlay");
        assert!(m.space_index().is_some(), "index must stay attached");
        let top = m
            .predict_top(&[9.0, 9.0, 9.0, 9.0], KnnConfig { k: 1, p: 1.0 })
            .unwrap();
        assert_eq!(top.ty, t("bytes"));
    }

    #[test]
    fn sharded_overlay_rebuild_at_threshold() {
        let mut m = filled_map(100);
        let config = SpaceConfig {
            rebuild_threshold: 4,
            ..SpaceConfig::default()
        };
        m.build_sharded_index(&config, 7, None).unwrap();
        let before = m.space_index().unwrap().file_id();
        for i in 0..3 {
            m.add(vec![i as f32; 4], t("bytes")).unwrap();
        }
        assert_eq!(m.overlay_len(), 3);
        assert_eq!(m.space_index().unwrap().file_id(), before);
        m.add(vec![3.0; 4], t("bytes")).unwrap();
        // Threshold hit: rebuilt over all 104 markers, overlay empty.
        assert_eq!(m.overlay_len(), 0);
        let rebuilt = m.space_index().unwrap();
        assert_eq!(rebuilt.len(), 104);
        assert_ne!(rebuilt.file_id(), before);
        assert_eq!(rebuilt.config(), config, "rebuild keeps the config");
    }

    #[test]
    fn detach_attach_round_trip() {
        let mut m = filled_map(200);
        m.build_sharded_index(&SpaceConfig::default(), 3, None)
            .unwrap();
        let index = m.space_index().unwrap().clone();
        let query = vec![0.2, -0.1, 0.0, 0.3];
        let attached = m.predict(&query, KnnConfig::default());
        m.detach_space_index();
        assert_eq!(m.expected_file_id(), Some(index.file_id()));
        assert!(m.space_payload().is_none());
        // Detached queries are exact, hence still correct.
        assert!(!m.predict(&query, KnnConfig::default()).is_empty());
        // Wrong sidecar is rejected; the right one restores the state.
        let mut other = filled_map(200);
        other
            .build_sharded_index(&SpaceConfig::default(), 99, None)
            .unwrap();
        let wrong = other.space_index().unwrap().clone();
        assert!(matches!(
            m.attach_space_index(wrong),
            Err(SpaceError::IndexMismatch { .. })
        ));
        m.attach_space_index(index).unwrap();
        assert_eq!(m.predict(&query, KnnConfig::default()), attached);
    }

    #[test]
    fn zero_distance_dominates() {
        let m = small_map();
        let top = m
            .predict_top(&[1.0, 1.0], KnnConfig { k: 4, p: 2.0 })
            .unwrap();
        assert_eq!(top.ty, t("str"));
        assert!(top.probability > 0.9);
    }

    #[test]
    fn empty_map_predicts_nothing() {
        let m = TypeMap::new(3);
        assert!(m.predict(&[0.0, 0.0, 0.0], KnnConfig::default()).is_empty());
    }

    #[test]
    fn zero_k_is_rejected_and_clamped_to_one_neighbour() {
        assert!(KnnConfig { k: 0, p: 2.0 }.validate().is_err());
        // Prediction clamps k to 1 instead of silently returning nothing.
        let m = small_map();
        let preds = m.predict(&[0.05, 0.0], KnnConfig { k: 0, p: 2.0 });
        assert!(
            !preds.is_empty(),
            "k = 0 must degrade to 1-NN, not predict nothing"
        );
        assert_eq!(preds[0].ty, t("int"));
        let one_nn = m.predict(&[0.05, 0.0], KnnConfig { k: 1, p: 2.0 });
        assert_eq!(preds, one_nn);
    }

    #[test]
    fn negative_p_is_rejected_and_clamped_to_uniform_vote() {
        assert!(KnnConfig { k: 4, p: -2.0 }.validate().is_err());
        assert!(KnnConfig { k: 4, p: f32::NAN }.validate().is_err());
        assert!(KnnConfig { k: 4, p: 2.0 }.validate().is_ok());
        // A negative exponent would weight *far* neighbours above near
        // ones; prediction clamps it to 0 (uniform vote) instead.
        let mut m = TypeMap::new(1);
        m.add(vec![0.0], t("int")).unwrap();
        m.add(vec![5.0], t("str")).unwrap();
        m.add(vec![6.0], t("str")).unwrap();
        let preds = m.predict(&[0.1], KnnConfig { k: 3, p: -8.0 });
        let uniform = m.predict(&[0.1], KnnConfig { k: 3, p: 0.0 });
        assert_eq!(preds, uniform, "negative p must clamp to a uniform vote");
        // With the inverted weights the two far `str` markers would win
        // overwhelmingly; under the clamp they win only 2-votes-to-1.
        assert!(preds
            .iter()
            .any(|p| p.ty == t("int") && p.probability > 0.3));
    }

    #[test]
    fn distinct_type_count() {
        assert_eq!(small_map().distinct_types(), 2);
    }

    #[test]
    fn width_mismatch_is_a_typed_error_and_leaves_the_map_unchanged() {
        let mut m = small_map();
        let before = m.len();
        let preds_before = m.predict(&[0.05, 0.0], KnnConfig::default());
        // Too narrow, too wide, empty: all must be rejected, none may
        // panic (the serve daemon routes raw client input here).
        for bad in [vec![1.0], vec![1.0, 2.0, 3.0], vec![]] {
            let err = m.add(bad.clone(), t("bytes")).unwrap_err();
            assert_eq!(
                err,
                SpaceError::DimensionMismatch {
                    expected: 2,
                    found: bad.len()
                }
            );
        }
        assert_eq!(m.len(), before, "rejected adds must not leave debris");
        assert_eq!(
            m.predict(&[0.05, 0.0], KnnConfig::default()),
            preds_before,
            "rejected adds must not disturb predictions"
        );
        // The map still works after the failures.
        m.add(vec![7.0, 7.0], t("bytes")).unwrap();
        assert_eq!(m.len(), before + 1);
    }

    #[test]
    fn width_mismatch_with_sharded_index_keeps_index_consistent() {
        let mut m = filled_map(100);
        m.build_sharded_index(&SpaceConfig::default(), 7, None)
            .unwrap();
        assert!(m.add(vec![1.0; 3], t("bytes")).is_err());
        assert_eq!(m.overlay_len(), 0, "failed add must not count as overlay");
        assert!(m.space_index().is_some(), "index must stay attached");
    }

    #[test]
    fn detached_adds_merge_into_the_index_on_attach() {
        let mut m = filled_map(100);
        let config = SpaceConfig {
            rebuild_threshold: 3,
            ..SpaceConfig::default()
        };
        m.build_sharded_index(&config, 7, None).unwrap();
        let index = m.space_index().unwrap().clone();
        let before_id = index.file_id();
        m.detach_space_index();
        // Markers bound while detached: immediately queryable (exact
        // fallback), and counted against the rebuild threshold once the
        // sidecar re-attaches.
        for i in 0..3 {
            m.add(vec![10.0 + i as f32; 4], t("bytes")).unwrap();
        }
        let top = m
            .predict_top(&[10.0; 4], KnnConfig { k: 1, p: 1.0 })
            .unwrap();
        assert_eq!(top.ty, t("bytes"), "detached adds must be queryable");
        m.attach_space_index(index).unwrap();
        // Attach-then-merge: the overlay met the threshold, so the
        // index was rebuilt over all 103 markers.
        assert_eq!(m.overlay_len(), 0, "attach must merge a full overlay");
        let rebuilt = m.space_index().unwrap();
        assert_eq!(rebuilt.len(), 103);
        assert_ne!(rebuilt.file_id(), before_id);
        assert_eq!(rebuilt.config(), config, "merge rebuild keeps the config");
        let top = m
            .predict_top(&[11.0; 4], KnnConfig { k: 1, p: 1.0 })
            .unwrap();
        assert_eq!(top.ty, t("bytes"));
    }

    #[test]
    fn detached_adds_below_threshold_stay_overlay_after_attach() {
        let mut m = filled_map(100);
        let config = SpaceConfig {
            rebuild_threshold: 8,
            ..SpaceConfig::default()
        };
        m.build_sharded_index(&config, 7, None).unwrap();
        let index = m.space_index().unwrap().clone();
        let before_id = index.file_id();
        m.detach_space_index();
        m.add(vec![10.0; 4], t("bytes")).unwrap();
        m.attach_space_index(index).unwrap();
        // Below threshold: no rebuild, but the pre-attach marker is
        // overlay — scanned exactly on every query and counted toward
        // the next rebuild.
        assert_eq!(m.overlay_len(), 1);
        assert_eq!(m.space_index().unwrap().file_id(), before_id);
        let top = m
            .predict_top(&[10.0; 4], KnnConfig { k: 1, p: 1.0 })
            .unwrap();
        assert_eq!(top.ty, t("bytes"));
    }
}
