//! # typilus-space
//!
//! The TypeSpace machinery of the Typilus reproduction: the adaptive
//! type map `τmap` (embedding → type markers), kNN type prediction with
//! the distance-weighted vote of paper Eq. 5, and an Annoy-style
//! random-projection forest for sub-linear queries under L1 (the paper
//! uses Annoy with the same metric).
//!
//! For million-marker spaces the forest scales through the sharded
//! machinery: [`shard`] builds tree groups in parallel with
//! deterministic per-shard seeds, [`disk`] lays the whole index out in
//! a contiguous little-endian format that [`SpaceIndex`] queries
//! zero-copy straight from a memory-mapped (or any borrowed) view, and
//! [`TypeMap`] keeps post-build markers queryable through a
//! deterministic overlay merged by periodic rebuild.
//!
//! ```
//! use typilus_space::{KnnConfig, TypeMap};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut map = TypeMap::new(2);
//! map.add(vec![0.0, 0.0], "int".parse()?)?;
//! map.add(vec![1.0, 1.0], "str".parse()?)?;
//! let top = map.predict_top(&[0.1, 0.0], KnnConfig::default()).unwrap();
//! assert_eq!(top.ty.to_string(), "int");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod disk;
pub mod error;
pub mod index;
pub mod kernel;
pub mod shard;
pub mod typemap;

pub use disk::{
    build_payload, AlignedBytes, SpaceIndex, SPACE_HEADER_LEN, SPACE_MAGIC, SPACE_VERSION,
};
pub use error::SpaceError;
pub use index::{
    l1, l1_pruned, l1_pruned_reference, l1_reference, ExactIndex, Hit, PointStore, QueryScratch,
    RpForest, RpForestConfig,
};
pub use shard::{reference_forest, SpaceConfig};
pub use typemap::{KnnConfig, TypeMap, TypePrediction};
