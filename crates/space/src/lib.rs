//! # typilus-space
//!
//! The TypeSpace machinery of the Typilus reproduction: the adaptive
//! type map `τmap` (embedding → type markers), kNN type prediction with
//! the distance-weighted vote of paper Eq. 5, and an Annoy-style
//! random-projection forest for sub-linear queries under L1 (the paper
//! uses Annoy with the same metric).
//!
//! ```
//! use typilus_space::{KnnConfig, TypeMap};
//!
//! # fn main() -> Result<(), typilus_types::ParseTypeError> {
//! let mut map = TypeMap::new(2);
//! map.add(vec![0.0, 0.0], "int".parse()?);
//! map.add(vec![1.0, 1.0], "str".parse()?);
//! let top = map.predict_top(&[0.1, 0.0], KnnConfig::default()).unwrap();
//! assert_eq!(top.ty.to_string(), "int");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod index;
pub mod typemap;

pub use index::{l1, l1_pruned, ExactIndex, Hit, PointStore, RpForest, RpForestConfig};
pub use typemap::{KnnConfig, TypeMap, TypePrediction};
