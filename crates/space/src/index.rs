//! Nearest-neighbour indexes over the TypeSpace (L1 metric).
//!
//! The paper uses Annoy for sub-linear kNN queries. [`RpForest`] is an
//! Annoy-style forest of random-projection trees with priority search;
//! [`ExactIndex`] is the brute-force reference used in tests and for
//! small type maps.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// L1 (Manhattan) distance — the metric of the paper's type space.
pub fn l1(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// A `(point index, distance)` search hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Index of the point in the indexed collection.
    pub index: usize,
    /// L1 distance to the query.
    pub distance: f32,
}

/// Brute-force exact kNN.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExactIndex {
    points: Vec<Vec<f32>>,
}

impl ExactIndex {
    /// Creates an index over `points`.
    pub fn new(points: Vec<Vec<f32>>) -> ExactIndex {
        ExactIndex { points }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The `k` nearest points to `query` in ascending distance.
    pub fn query(&self, query: &[f32], k: usize) -> Vec<Hit> {
        let mut hits: Vec<Hit> = self
            .points
            .iter()
            .enumerate()
            .map(|(i, p)| Hit { index: i, distance: l1(query, p) })
            .collect();
        hits.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.index.cmp(&b.index)));
        hits.truncate(k);
        hits
    }
}

/// Construction options for [`RpForest`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RpForestConfig {
    /// Number of trees; more trees, better recall.
    pub trees: usize,
    /// Maximum points per leaf.
    pub leaf_size: usize,
    /// Number of candidate points examined per query (`search_k`); more
    /// candidates, better recall.
    pub search_k: usize,
}

impl Default for RpForestConfig {
    fn default() -> Self {
        RpForestConfig { trees: 12, leaf_size: 16, search_k: 384 }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum TreeNode {
    Leaf {
        points: Vec<usize>,
    },
    Split {
        /// Random projection direction.
        direction: Vec<f32>,
        /// Split threshold on the projection.
        threshold: f32,
        left: usize,
        right: usize,
    },
}

/// An Annoy-style forest of random-projection trees under L1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RpForest {
    points: Vec<Vec<f32>>,
    nodes: Vec<TreeNode>,
    roots: Vec<usize>,
    config: RpForestConfig,
}

impl RpForest {
    /// Builds the forest over `points`.
    pub fn build(points: Vec<Vec<f32>>, config: RpForestConfig, seed: u64) -> RpForest {
        let mut forest =
            RpForest { points, nodes: Vec::new(), roots: Vec::new(), config };
        let mut rng = StdRng::seed_from_u64(seed);
        let all: Vec<usize> = (0..forest.points.len()).collect();
        for _ in 0..config.trees {
            let root = forest.build_node(&all, &mut rng, 0);
            forest.roots.push(root);
        }
        forest
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    fn dim(&self) -> usize {
        self.points.first().map(|p| p.len()).unwrap_or(0)
    }

    fn build_node(&mut self, points: &[usize], rng: &mut StdRng, depth: usize) -> usize {
        if points.len() <= self.config.leaf_size || depth > 24 {
            self.nodes.push(TreeNode::Leaf { points: points.to_vec() });
            return self.nodes.len() - 1;
        }
        // Annoy-style split: the hyperplane between two random points of
        // the subset, which adapts to the data's local geometry. Falls
        // back to a random ±1 direction when the two points coincide.
        let dim = self.dim();
        let a = points[rng.gen_range(0..points.len())];
        let b = points[rng.gen_range(0..points.len())];
        let mut direction: Vec<f32> = self.points[a]
            .iter()
            .zip(&self.points[b])
            .map(|(x, y)| x - y)
            .collect();
        if direction.iter().all(|&d| d == 0.0) {
            direction = (0..dim).map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 }).collect();
        }
        let mut projections: Vec<f32> = points
            .iter()
            .map(|&i| dot(&self.points[i], &direction))
            .collect();
        let mut sorted = projections.clone();
        sorted.sort_by(f32::total_cmp);
        let threshold = sorted[sorted.len() / 2];
        let mut left = Vec::new();
        let mut right = Vec::new();
        for (&idx, &proj) in points.iter().zip(&projections) {
            if proj < threshold {
                left.push(idx);
            } else {
                right.push(idx);
            }
        }
        // Degenerate split (all projections equal): make a leaf.
        if left.is_empty() || right.is_empty() {
            self.nodes.push(TreeNode::Leaf { points: points.to_vec() });
            return self.nodes.len() - 1;
        }
        projections.clear();
        let l = self.build_node(&left, rng, depth + 1);
        let r = self.build_node(&right, rng, depth + 1);
        self.nodes.push(TreeNode::Split { direction, threshold, left: l, right: r });
        self.nodes.len() - 1
    }

    /// The approximate `k` nearest points in ascending distance.
    ///
    /// Performs a priority search across all trees, examining at least
    /// `search_k` candidate points, then ranks candidates by true L1.
    pub fn query(&self, query: &[f32], k: usize) -> Vec<Hit> {
        if self.points.is_empty() {
            return Vec::new();
        }
        // Max-heap on -margin so the closest frontier expands first.
        #[derive(PartialEq)]
        struct Frontier(f32, usize);
        impl Eq for Frontier {}
        impl PartialOrd for Frontier {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Frontier {
            fn cmp(&self, other: &Self) -> Ordering {
                other.0.total_cmp(&self.0) // min-heap on margin
            }
        }

        let mut heap = BinaryHeap::new();
        for &root in &self.roots {
            heap.push(Frontier(0.0, root));
        }
        let mut candidates: Vec<usize> = Vec::new();
        let mut seen = vec![false; self.points.len()];
        while let Some(Frontier(_, node)) = heap.pop() {
            match &self.nodes[node] {
                TreeNode::Leaf { points } => {
                    for &p in points {
                        if !seen[p] {
                            seen[p] = true;
                            candidates.push(p);
                        }
                    }
                    if candidates.len() >= self.config.search_k {
                        break;
                    }
                }
                TreeNode::Split { direction, threshold, left, right } => {
                    let margin = dot(query, direction) - threshold;
                    let (near, far) =
                        if margin < 0.0 { (*left, *right) } else { (*right, *left) };
                    heap.push(Frontier(0.0, near));
                    heap.push(Frontier(margin.abs(), far));
                }
            }
        }
        let mut hits: Vec<Hit> = candidates
            .into_iter()
            .map(|i| Hit { index: i, distance: l1(query, &self.points[i]) })
            .collect();
        hits.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.index.cmp(&b.index)));
        hits.truncate(k);
        hits
    }
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect()
    }

    #[test]
    fn exact_index_orders_by_distance() {
        let points = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![0.1, 0.0]];
        let idx = ExactIndex::new(points);
        let hits = idx.query(&[0.0, 0.0], 2);
        assert_eq!(hits[0].index, 0);
        assert_eq!(hits[1].index, 2);
        assert!((hits[1].distance - 0.1).abs() < 1e-6);
    }

    #[test]
    fn forest_exact_recall_on_small_data() {
        // With search_k >= n the forest must return exact results.
        let points = random_points(200, 8, 1);
        let exact = ExactIndex::new(points.clone());
        let forest = RpForest::build(
            points,
            RpForestConfig { trees: 8, leaf_size: 8, search_k: 200 },
            7,
        );
        let query = vec![0.05; 8];
        let e: Vec<usize> = exact.query(&query, 10).iter().map(|h| h.index).collect();
        let f: Vec<usize> = forest.query(&query, 10).iter().map(|h| h.index).collect();
        assert_eq!(e, f);
    }

    #[test]
    fn forest_high_recall_with_partial_search() {
        let points = random_points(2000, 16, 2);
        let exact = ExactIndex::new(points.clone());
        let forest = RpForest::build(points, RpForestConfig::default(), 3);
        let mut rng = StdRng::seed_from_u64(9);
        let mut recall_hits = 0;
        let mut total = 0;
        for _ in 0..20 {
            let q: Vec<f32> = (0..16).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let e: std::collections::HashSet<usize> =
                exact.query(&q, 10).iter().map(|h| h.index).collect();
            let f = forest.query(&q, 10);
            recall_hits += f.iter().filter(|h| e.contains(&h.index)).count();
            total += 10;
        }
        let recall = recall_hits as f32 / total as f32;
        assert!(recall >= 0.8, "recall too low: {recall}");
    }

    #[test]
    fn empty_forest_returns_nothing() {
        let forest = RpForest::build(Vec::new(), RpForestConfig::default(), 0);
        assert!(forest.query(&[0.0], 5).is_empty());
        assert!(forest.is_empty());
    }

    #[test]
    fn identical_points_degenerate_split() {
        let points = vec![vec![1.0, 2.0]; 100];
        let forest = RpForest::build(
            points,
            RpForestConfig { trees: 4, leaf_size: 4, search_k: 10 },
            5,
        );
        let hits = forest.query(&[1.0, 2.0], 3);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].distance, 0.0);
    }

    #[test]
    fn l1_metric() {
        assert_eq!(l1(&[0.0, 0.0], &[3.0, -4.0]), 7.0);
    }
}
