//! Nearest-neighbour indexes over the TypeSpace (L1 metric).
//!
//! The paper uses Annoy for sub-linear kNN queries. [`RpForest`] is an
//! Annoy-style forest of random-projection trees with priority search;
//! [`ExactIndex`] is the brute-force reference used in tests and for
//! small type maps.
//!
//! Points live in a [`PointStore`]: one contiguous row-major `Vec<f32>`
//! rather than a `Vec<Vec<f32>>`, so the distance kernel streams
//! cache-friendly memory instead of chasing a pointer per point. Top-k
//! selection keeps a bounded max-heap of the current best `k` hits
//! (`O(n log k)` instead of a full `O(n log n)` sort), and the L1 kernel
//! early-exits as soon as a partial sum proves a point cannot beat the
//! current k-th best distance.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Contiguous row-major point storage.
///
/// All coordinates live in a single allocation; row `i` occupies
/// `[i * dim, (i + 1) * dim)`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PointStore {
    data: Vec<f32>,
    dim: usize,
    len: usize,
}

impl PointStore {
    /// Creates an empty store for `dim`-wide points.
    pub fn new(dim: usize) -> PointStore {
        PointStore {
            data: Vec::new(),
            dim,
            len: 0,
        }
    }

    /// Packs nested rows into contiguous storage.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing widths.
    pub fn from_rows(rows: Vec<Vec<f32>>) -> PointStore {
        let dim = rows.first().map(Vec::len).unwrap_or(0);
        let mut store = PointStore {
            data: Vec::with_capacity(rows.len() * dim),
            dim,
            len: 0,
        };
        for row in &rows {
            store.push(row);
        }
        store
    }

    /// Appends one point.
    ///
    /// # Panics
    ///
    /// Panics if `row`'s width differs from the store's dimension.
    pub fn push(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.dim, "point width mismatch");
        self.data.extend_from_slice(row);
        self.len += 1;
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Point width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// One point as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterates over the points in order.
    pub fn rows(&self) -> impl Iterator<Item = &[f32]> {
        (0..self.len).map(|i| self.row(i))
    }
}

/// L1 (Manhattan) distance — the metric of the paper's type space.
pub fn l1(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Coordinates summed between bound checks of [`l1_pruned`].
const PRUNE_CHUNK: usize = 8;

/// L1 distance with early exit: accumulates `|a - b|` in the same
/// left-to-right order as [`l1`], and after every [`PRUNE_CHUNK`]-wide
/// chunk stops as soon as the partial sum strictly exceeds `bound`.
///
/// When the result is `<= bound` it is bit-identical to `l1(a, b)`;
/// otherwise it is some partial sum `> bound`, which suffices to reject
/// the point in a top-k scan. The exit test is strict so that distances
/// exactly equal to the bound are still computed exactly (ties are
/// broken by index downstream).
pub fn l1_pruned(a: &[f32], b: &[f32], bound: f32) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut sum = 0.0f32;
    let mut i = 0;
    let n = a.len();
    while i < n {
        let end = (i + PRUNE_CHUNK).min(n);
        while i < end {
            sum += (a[i] - b[i]).abs();
            i += 1;
        }
        if sum > bound {
            return sum;
        }
    }
    sum
}

/// A `(point index, distance)` search hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Index of the point in the indexed collection.
    pub index: usize,
    /// L1 distance to the query.
    pub distance: f32,
}

/// Heap entry ordered worst-first: greater distance, then greater index,
/// so the max-heap's top is the hit that drops out next and ties keep
/// the lowest index (matching a `(distance, index)` sort).
#[derive(PartialEq)]
struct Worst(f32, usize);

impl Eq for Worst {}

impl PartialOrd for Worst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Worst {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

/// The `k` candidates nearest to `query`, in ascending `(distance,
/// index)` order. A bounded max-heap carries the best `k` seen so far;
/// its worst distance prunes every later [`l1_pruned`] scan.
pub(crate) fn top_k(
    store: &PointStore,
    candidates: impl Iterator<Item = usize>,
    query: &[f32],
    k: usize,
) -> Vec<Hit> {
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<Worst> = BinaryHeap::with_capacity(k + 1);
    for i in candidates {
        let bound = if heap.len() == k {
            heap.peek().expect("heap is full").0
        } else {
            f32::INFINITY
        };
        let d = l1_pruned(query, store.row(i), bound);
        let cand = Worst(d, i);
        if heap.len() < k {
            heap.push(cand);
        } else if cand < *heap.peek().expect("heap is full") {
            heap.pop();
            heap.push(cand);
        }
    }
    heap.into_sorted_vec()
        .into_iter()
        .map(|Worst(distance, index)| Hit { index, distance })
        .collect()
}

/// Brute-force exact kNN.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExactIndex {
    points: PointStore,
}

impl ExactIndex {
    /// Creates an index over `points`.
    pub fn new(points: Vec<Vec<f32>>) -> ExactIndex {
        ExactIndex {
            points: PointStore::from_rows(points),
        }
    }

    /// Creates an index over already-contiguous points.
    pub fn from_store(points: PointStore) -> ExactIndex {
        ExactIndex { points }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The `k` nearest points to `query` in ascending distance.
    pub fn query(&self, query: &[f32], k: usize) -> Vec<Hit> {
        top_k(&self.points, 0..self.points.len(), query, k)
    }
}

/// Construction options for [`RpForest`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RpForestConfig {
    /// Number of trees; more trees, better recall.
    pub trees: usize,
    /// Maximum points per leaf.
    pub leaf_size: usize,
    /// Number of candidate points examined per query (`search_k`); more
    /// candidates, better recall.
    pub search_k: usize,
}

impl Default for RpForestConfig {
    fn default() -> Self {
        RpForestConfig {
            trees: 12,
            leaf_size: 16,
            search_k: 384,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum TreeNode {
    Leaf {
        points: Vec<usize>,
    },
    Split {
        /// Random projection direction.
        direction: Vec<f32>,
        /// Split threshold on the projection.
        threshold: f32,
        left: usize,
        right: usize,
    },
}

/// An Annoy-style forest of random-projection trees under L1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RpForest {
    points: PointStore,
    nodes: Vec<TreeNode>,
    roots: Vec<usize>,
    config: RpForestConfig,
}

impl RpForest {
    /// Builds the forest over `points`.
    pub fn build(points: Vec<Vec<f32>>, config: RpForestConfig, seed: u64) -> RpForest {
        RpForest::from_store(PointStore::from_rows(points), config, seed)
    }

    /// Builds the forest over already-contiguous points.
    pub fn from_store(points: PointStore, config: RpForestConfig, seed: u64) -> RpForest {
        let mut forest = RpForest {
            points,
            nodes: Vec::new(),
            roots: Vec::new(),
            config,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let all: Vec<usize> = (0..forest.points.len()).collect();
        for _ in 0..config.trees {
            let root = forest.build_node(&all, &mut rng, 0);
            forest.roots.push(root);
        }
        forest
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    fn build_node(&mut self, points: &[usize], rng: &mut StdRng, depth: usize) -> usize {
        if points.len() <= self.config.leaf_size || depth > 24 {
            self.nodes.push(TreeNode::Leaf {
                points: points.to_vec(),
            });
            return self.nodes.len() - 1;
        }
        // Annoy-style split: the hyperplane between two random points of
        // the subset, which adapts to the data's local geometry. Falls
        // back to a random ±1 direction when the two points coincide.
        let dim = self.points.dim();
        let a = points[rng.gen_range(0..points.len())];
        let b = points[rng.gen_range(0..points.len())];
        let mut direction: Vec<f32> = self
            .points
            .row(a)
            .iter()
            .zip(self.points.row(b))
            .map(|(x, y)| x - y)
            .collect();
        if direction.iter().all(|&d| d == 0.0) {
            direction = (0..dim)
                .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                .collect();
        }
        let mut projections: Vec<f32> = points
            .iter()
            .map(|&i| dot(self.points.row(i), &direction))
            .collect();
        let mut sorted = projections.clone();
        sorted.sort_by(f32::total_cmp);
        let threshold = sorted[sorted.len() / 2];
        let mut left = Vec::new();
        let mut right = Vec::new();
        for (&idx, &proj) in points.iter().zip(&projections) {
            if proj < threshold {
                left.push(idx);
            } else {
                right.push(idx);
            }
        }
        // Degenerate split (all projections equal): make a leaf.
        if left.is_empty() || right.is_empty() {
            self.nodes.push(TreeNode::Leaf {
                points: points.to_vec(),
            });
            return self.nodes.len() - 1;
        }
        projections.clear();
        let l = self.build_node(&left, rng, depth + 1);
        let r = self.build_node(&right, rng, depth + 1);
        self.nodes.push(TreeNode::Split {
            direction,
            threshold,
            left: l,
            right: r,
        });
        self.nodes.len() - 1
    }

    /// The approximate `k` nearest points in ascending distance.
    ///
    /// Performs a priority search across all trees, examining at least
    /// `search_k` candidate points, then ranks candidates by true L1.
    pub fn query(&self, query: &[f32], k: usize) -> Vec<Hit> {
        if self.points.is_empty() {
            return Vec::new();
        }
        // Max-heap on -margin so the closest frontier expands first.
        #[derive(PartialEq)]
        struct Frontier(f32, usize);
        impl Eq for Frontier {}
        impl PartialOrd for Frontier {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Frontier {
            fn cmp(&self, other: &Self) -> Ordering {
                other.0.total_cmp(&self.0) // min-heap on margin
            }
        }

        let mut heap = BinaryHeap::new();
        for &root in &self.roots {
            heap.push(Frontier(0.0, root));
        }
        let mut candidates: Vec<usize> = Vec::new();
        let mut seen = vec![false; self.points.len()];
        while let Some(Frontier(_, node)) = heap.pop() {
            match &self.nodes[node] {
                TreeNode::Leaf { points } => {
                    for &p in points {
                        if !seen[p] {
                            seen[p] = true;
                            candidates.push(p);
                        }
                    }
                    if candidates.len() >= self.config.search_k {
                        break;
                    }
                }
                TreeNode::Split {
                    direction,
                    threshold,
                    left,
                    right,
                } => {
                    let margin = dot(query, direction) - threshold;
                    let (near, far) = if margin < 0.0 {
                        (*left, *right)
                    } else {
                        (*right, *left)
                    };
                    heap.push(Frontier(0.0, near));
                    heap.push(Frontier(margin.abs(), far));
                }
            }
        }
        top_k(&self.points, candidates.into_iter(), query, k)
    }
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect()
    }

    /// The old full-sort selection, kept as the reference the pruned
    /// heap-based kernel must reproduce exactly.
    fn naive_query(points: &[Vec<f32>], query: &[f32], k: usize) -> Vec<Hit> {
        let mut hits: Vec<Hit> = points
            .iter()
            .enumerate()
            .map(|(i, p)| Hit {
                index: i,
                distance: l1(query, p),
            })
            .collect();
        hits.sort_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then(a.index.cmp(&b.index))
        });
        hits.truncate(k);
        hits
    }

    #[test]
    fn exact_index_orders_by_distance() {
        let points = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![0.1, 0.0]];
        let idx = ExactIndex::new(points);
        let hits = idx.query(&[0.0, 0.0], 2);
        assert_eq!(hits[0].index, 0);
        assert_eq!(hits[1].index, 2);
        assert!((hits[1].distance - 0.1).abs() < 1e-6);
    }

    #[test]
    fn pruned_query_matches_naive_reference() {
        let points = random_points(400, 19, 11);
        let idx = ExactIndex::new(points.clone());
        let mut rng = StdRng::seed_from_u64(13);
        for k in [1, 3, 10, 400, 500] {
            for _ in 0..10 {
                let q: Vec<f32> = (0..19).map(|_| rng.gen_range(-1.0..1.0)).collect();
                assert_eq!(idx.query(&q, k), naive_query(&points, &q, k));
            }
        }
    }

    #[test]
    fn pruned_query_breaks_ties_by_index() {
        // Duplicate points at several distances force ties everywhere.
        let mut points = Vec::new();
        for _ in 0..4 {
            points.push(vec![1.0, 0.0]);
            points.push(vec![0.0, 0.0]);
            points.push(vec![2.0, 2.0]);
        }
        let idx = ExactIndex::new(points.clone());
        for k in 1..=points.len() {
            assert_eq!(
                idx.query(&[0.0, 0.0], k),
                naive_query(&points, &[0.0, 0.0], k)
            );
        }
    }

    #[test]
    fn l1_pruned_is_exact_within_bound() {
        let a: Vec<f32> = (0..37).map(|i| (i as f32) * 0.17 - 3.0).collect();
        let b: Vec<f32> = (0..37).map(|i| (i as f32 * 0.71).cos()).collect();
        let exact = l1(&a, &b);
        assert_eq!(l1_pruned(&a, &b, f32::INFINITY).to_bits(), exact.to_bits());
        assert_eq!(l1_pruned(&a, &b, exact).to_bits(), exact.to_bits());
        // Below the true distance the partial sum must still exceed the bound.
        assert!(l1_pruned(&a, &b, exact * 0.5) > exact * 0.5);
    }

    #[test]
    fn point_store_round_trips_rows() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let store = PointStore::from_rows(rows.clone());
        assert_eq!(store.len(), 3);
        assert_eq!(store.dim(), 2);
        assert_eq!(store.row(1), &[3.0, 4.0]);
        let back: Vec<Vec<f32>> = store.rows().map(<[f32]>::to_vec).collect();
        assert_eq!(back, rows);
        let mut grown = PointStore::new(2);
        grown.push(&[7.0, 8.0]);
        assert_eq!(grown.len(), 1);
        assert_eq!(grown.row(0), &[7.0, 8.0]);
    }

    #[test]
    fn forest_exact_recall_on_small_data() {
        // With search_k >= n the forest must return exact results.
        let points = random_points(200, 8, 1);
        let exact = ExactIndex::new(points.clone());
        let forest = RpForest::build(
            points,
            RpForestConfig {
                trees: 8,
                leaf_size: 8,
                search_k: 200,
            },
            7,
        );
        let query = vec![0.05; 8];
        let e: Vec<usize> = exact.query(&query, 10).iter().map(|h| h.index).collect();
        let f: Vec<usize> = forest.query(&query, 10).iter().map(|h| h.index).collect();
        assert_eq!(e, f);
    }

    #[test]
    fn forest_high_recall_with_partial_search() {
        let points = random_points(2000, 16, 2);
        let exact = ExactIndex::new(points.clone());
        let forest = RpForest::build(points, RpForestConfig::default(), 3);
        let mut rng = StdRng::seed_from_u64(9);
        let mut recall_hits = 0;
        let mut total = 0;
        for _ in 0..20 {
            let q: Vec<f32> = (0..16).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let e: std::collections::HashSet<usize> =
                exact.query(&q, 10).iter().map(|h| h.index).collect();
            let f = forest.query(&q, 10);
            recall_hits += f.iter().filter(|h| e.contains(&h.index)).count();
            total += 10;
        }
        let recall = recall_hits as f32 / total as f32;
        assert!(recall >= 0.8, "recall too low: {recall}");
    }

    #[test]
    fn empty_forest_returns_nothing() {
        let forest = RpForest::build(Vec::new(), RpForestConfig::default(), 0);
        assert!(forest.query(&[0.0], 5).is_empty());
        assert!(forest.is_empty());
    }

    #[test]
    fn identical_points_degenerate_split() {
        let points = vec![vec![1.0, 2.0]; 100];
        let forest = RpForest::build(
            points,
            RpForestConfig {
                trees: 4,
                leaf_size: 4,
                search_k: 10,
            },
            5,
        );
        let hits = forest.query(&[1.0, 2.0], 3);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].distance, 0.0);
    }

    #[test]
    fn l1_metric() {
        assert_eq!(l1(&[0.0, 0.0], &[3.0, -4.0]), 7.0);
    }
}
