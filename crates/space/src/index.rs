//! Nearest-neighbour indexes over the TypeSpace (L1 metric).
//!
//! The paper uses Annoy for sub-linear kNN queries. [`RpForest`] is an
//! Annoy-style forest of random-projection trees with priority search;
//! [`ExactIndex`] is the brute-force reference used in tests and for
//! small type maps.
//!
//! Points live in a [`PointStore`]: one contiguous row-major `Vec<f32>`
//! rather than a `Vec<Vec<f32>>`, so the distance kernel streams
//! cache-friendly memory instead of chasing a pointer per point. Top-k
//! selection keeps a bounded max-heap of the current best `k` hits
//! (`O(n log k)` instead of a full `O(n log n)` sort), and the L1 kernel
//! early-exits as soon as a partial sum proves a point cannot beat the
//! current k-th best distance.
//!
//! Serving is allocation-free at steady state: every index exposes
//! `query_into(&self, q, k, scratch, out)` writing into a reusable
//! [`QueryScratch`] (frontier heap, visited stamps, candidate list,
//! top-k heap) — the allocating `query` wrappers remain for tests and
//! one-off callers. The priority-search frontier is ordered by
//! `(margin, insertion sequence)`, a total order independent of how
//! tree nodes are addressed, so the in-memory forest and the zero-copy
//! on-disk view (`crate::disk`) visit candidates in exactly the same
//! order.

use crate::error::SpaceError;
pub use crate::kernel::{l1, l1_pruned, l1_pruned_reference, l1_reference};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// Contiguous row-major point storage.
///
/// All coordinates live in a single allocation; row `i` occupies
/// `[i * dim, (i + 1) * dim)`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PointStore {
    data: Vec<f32>,
    dim: usize,
    len: usize,
}

impl PointStore {
    /// Creates an empty store for `dim`-wide points.
    pub fn new(dim: usize) -> PointStore {
        PointStore {
            data: Vec::new(),
            dim,
            len: 0,
        }
    }

    /// Packs nested rows into contiguous storage.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing widths.
    pub fn from_rows(rows: Vec<Vec<f32>>) -> PointStore {
        let dim = rows.first().map(Vec::len).unwrap_or(0);
        let mut store = PointStore {
            data: Vec::with_capacity(rows.len() * dim),
            dim,
            len: 0,
        };
        for row in &rows {
            store.push(row);
        }
        store
    }

    /// Appends one point, validating its width: a mismatched row would
    /// otherwise shear every later row's `[i * dim, (i + 1) * dim)`
    /// slice and silently corrupt the contiguous buffer.
    ///
    /// # Errors
    ///
    /// [`SpaceError::DimensionMismatch`] if `row`'s width differs from
    /// the store's dimension; the store is left unchanged.
    pub fn try_push(&mut self, row: &[f32]) -> Result<(), SpaceError> {
        if row.len() != self.dim {
            return Err(SpaceError::DimensionMismatch {
                expected: self.dim,
                found: row.len(),
            });
        }
        self.data.extend_from_slice(row);
        self.len += 1;
        Ok(())
    }

    /// Appends one point.
    ///
    /// # Panics
    ///
    /// Panics if `row`'s width differs from the store's dimension
    /// (infallible version of [`PointStore::try_push`]).
    pub fn push(&mut self, row: &[f32]) {
        if let Err(e) = self.try_push(row) {
            panic!("{e}");
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Point width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// One point as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterates over the points in order.
    pub fn rows(&self) -> impl Iterator<Item = &[f32]> {
        (0..self.len).map(|i| self.row(i))
    }

    /// The whole contiguous coordinate buffer (the on-disk writer
    /// copies it out verbatim).
    pub(crate) fn data(&self) -> &[f32] {
        &self.data
    }
}

/// A `(point index, distance)` search hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Index of the point in the indexed collection.
    pub index: usize,
    /// L1 distance to the query.
    pub distance: f32,
}

/// Heap entry ordered worst-first: greater distance, then greater index,
/// so the max-heap's top is the hit that drops out next and ties keep
/// the lowest index (matching a `(distance, index)` sort).
#[derive(Clone, Copy, PartialEq)]
pub(crate) struct Worst(pub(crate) f32, pub(crate) usize);

impl Eq for Worst {}

impl PartialOrd for Worst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Worst {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

impl std::fmt::Debug for Worst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Worst({}, {})", self.0, self.1)
    }
}

/// Row access shared by the top-k kernel: implemented by the owned
/// [`PointStore`] and by the zero-copy on-disk point block.
pub(crate) trait PointSource {
    /// Point `i` as a slice.
    fn row(&self, i: usize) -> &[f32];
}

impl PointSource for PointStore {
    fn row(&self, i: usize) -> &[f32] {
        PointStore::row(self, i)
    }
}

/// Borrowed row-major points (the on-disk point block).
pub(crate) struct SliceRows<'a> {
    pub(crate) data: &'a [f32],
    pub(crate) dim: usize,
}

impl PointSource for SliceRows<'_> {
    fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }
}

// --- manual binary heaps over reusable Vec storage -----------------------
//
// `std::collections::BinaryHeap` owns its buffer, so a per-query heap
// means a per-query allocation. These sift helpers run the same
// algorithm over caller-owned Vecs that live in `QueryScratch`.

fn worst_sift_up(heap: &mut [Worst], mut i: usize) {
    while i > 0 {
        let parent = (i - 1) / 2;
        if heap[i] <= heap[parent] {
            break;
        }
        heap.swap(i, parent);
        i = parent;
    }
}

fn worst_sift_down(heap: &mut [Worst], mut i: usize) {
    loop {
        let mut largest = i;
        let l = 2 * i + 1;
        let r = l + 1;
        if l < heap.len() && heap[l] > heap[largest] {
            largest = l;
        }
        if r < heap.len() && heap[r] > heap[largest] {
            largest = r;
        }
        if largest == i {
            break;
        }
        heap.swap(i, largest);
        i = largest;
    }
}

/// Priority-search frontier entry: `(margin, insertion sequence,
/// node address)`. The sequence number makes the order total and
/// representation-independent — two traversals that push the same
/// logical nodes in the same order pop them in the same order, whether
/// a node is addressed as an in-memory index or an on-disk offset.
#[derive(Debug, Clone, Copy)]
struct FrontierEntry {
    margin: f32,
    seq: u32,
    payload: u64,
}

#[inline]
fn frontier_less(a: &FrontierEntry, b: &FrontierEntry) -> bool {
    a.margin
        .total_cmp(&b.margin)
        .then(a.seq.cmp(&b.seq))
        .is_lt()
}

/// Reusable buffers for the serve-critical query path: the priority
/// frontier, the visited-point stamp set, the candidate list, and the
/// bounded top-k heap. One scratch per thread makes `query_into`
/// allocation-free at steady state; `begin` resets it in O(1) (the
/// stamp set uses an epoch counter instead of clearing).
#[derive(Debug, Clone, Default)]
pub struct QueryScratch {
    pub(crate) heap: Vec<Worst>,
    pub(crate) candidates: Vec<u32>,
    stamps: Vec<u32>,
    epoch: u32,
    frontier: Vec<FrontierEntry>,
    seq: u32,
    pub(crate) aux: Vec<Hit>,
}

impl QueryScratch {
    /// Creates an empty scratch; buffers grow to steady-state sizes on
    /// first use.
    pub fn new() -> QueryScratch {
        QueryScratch::default()
    }

    /// Starts a query over `points` points: clears per-query state and
    /// advances the visited epoch.
    pub(crate) fn begin(&mut self, points: usize) {
        self.candidates.clear();
        self.frontier.clear();
        self.seq = 0;
        if self.stamps.len() < points {
            self.stamps.resize(points, 0);
        }
        if self.epoch == u32::MAX {
            self.stamps.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Marks point `p` visited; `true` when it had not been seen in
    /// this query yet.
    pub(crate) fn mark_new(&mut self, p: usize) -> bool {
        if self.stamps[p] == self.epoch {
            false
        } else {
            self.stamps[p] = self.epoch;
            true
        }
    }

    /// Pushes a node onto the priority frontier.
    pub(crate) fn frontier_push(&mut self, margin: f32, payload: u64) {
        self.frontier.push(FrontierEntry {
            margin,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
        let mut i = self.frontier.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if !frontier_less(&self.frontier[i], &self.frontier[parent]) {
                break;
            }
            self.frontier.swap(i, parent);
            i = parent;
        }
    }

    /// Pops the frontier node with the smallest `(margin, seq)`.
    pub(crate) fn frontier_pop(&mut self) -> Option<u64> {
        if self.frontier.is_empty() {
            return None;
        }
        let top = self.frontier.swap_remove(0);
        let mut i = 0;
        loop {
            let mut smallest = i;
            let l = 2 * i + 1;
            let r = l + 1;
            if l < self.frontier.len() && frontier_less(&self.frontier[l], &self.frontier[smallest])
            {
                smallest = l;
            }
            if r < self.frontier.len() && frontier_less(&self.frontier[r], &self.frontier[smallest])
            {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.frontier.swap(i, smallest);
            i = smallest;
        }
        Some(top.payload)
    }
}

/// The `k` candidates nearest to `query`, in ascending `(distance,
/// index)` order, written into `out`. A bounded max-heap (caller-owned
/// `heap` storage, cleared here) carries the best `k` seen so far; its
/// worst distance prunes every later [`l1_pruned`] scan.
pub(crate) fn top_k_into<P: PointSource + ?Sized>(
    points: &P,
    candidates: impl Iterator<Item = usize>,
    query: &[f32],
    k: usize,
    heap: &mut Vec<Worst>,
    out: &mut Vec<Hit>,
) {
    out.clear();
    heap.clear();
    if k == 0 {
        return;
    }
    for i in candidates {
        let bound = if heap.len() == k {
            heap[0].0
        } else {
            f32::INFINITY
        };
        let d = l1_pruned(query, points.row(i), bound);
        let cand = Worst(d, i);
        if heap.len() < k {
            heap.push(cand);
            let last = heap.len() - 1;
            worst_sift_up(heap, last);
        } else if cand < heap[0] {
            heap[0] = cand;
            worst_sift_down(heap, 0);
        }
    }
    out.extend(
        heap.iter()
            .map(|&Worst(distance, index)| Hit { index, distance }),
    );
    out.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then(a.index.cmp(&b.index))
    });
}

/// Allocating convenience wrapper over [`top_k_into`].
pub(crate) fn top_k(
    store: &PointStore,
    candidates: impl Iterator<Item = usize>,
    query: &[f32],
    k: usize,
) -> Vec<Hit> {
    let mut heap = Vec::new();
    let mut out = Vec::new();
    top_k_into(store, candidates, query, k, &mut heap, &mut out);
    out
}

/// Brute-force exact kNN.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExactIndex {
    points: PointStore,
}

impl ExactIndex {
    /// Creates an index over `points`.
    pub fn new(points: Vec<Vec<f32>>) -> ExactIndex {
        ExactIndex {
            points: PointStore::from_rows(points),
        }
    }

    /// Creates an index over already-contiguous points.
    pub fn from_store(points: PointStore) -> ExactIndex {
        ExactIndex { points }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The `k` nearest points to `query` in ascending distance.
    pub fn query(&self, query: &[f32], k: usize) -> Vec<Hit> {
        top_k(&self.points, 0..self.points.len(), query, k)
    }

    /// Allocation-free [`ExactIndex::query`]: identical hits written
    /// into `out`, reusing `scratch`'s buffers.
    pub fn query_into(
        &self,
        query: &[f32],
        k: usize,
        scratch: &mut QueryScratch,
        out: &mut Vec<Hit>,
    ) {
        top_k_into(
            &self.points,
            0..self.points.len(),
            query,
            k,
            &mut scratch.heap,
            out,
        );
    }
}

/// Construction options for [`RpForest`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RpForestConfig {
    /// Number of trees; more trees, better recall.
    pub trees: usize,
    /// Maximum points per leaf.
    pub leaf_size: usize,
    /// Number of candidate points examined per query (`search_k`); more
    /// candidates, better recall.
    pub search_k: usize,
}

impl Default for RpForestConfig {
    fn default() -> Self {
        RpForestConfig {
            trees: 12,
            leaf_size: 16,
            search_k: 384,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum TreeNode {
    Leaf {
        points: Vec<usize>,
    },
    Split {
        /// Random projection direction.
        direction: Vec<f32>,
        /// Split threshold on the projection.
        threshold: f32,
        left: usize,
        right: usize,
    },
}

/// Builds random-projection trees over a borrowed [`PointStore`],
/// accumulating nodes into one arena. Children are pushed before their
/// parent, so node `i`'s subtree lives entirely in `nodes[..=i]` — the
/// on-disk writer relies on this to emit blocks in a single pass.
pub(crate) struct TreeBuilder<'a> {
    points: &'a PointStore,
    config: RpForestConfig,
    pub(crate) nodes: Vec<TreeNode>,
    pub(crate) roots: Vec<usize>,
}

impl<'a> TreeBuilder<'a> {
    pub(crate) fn new(points: &'a PointStore, config: RpForestConfig) -> TreeBuilder<'a> {
        TreeBuilder {
            points,
            config,
            nodes: Vec::new(),
            roots: Vec::new(),
        }
    }

    /// Builds `trees` trees from one RNG stream seeded with `seed`.
    pub(crate) fn build_trees(&mut self, trees: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let all: Vec<usize> = (0..self.points.len()).collect();
        for _ in 0..trees {
            let root = self.build_node(&all, &mut rng, 0);
            self.roots.push(root);
        }
    }

    fn build_node(&mut self, points: &[usize], rng: &mut StdRng, depth: usize) -> usize {
        if points.len() <= self.config.leaf_size || depth > 24 {
            self.nodes.push(TreeNode::Leaf {
                points: points.to_vec(),
            });
            return self.nodes.len() - 1;
        }
        // Annoy-style split: the hyperplane between two random points of
        // the subset, which adapts to the data's local geometry. Falls
        // back to a random ±1 direction when the two points coincide.
        let dim = self.points.dim();
        let a = points[rng.gen_range(0..points.len())];
        let b = points[rng.gen_range(0..points.len())];
        let mut direction: Vec<f32> = self
            .points
            .row(a)
            .iter()
            .zip(self.points.row(b))
            .map(|(x, y)| x - y)
            .collect();
        if direction.iter().all(|&d| d == 0.0) {
            direction = (0..dim)
                .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                .collect();
        }
        let mut projections: Vec<f32> = points
            .iter()
            .map(|&i| dot(self.points.row(i), &direction))
            .collect();
        let mut sorted = projections.clone();
        sorted.sort_by(f32::total_cmp);
        let threshold = sorted[sorted.len() / 2];
        let mut left = Vec::new();
        let mut right = Vec::new();
        for (&idx, &proj) in points.iter().zip(&projections) {
            if proj < threshold {
                left.push(idx);
            } else {
                right.push(idx);
            }
        }
        // Degenerate split (all projections equal): make a leaf.
        if left.is_empty() || right.is_empty() {
            self.nodes.push(TreeNode::Leaf {
                points: points.to_vec(),
            });
            return self.nodes.len() - 1;
        }
        projections.clear();
        let l = self.build_node(&left, rng, depth + 1);
        let r = self.build_node(&right, rng, depth + 1);
        self.nodes.push(TreeNode::Split {
            direction,
            threshold,
            left: l,
            right: r,
        });
        self.nodes.len() - 1
    }
}

/// An Annoy-style forest of random-projection trees under L1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RpForest {
    points: PointStore,
    nodes: Vec<TreeNode>,
    roots: Vec<usize>,
    config: RpForestConfig,
}

impl RpForest {
    /// Builds the forest over `points`.
    pub fn build(points: Vec<Vec<f32>>, config: RpForestConfig, seed: u64) -> RpForest {
        RpForest::from_store(PointStore::from_rows(points), config, seed)
    }

    /// Builds the forest over already-contiguous points.
    pub fn from_store(points: PointStore, config: RpForestConfig, seed: u64) -> RpForest {
        let mut builder = TreeBuilder::new(&points, config);
        builder.build_trees(config.trees, seed);
        let TreeBuilder { nodes, roots, .. } = builder;
        RpForest {
            points,
            nodes,
            roots,
            config,
        }
    }

    /// Assembles a forest from pre-built parts (the sharded builder's
    /// merged tree sets).
    pub(crate) fn from_parts(
        points: PointStore,
        nodes: Vec<TreeNode>,
        roots: Vec<usize>,
        config: RpForestConfig,
    ) -> RpForest {
        RpForest {
            points,
            nodes,
            roots,
            config,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The approximate `k` nearest points in ascending distance.
    ///
    /// Performs a priority search across all trees, examining at least
    /// `search_k` candidate points, then ranks candidates by true L1.
    pub fn query(&self, query: &[f32], k: usize) -> Vec<Hit> {
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        self.query_into(query, k, &mut scratch, &mut out);
        out
    }

    /// Allocation-free [`RpForest::query`]: identical hits written into
    /// `out`, reusing `scratch`'s buffers.
    pub fn query_into(
        &self,
        query: &[f32],
        k: usize,
        scratch: &mut QueryScratch,
        out: &mut Vec<Hit>,
    ) {
        out.clear();
        if self.points.is_empty() {
            return;
        }
        scratch.begin(self.points.len());
        for &root in &self.roots {
            scratch.frontier_push(0.0, root as u64);
        }
        while let Some(payload) = scratch.frontier_pop() {
            match &self.nodes[payload as usize] {
                TreeNode::Leaf { points } => {
                    for &p in points {
                        if scratch.mark_new(p) {
                            scratch.candidates.push(p as u32);
                        }
                    }
                    if scratch.candidates.len() >= self.config.search_k {
                        break;
                    }
                }
                TreeNode::Split {
                    direction,
                    threshold,
                    left,
                    right,
                } => {
                    let margin = dot(query, direction) - *threshold;
                    let (near, far) = if margin < 0.0 {
                        (*left, *right)
                    } else {
                        (*right, *left)
                    };
                    scratch.frontier_push(0.0, near as u64);
                    scratch.frontier_push(margin.abs(), far as u64);
                }
            }
        }
        let QueryScratch {
            heap, candidates, ..
        } = scratch;
        top_k_into(
            &self.points,
            candidates.iter().map(|&c| c as usize),
            query,
            k,
            heap,
            out,
        );
    }
}

pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect()
    }

    /// The old full-sort selection, kept as the reference the pruned
    /// heap-based kernel must reproduce exactly.
    fn naive_query(points: &[Vec<f32>], query: &[f32], k: usize) -> Vec<Hit> {
        let mut hits: Vec<Hit> = points
            .iter()
            .enumerate()
            .map(|(i, p)| Hit {
                index: i,
                distance: l1(query, p),
            })
            .collect();
        hits.sort_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then(a.index.cmp(&b.index))
        });
        hits.truncate(k);
        hits
    }

    #[test]
    fn exact_index_orders_by_distance() {
        let points = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![0.1, 0.0]];
        let idx = ExactIndex::new(points);
        let hits = idx.query(&[0.0, 0.0], 2);
        assert_eq!(hits[0].index, 0);
        assert_eq!(hits[1].index, 2);
        assert!((hits[1].distance - 0.1).abs() < 1e-6);
    }

    #[test]
    fn pruned_query_matches_naive_reference() {
        let points = random_points(400, 19, 11);
        let idx = ExactIndex::new(points.clone());
        let mut rng = StdRng::seed_from_u64(13);
        for k in [1, 3, 10, 400, 500] {
            for _ in 0..10 {
                let q: Vec<f32> = (0..19).map(|_| rng.gen_range(-1.0..1.0)).collect();
                assert_eq!(idx.query(&q, k), naive_query(&points, &q, k));
            }
        }
    }

    #[test]
    fn pruned_query_breaks_ties_by_index() {
        // Duplicate points at several distances force ties everywhere.
        let mut points = Vec::new();
        for _ in 0..4 {
            points.push(vec![1.0, 0.0]);
            points.push(vec![0.0, 0.0]);
            points.push(vec![2.0, 2.0]);
        }
        let idx = ExactIndex::new(points.clone());
        for k in 1..=points.len() {
            assert_eq!(
                idx.query(&[0.0, 0.0], k),
                naive_query(&points, &[0.0, 0.0], k)
            );
        }
    }

    #[test]
    fn l1_pruned_is_exact_within_bound() {
        let a: Vec<f32> = (0..37).map(|i| (i as f32) * 0.17 - 3.0).collect();
        let b: Vec<f32> = (0..37).map(|i| (i as f32 * 0.71).cos()).collect();
        let exact = l1(&a, &b);
        assert_eq!(l1_pruned(&a, &b, f32::INFINITY).to_bits(), exact.to_bits());
        assert_eq!(l1_pruned(&a, &b, exact).to_bits(), exact.to_bits());
        // Below the true distance the partial sum must still exceed the bound.
        assert!(l1_pruned(&a, &b, exact * 0.5) > exact * 0.5);
    }

    #[test]
    fn point_store_round_trips_rows() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let store = PointStore::from_rows(rows.clone());
        assert_eq!(store.len(), 3);
        assert_eq!(store.dim(), 2);
        assert_eq!(store.row(1), &[3.0, 4.0]);
        let back: Vec<Vec<f32>> = store.rows().map(<[f32]>::to_vec).collect();
        assert_eq!(back, rows);
        let mut grown = PointStore::new(2);
        grown.push(&[7.0, 8.0]);
        assert_eq!(grown.len(), 1);
        assert_eq!(grown.row(0), &[7.0, 8.0]);
    }

    #[test]
    fn try_push_rejects_width_mismatch_without_corrupting() {
        let mut store = PointStore::new(3);
        store.push(&[1.0, 2.0, 3.0]);
        let err = store.try_push(&[4.0, 5.0]).unwrap_err();
        assert_eq!(
            err,
            SpaceError::DimensionMismatch {
                expected: 3,
                found: 2
            }
        );
        // The failed push left the buffer untouched.
        assert_eq!(store.len(), 1);
        assert_eq!(store.row(0), &[1.0, 2.0, 3.0]);
        store.try_push(&[4.0, 5.0, 6.0]).unwrap();
        assert_eq!(store.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn query_into_matches_query_and_reuses_buffers() {
        let points = random_points(300, 9, 21);
        let exact = ExactIndex::new(points.clone());
        let forest = RpForest::build(points, RpForestConfig::default(), 5);
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..8 {
            let q: Vec<f32> = (0..9).map(|_| rng.gen_range(-1.0..1.0)).collect();
            exact.query_into(&q, 7, &mut scratch, &mut out);
            assert_eq!(out, exact.query(&q, 7));
            forest.query_into(&q, 7, &mut scratch, &mut out);
            assert_eq!(out, forest.query(&q, 7));
        }
    }

    #[test]
    fn forest_exact_recall_on_small_data() {
        // With search_k >= n the forest must return exact results.
        let points = random_points(200, 8, 1);
        let exact = ExactIndex::new(points.clone());
        let forest = RpForest::build(
            points,
            RpForestConfig {
                trees: 8,
                leaf_size: 8,
                search_k: 200,
            },
            7,
        );
        let query = vec![0.05; 8];
        let e: Vec<usize> = exact.query(&query, 10).iter().map(|h| h.index).collect();
        let f: Vec<usize> = forest.query(&query, 10).iter().map(|h| h.index).collect();
        assert_eq!(e, f);
    }

    #[test]
    fn forest_high_recall_with_partial_search() {
        let points = random_points(2000, 16, 2);
        let exact = ExactIndex::new(points.clone());
        let forest = RpForest::build(points, RpForestConfig::default(), 3);
        let mut rng = StdRng::seed_from_u64(9);
        let mut recall_hits = 0;
        let mut total = 0;
        for _ in 0..20 {
            let q: Vec<f32> = (0..16).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let e: std::collections::HashSet<usize> =
                exact.query(&q, 10).iter().map(|h| h.index).collect();
            let f = forest.query(&q, 10);
            recall_hits += f.iter().filter(|h| e.contains(&h.index)).count();
            total += 10;
        }
        let recall = recall_hits as f32 / total as f32;
        assert!(recall >= 0.8, "recall too low: {recall}");
    }

    #[test]
    fn empty_forest_returns_nothing() {
        let forest = RpForest::build(Vec::new(), RpForestConfig::default(), 0);
        assert!(forest.query(&[0.0], 5).is_empty());
        assert!(forest.is_empty());
    }

    #[test]
    fn identical_points_degenerate_split() {
        let points = vec![vec![1.0, 2.0]; 100];
        let forest = RpForest::build(
            points,
            RpForestConfig {
                trees: 4,
                leaf_size: 4,
                search_k: 10,
            },
            5,
        );
        let hits = forest.query(&[1.0, 2.0], 3);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].distance, 0.0);
    }

    #[test]
    fn l1_metric() {
        assert_eq!(l1(&[0.0, 0.0], &[3.0, -4.0]), 7.0);
    }
}
