//! The type universe of the synthetic corpus.
//!
//! The paper's corpus has ~24.7k distinct types in a fat-tailed Zipfian
//! distribution: the top 10 types are about half the annotations, only
//! 158 types appear ≥ 100 times, and the long tail (32% of annotations)
//! is dominated by user-defined types and generic instantiations. This
//! module reproduces that *shape* at laptop scale: a head of builtins,
//! a midsection of common generics, and a long tail of generated
//! user-defined types, sampled under a Zipf law. Each type carries the
//! identifier-name pool that makes names predictive of types — the
//! signal Typilus learns from.

use rand::Rng;
use serde::{Deserialize, Serialize};
use typilus_types::PyType;

/// A type in the universe together with its generation-side knowledge.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TypeProfile {
    /// The type itself.
    pub ty: PyType,
    /// Characteristic variable-name stems for symbols of this type.
    pub names: Vec<String>,
    /// Whether this is a generated user-defined class (declared in
    /// corpus files and counted in the rare tail).
    pub user_defined: bool,
}

/// The sampled universe of types with Zipfian weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Universe {
    profiles: Vec<TypeProfile>,
    /// Cumulative sampling weights, parallel to `profiles`.
    cumulative: Vec<f64>,
}

/// Configuration for universe construction.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct UniverseConfig {
    /// Number of user-defined classes in the tail.
    pub user_types: usize,
    /// Zipf exponent (1.0–1.3 matches code corpora).
    pub zipf_exponent: f64,
}

impl Default for UniverseConfig {
    fn default() -> Self {
        UniverseConfig {
            user_types: 110,
            zipf_exponent: 1.05,
        }
    }
}

const ADJECTIVES: &[&str] = &[
    "Token", "Data", "Request", "Response", "Config", "Session", "Batch", "Cache", "Event", "File",
    "Graph", "Index", "Job", "Key", "Log", "Message", "Node", "Packet", "Query", "Record",
    "Schema", "Stream", "Task", "User", "Vector", "Worker", "Audio", "Image", "Model", "Metric",
];

const NOUNS: &[&str] = &[
    "Buffer", "Loader", "Handler", "Manager", "Builder", "Parser", "Writer", "Reader", "Store",
    "Pool", "Queue", "Registry", "Tracker", "Router", "Encoder", "Decoder", "Filter", "Mapper",
    "Runner", "Monitor",
];

fn snake_case(pascal: &str) -> String {
    let mut out = String::new();
    for (i, c) in pascal.chars().enumerate() {
        if c.is_uppercase() && i > 0 {
            out.push('_');
        }
        out.push(c.to_ascii_lowercase());
    }
    out
}

fn profile(ty: &str, names: &[&str]) -> TypeProfile {
    TypeProfile {
        ty: ty.parse().expect("builtin profile types parse"),
        names: names.iter().map(|s| s.to_string()).collect(),
        user_defined: false,
    }
}

/// The fixed head + midsection of the universe: builtins and common
/// generics with their characteristic names, ordered by intended rank.
fn builtin_profiles() -> Vec<TypeProfile> {
    vec![
        profile(
            "str",
            &[
                "name", "text", "label", "title", "path", "message", "key", "prefix", "suffix",
                "line",
            ],
        ),
        profile(
            "int",
            &[
                "count",
                "num_items",
                "size",
                "index",
                "total",
                "offset",
                "limit",
                "step",
                "depth",
                "width",
            ],
        ),
        profile(
            "bool",
            &[
                "is_valid", "has_data", "flag", "enabled", "done", "is_empty", "verbose", "found",
                "strict", "active",
            ],
        ),
        profile(
            "float",
            &[
                "ratio",
                "score",
                "weight",
                "rate",
                "threshold",
                "value",
                "scale",
                "alpha",
                "temperature",
                "factor",
            ],
        ),
        profile(
            "List[str]",
            &[
                "names", "lines", "tokens", "labels", "paths", "words", "keys", "parts",
            ],
        ),
        profile(
            "List[int]",
            &[
                "counts", "sizes", "indices", "ids", "offsets", "lengths", "values", "dims",
            ],
        ),
        profile(
            "Optional[str]",
            &[
                "maybe_name",
                "default_label",
                "override_text",
                "alias",
                "nickname",
            ],
        ),
        profile(
            "Dict[str, str]",
            &["mapping", "aliases", "headers", "env", "labels_by_key"],
        ),
        profile(
            "Dict[str, int]",
            &[
                "counts_by_name",
                "index_of",
                "frequencies",
                "id_map",
                "histogram",
            ],
        ),
        profile(
            "Optional[int]",
            &[
                "maybe_count",
                "default_size",
                "limit_or_none",
                "cap",
                "max_items",
            ],
        ),
        profile("bytes", &["payload", "raw", "data_bytes", "blob", "chunk"]),
        profile(
            "Tuple[int, int]",
            &["pair", "shape", "span", "bounds", "coords"],
        ),
        profile(
            "List[float]",
            &["scores", "weights", "ratios", "samples", "losses"],
        ),
        profile(
            "Set[str]",
            &["seen", "visited", "unique_names", "stopwords", "allowed"],
        ),
        profile(
            "Dict[str, List[int]]",
            &["groups", "buckets", "ids_by_key", "postings"],
        ),
        profile(
            "Optional[float]",
            &["maybe_score", "default_rate", "cutoff", "best_so_far"],
        ),
        profile(
            "List[List[int]]",
            &["matrix", "grid", "rows", "batches_ids"],
        ),
        profile(
            "Tuple[str, int]",
            &["entry", "name_count", "token_id", "labeled_index"],
        ),
        profile("Set[int]", &["id_set", "chosen", "marked", "excluded"]),
        profile(
            "Iterable[str]",
            &["name_iter", "sources", "stream_lines", "inputs"],
        ),
        profile("complex", &["phase", "signal_value", "impedance"]),
        profile(
            "Optional[List[str]]",
            &["maybe_names", "extra_lines", "fallback_tokens"],
        ),
        profile(
            "Callable[[int], int]",
            &["transform", "step_fn", "scorer", "update_fn"],
        ),
        profile(
            "Dict[int, str]",
            &["name_by_id", "labels_by_index", "reverse_map"],
        ),
        profile(
            "Tuple[float, float]",
            &["point", "interval", "range_bounds", "mean_std"],
        ),
    ]
}

impl Universe {
    /// Builds the universe: builtins head plus `user_types` generated
    /// classes, with Zipfian sampling weights over the full rank order.
    pub fn build(config: &UniverseConfig) -> Universe {
        let mut profiles = builtin_profiles();
        let mut combo = 0usize;
        while profiles.iter().filter(|p| p.user_defined).count() < config.user_types {
            let adj = ADJECTIVES[combo % ADJECTIVES.len()];
            let noun = NOUNS[(combo / ADJECTIVES.len()) % NOUNS.len()];
            combo += 1;
            let class_name = format!("{adj}{noun}");
            if profiles.iter().any(|p| p.ty.base_name() == class_name) {
                continue;
            }
            let stem = snake_case(&class_name);
            let noun_stem = snake_case(noun);
            profiles.push(TypeProfile {
                ty: PyType::named(&class_name),
                names: vec![
                    stem.clone(),
                    noun_stem,
                    format!("new_{stem}"),
                    format!("{stem}_obj"),
                ],
                user_defined: true,
            });
        }
        // Also add generic instantiations over user classes into the tail
        // (List[UserType], Optional[UserType]) to mirror the paper's
        // "combinations of type arguments" tail.
        let user_names: Vec<String> = profiles
            .iter()
            .filter(|p| p.user_defined)
            .map(|p| p.ty.base_name().to_string())
            .collect();
        for name in user_names.iter().take(config.user_types / 2) {
            let stem = snake_case(name);
            profiles.push(TypeProfile {
                ty: PyType::generic("List", vec![PyType::named(name)]),
                names: vec![
                    format!("{stem}s"),
                    format!("{stem}_list"),
                    format!("all_{stem}s"),
                ],
                user_defined: true,
            });
        }
        for name in user_names.iter().skip(config.user_types / 2) {
            let stem = snake_case(name);
            profiles.push(TypeProfile {
                ty: PyType::optional(PyType::named(name)),
                names: vec![format!("maybe_{stem}"), format!("{stem}_or_none")],
                user_defined: true,
            });
        }
        // Zipf weights by rank.
        let mut cumulative = Vec::with_capacity(profiles.len());
        let mut acc = 0.0f64;
        for rank in 0..profiles.len() {
            acc += 1.0 / ((rank + 1) as f64).powf(config.zipf_exponent);
            cumulative.push(acc);
        }
        Universe {
            profiles,
            cumulative,
        }
    }

    /// All profiles, most frequent first.
    pub fn profiles(&self) -> &[TypeProfile] {
        &self.profiles
    }

    /// The user-defined class names (to be declared in corpus files).
    pub fn user_classes(&self) -> Vec<&str> {
        self.profiles
            .iter()
            .filter(|p| {
                p.user_defined && matches!(&p.ty, PyType::Named { args, .. } if args.is_empty())
            })
            .map(|p| p.ty.base_name())
            .collect()
    }

    /// Samples a profile index under the Zipf law.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("universe is nonempty");
        let x = rng.gen_range(0.0..total);
        self.cumulative
            .partition_point(|&c| c < x)
            .min(self.profiles.len() - 1)
    }

    /// The profile at an index.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn profile(&self, idx: usize) -> &TypeProfile {
        &self.profiles[idx]
    }

    /// Number of distinct types.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the universe is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn universe_has_head_and_tail() {
        let u = Universe::build(&UniverseConfig::default());
        assert!(u.len() > 100);
        assert_eq!(u.profiles()[0].ty.to_string(), "str");
        assert!(u.profiles().iter().any(|p| p.user_defined));
        assert!(!u.user_classes().is_empty());
    }

    #[test]
    fn sampling_is_zipfian() {
        let u = Universe::build(&UniverseConfig::default());
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; u.len()];
        let n = 20_000;
        for _ in 0..n {
            counts[u.sample(&mut rng)] += 1;
        }
        // Head dominance: top 10 types should hold roughly half the mass
        // (paper: "the top 10 types are about half of the dataset").
        let head: usize = counts.iter().take(10).sum();
        assert!(head * 10 >= n * 4, "head mass too small: {head}/{n}");
        assert!(head * 10 <= n * 8, "head mass too large: {head}/{n}");
        // Tail: rare types (beyond rank 25) still get a solid share.
        let tail: usize = counts.iter().skip(25).sum();
        assert!(tail * 10 >= n * 2, "tail mass too small: {tail}/{n}");
        // Monotone-ish decay between head ranks.
        assert!(counts[0] > counts[9]);
    }

    #[test]
    fn names_are_type_specific() {
        let u = Universe::build(&UniverseConfig::default());
        for p in u.profiles() {
            assert!(!p.names.is_empty(), "{} has no names", p.ty);
        }
        // A user class's names derive from its own name.
        let user = u.profiles().iter().find(|p| p.user_defined).unwrap();
        let base = user.ty.base_name().to_lowercase().replace('_', "");
        assert!(
            user.names[0]
                .replace('_', "")
                .starts_with(&base[..3.min(base.len())]),
            "{:?} vs {base}",
            user.names
        );
    }

    #[test]
    fn snake_case_conversion() {
        assert_eq!(snake_case("TokenBuffer"), "token_buffer");
        assert_eq!(snake_case("IO"), "i_o");
    }
}
