//! Type-directed synthesis of annotated Python files.
//!
//! Every generated expression is produced *for* a target type, and every
//! symbol's name is drawn from its type's characteristic name pool — so
//! the corpus carries the name/usage/type correlations that make
//! probabilistic type inference learnable, while staying (optionally)
//! type-correct so the checker experiments have a clean baseline.

use crate::universe::{TypeProfile, Universe, UniverseConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use typilus_types::PyType;

/// A deliberately wrong annotation planted in a file (paper Sec. 7: the
/// fairseq/allennlp scenario).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InjectedError {
    /// The symbol whose annotation was corrupted.
    pub symbol_name: String,
    /// What the type really is (how the body uses it).
    pub true_type: PyType,
    /// What the annotation claims.
    pub wrong_type: PyType,
    /// File the error lives in.
    pub file: String,
}

/// One generated source file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratedFile {
    /// Pseudo-path of the file.
    pub name: String,
    /// Python source text.
    pub source: String,
    /// Annotation errors planted in this file.
    pub injected_errors: Vec<InjectedError>,
    /// Whether this file is a near-duplicate of another.
    pub is_duplicate: bool,
}

/// Corpus generation parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Number of base (non-duplicate) files.
    pub files: usize,
    /// Functions per file (inclusive range).
    pub functions_per_file: (usize, usize),
    /// Probability that a parameter/return gets an annotation.
    pub annotation_prob: f64,
    /// Probability that a local variable gets an annotation.
    pub local_annotation_prob: f64,
    /// Fraction of annotations that are deliberately wrong.
    pub error_rate: f64,
    /// Probability that a symbol takes a type-agnostic generic name
    /// (`value`, `data`, ...) instead of a type-characteristic one.
    pub generic_name_prob: f64,
    /// Fraction of additional near-duplicate files appended (the paper
    /// found >133k duplicate files in the wild and deduplicates them).
    pub duplicate_rate: f64,
    /// RNG seed; generation is fully deterministic given the config.
    pub seed: u64,
    /// Universe construction.
    pub universe: UniverseConfig,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            files: 120,
            functions_per_file: (2, 5),
            annotation_prob: 0.7,
            local_annotation_prob: 0.2,
            error_rate: 0.0,
            generic_name_prob: 0.3,
            duplicate_rate: 0.1,
            seed: 0,
            universe: UniverseConfig::default(),
        }
    }
}

/// A generated corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corpus {
    /// All files, base files first, duplicates appended.
    pub files: Vec<GeneratedFile>,
    /// The type universe used.
    pub universe: Universe,
}

/// Generates a corpus.
pub fn generate(config: &CorpusConfig) -> Corpus {
    let universe = Universe::build(&config.universe);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut files = Vec::with_capacity(config.files);
    let classes = universe.user_classes();
    for i in 0..config.files {
        // Spread class definitions over the first files so every user
        // type is declared somewhere in the corpus.
        let owned: Vec<&str> = classes
            .iter()
            .enumerate()
            .filter(|(c, _)| c % config.files.max(1) == i)
            .map(|(_, &n)| n)
            .collect();
        let mut synth = Synth {
            universe: &universe,
            rng: &mut rng,
            config,
            fns: Vec::new(),
        };
        let file = synth.file(i, &owned);
        files.push(file);
    }
    // Near-duplicates.
    let dup_count = (config.files as f64 * config.duplicate_rate).round() as usize;
    for d in 0..dup_count {
        let source_idx = rng.gen_range(0..config.files);
        let original = files[source_idx].clone();
        let mutated = mutate_duplicate(&original.source, &mut rng);
        files.push(GeneratedFile {
            name: format!("dup_{d:03}/{}", original.name.replace('/', "_")),
            source: mutated,
            injected_errors: Vec::new(),
            is_duplicate: true,
        });
    }
    Corpus { files, universe }
}

/// Renames a couple of identifiers and literals — enough to defeat exact
/// hashing, not enough to defeat near-duplicate detection.
fn mutate_duplicate(source: &str, rng: &mut StdRng) -> String {
    let mut out = source
        .replace("result", "outcome")
        .replace("helper", "util");
    if rng.gen_bool(0.5) {
        out = out.replace(" 2", " 3");
    }
    out
}

struct FnSig {
    name: String,
    params: Vec<(String, PyType)>,
    ret: PyType,
}

struct Synth<'u, 'r> {
    universe: &'u Universe,
    rng: &'r mut StdRng,
    config: &'r CorpusConfig,
    /// Functions defined so far in the current file (callable later).
    fns: Vec<FnSig>,
}

/// In-scope typed variables.
#[derive(Default, Clone)]
struct Env {
    vars: Vec<(String, PyType)>,
}

impl Env {
    fn add(&mut self, name: &str, ty: PyType) {
        self.vars.push((name.to_string(), ty));
    }

    fn of_type<'e>(&'e self, ty: &PyType) -> Vec<&'e str> {
        self.vars
            .iter()
            .filter(|(_, t)| t == ty)
            .map(|(n, _)| n.as_str())
            .collect()
    }

    fn of_base<'e>(&'e self, base: &str) -> Vec<(&'e str, &'e PyType)> {
        self.vars
            .iter()
            .filter(|(_, t)| t.base_name() == base)
            .map(|(n, t)| (n.as_str(), t))
            .collect()
    }

    fn used(&self, name: &str) -> bool {
        self.vars.iter().any(|(n, _)| n == name)
    }
}

/// Names that real developers attach to values of *any* type. Mixing
/// them in keeps names predictive-but-ambiguous, which is what makes
/// rare types genuinely hard for closed-vocabulary classifiers (the
/// paper's Sec. 7 notes user-defined types are hard precisely because
/// their naming signal is sparse).
const GENERIC_NAMES: &[&str] = &[
    "value", "data", "result", "item", "obj", "out", "tmp", "arg", "current", "res",
];

impl Synth<'_, '_> {
    fn pick<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        &options[self.rng.gen_range(0..options.len())]
    }

    fn fresh_name(&mut self, profile: &TypeProfile, env: &Env) -> String {
        let stem = if self.rng.gen_bool(self.config.generic_name_prob) {
            self.pick(GENERIC_NAMES).to_string()
        } else {
            self.pick(&profile.names).clone()
        };
        if !env.used(&stem) {
            return stem;
        }
        for i in 2..100 {
            let cand = format!("{stem}{i}");
            if !env.used(&cand) {
                return cand;
            }
        }
        format!("{stem}_x")
    }

    /// An expression of type `ty`, preferring in-scope variables.
    fn expr_of(&mut self, ty: &PyType, env: &Env, depth: usize) -> String {
        let vars = env.of_type(ty);
        if !vars.is_empty() && self.rng.gen_bool(0.6) {
            return self.pick(&vars).to_string();
        }
        if depth > 2 {
            return self.literal_of(ty, env, depth);
        }
        match ty.base_name() {
            "int" => {
                let mut options: Vec<String> = vec![self.rng.gen_range(0..100).to_string()];
                for (n, t) in env.of_base("List").into_iter().chain(env.of_base("Dict")) {
                    let _ = t;
                    options.push(format!("len({n})"));
                }
                for (n, _) in env.of_base("str") {
                    options.push(format!("len({n})"));
                }
                for (n, _) in env.of_base("int") {
                    options.push(format!("{n} + 1"));
                    options.push(format!("{n} * 2"));
                }
                self.pick(&options).clone()
            }
            "float" => {
                let mut options: Vec<String> = vec![format!(
                    "{}.{}",
                    self.rng.gen_range(0..9),
                    self.rng.gen_range(1..9)
                )];
                for (n, _) in env.of_base("float") {
                    options.push(format!("{n} * 0.5"));
                }
                for (n, _) in env.of_base("int") {
                    options.push(format!("{n} + 0.5"));
                }
                self.pick(&options).clone()
            }
            "bool" => {
                let mut options: Vec<String> = vec!["True".into(), "False".into()];
                for (n, _) in env.of_base("int") {
                    options.push(format!("{n} > 0"));
                }
                for (n, _) in env.of_base("str") {
                    options.push(format!("{n}.startswith('a')"));
                }
                for (n, _) in env.of_base("bool") {
                    options.push(format!("not {n}"));
                }
                self.pick(&options).clone()
            }
            "str" => {
                let words = ["alpha", "beta", "delta", "gamma", "omega", "sigma"];
                let mut options: Vec<String> = vec![format!("'{}'", self.pick(&words))];
                for (n, _) in env.of_base("str") {
                    options.push(format!("{n}.upper()"));
                    options.push(format!("{n}.strip()"));
                    options.push(format!("{n} + '_tag'"));
                }
                self.pick(&options).clone()
            }
            "bytes" => {
                let mut options: Vec<String> = vec!["b'data'".into()];
                for (n, _) in env.of_base("str") {
                    options.push(format!("{n}.encode()"));
                }
                self.pick(&options).clone()
            }
            "complex" => "1j".to_string(),
            "List" => self.list_expr(ty, env, depth),
            "Set" => match ty {
                PyType::Named { args, .. } if !args.is_empty() => {
                    let a = self.expr_of(&args[0].clone(), env, depth + 1);
                    let b = self.expr_of(&args[0].clone(), env, depth + 1);
                    format!("{{{a}, {b}}}")
                }
                _ => "set()".to_string(),
            },
            "Dict" => match ty {
                PyType::Named { args, .. } if args.len() == 2 => {
                    let k = self.expr_of(&args[0].clone(), env, depth + 1);
                    let v = self.expr_of(&args[1].clone(), env, depth + 1);
                    format!("{{{k}: {v}}}")
                }
                _ => "{}".to_string(),
            },
            "Tuple" => match ty {
                PyType::Named { args, .. } if !args.is_empty() => {
                    let parts: Vec<String> = args
                        .clone()
                        .iter()
                        .map(|a| self.expr_of(a, env, depth + 1))
                        .collect();
                    format!("({})", parts.join(", "))
                }
                _ => "()".to_string(),
            },
            "Union" => match ty {
                PyType::Union(members) => {
                    // Prefer a non-None member; sometimes emit None for
                    // Optionals.
                    if members.contains(&PyType::None) && self.rng.gen_bool(0.25) {
                        "None".to_string()
                    } else {
                        let non_none: Vec<PyType> = members
                            .iter()
                            .filter(|m| **m != PyType::None)
                            .cloned()
                            .collect();
                        let m = self.pick(&non_none).clone();
                        self.expr_of(&m, env, depth + 1)
                    }
                }
                _ => "None".to_string(),
            },
            "Iterable" | "Iterator" | "Sequence" => {
                let inner = match ty {
                    PyType::Named { args, .. } if !args.is_empty() => args[0].clone(),
                    _ => PyType::Any,
                };
                self.list_expr(&PyType::generic("List", vec![inner]), env, depth)
            }
            "Callable" => match ty {
                PyType::Callable {
                    params: Some(ps), ..
                } if ps.len() == 1 => "lambda v: v + 1".to_string(),
                _ => "lambda v: v".to_string(),
            },
            name if self.is_user_class(name) => format!("{name}()"),
            _ => self.literal_of(ty, env, depth),
        }
    }

    fn list_expr(&mut self, ty: &PyType, env: &Env, depth: usize) -> String {
        let inner = match ty {
            PyType::Named { args, .. } if !args.is_empty() => args[0].clone(),
            _ => PyType::Any,
        };
        if inner == PyType::named("str") {
            if let Some((n, _)) = env.of_base("str").first() {
                if self.rng.gen_bool(0.3) {
                    return format!("{n}.split()");
                }
            }
        }
        let a = self.expr_of(&inner, env, depth + 1);
        let b = self.expr_of(&inner, env, depth + 1);
        format!("[{a}, {b}]")
    }

    fn literal_of(&mut self, ty: &PyType, env: &Env, _depth: usize) -> String {
        match ty.base_name() {
            "int" => "0".into(),
            "float" => "0.5".into(),
            "bool" => "True".into(),
            "str" => "'value'".into(),
            "bytes" => "b''".into(),
            "complex" => "0j".into(),
            "List" | "Sequence" | "Iterable" | "Iterator" => "[]".into(),
            "Dict" => "{}".into(),
            "Set" => "set()".into(),
            "Tuple" => "()".into(),
            "Union" => "None".into(),
            "Callable" => "lambda v: v".into(),
            name if self.is_user_class(name) => format!("{name}()"),
            _ => {
                let _ = env;
                "None".into()
            }
        }
    }

    fn is_user_class(&self, name: &str) -> bool {
        self.universe
            .profiles()
            .iter()
            .any(|p| p.user_defined && p.ty.base_name() == name)
    }

    /// A body statement, possibly extending the environment.
    fn statement(&mut self, env: &mut Env, indent: &str, out: &mut String) {
        let choice = self.rng.gen_range(0..10);
        match choice {
            // Typed local.
            0..=3 => {
                let idx = self.universe.sample(self.rng);
                let profile = self.universe.profile(idx).clone();
                let name = self.fresh_name(&profile, env);
                let value = self.expr_of(&profile.ty, env, 0);
                if self.rng.gen_bool(self.config.local_annotation_prob) {
                    out.push_str(&format!("{indent}{name}: {} = {value}\n", profile.ty));
                } else {
                    out.push_str(&format!("{indent}{name} = {value}\n"));
                }
                env.add(&name, profile.ty.clone());
            }
            // For loop over a list variable.
            4 => {
                let lists = env.of_base("List");
                if let Some((list_name, list_ty)) = lists.first() {
                    let list_name = list_name.to_string();
                    let elem_ty = match list_ty {
                        PyType::Named { args, .. } if !args.is_empty() => args[0].clone(),
                        _ => PyType::Any,
                    };
                    let elem = if env.used("item") { "entry" } else { "item" }.to_string();
                    let mut inner_env = env.clone();
                    inner_env.add(&elem, elem_ty);
                    let inner = self.simple_update(&mut inner_env, &elem);
                    out.push_str(&format!(
                        "{indent}for {elem} in {list_name}:\n{indent}    {inner}\n"
                    ));
                } else {
                    let n = self.rng.gen_range(2..6);
                    let counter = if env.used("i") { "j" } else { "i" }.to_string();
                    let mut inner_env = env.clone();
                    inner_env.add(&counter, PyType::named("int"));
                    let inner = self.simple_update(&mut inner_env, &counter);
                    out.push_str(&format!(
                        "{indent}for {counter} in range({n}):\n{indent}    {inner}\n"
                    ));
                }
            }
            // Conditional; prefers the idiomatic Optional-guard when an
            // Optional variable is in scope (`if x is not None:`), which
            // also exercises the checker's flow narrowing.
            5 => {
                let optionals: Vec<String> = env
                    .vars
                    .iter()
                    .filter(|(_, t)| matches!(t, PyType::Union(m) if m.contains(&PyType::None)))
                    .map(|(n, _)| n.clone())
                    .collect();
                if let Some(opt) = optionals.first() {
                    if self.rng.gen_bool(0.6) {
                        out.push_str(&format!(
                            "{indent}if {opt} is not None:\n{indent}    print({opt})\n"
                        ));
                        return;
                    }
                }
                let cond = self.expr_of(&PyType::named("bool"), env, 0);
                let mut inner_env = env.clone();
                let mut inner = String::new();
                self.statement(&mut inner_env, &format!("{indent}    "), &mut inner);
                if inner.trim().is_empty() {
                    inner = format!("{indent}    pass\n");
                }
                out.push_str(&format!("{indent}if {cond}:\n{inner}"));
            }
            // Augmented assignment on a numeric/str variable.
            6 => {
                let nums: Vec<String> = env
                    .of_base("int")
                    .into_iter()
                    .chain(env.of_base("float"))
                    .chain(env.of_base("str"))
                    .map(|(n, _)| n.to_string())
                    .collect();
                if let Some(var) = nums.first() {
                    let ty = env
                        .vars
                        .iter()
                        .find(|(n, _)| n == var)
                        .map(|(_, t)| t.clone())
                        .expect("var came from env");
                    let rhs = self.expr_of(&ty, env, 1);
                    out.push_str(&format!("{indent}{var} += {rhs}\n"));
                } else {
                    out.push_str(&format!("{indent}pass\n"));
                }
            }
            // Container mutation.
            7 => {
                let lists = env.of_base("List");
                if let Some((name, ty)) = lists.first() {
                    let name = name.to_string();
                    let elem = match ty {
                        PyType::Named { args, .. } if !args.is_empty() => args[0].clone(),
                        _ => PyType::Any,
                    };
                    let value = self.expr_of(&elem, env, 1);
                    out.push_str(&format!("{indent}{name}.append({value})\n"));
                } else {
                    out.push_str(&format!("{indent}pass\n"));
                }
            }
            // Call to an earlier function in this file.
            8 => {
                if self.fns.is_empty() {
                    out.push_str(&format!("{indent}pass\n"));
                    return;
                }
                let f_idx = self.rng.gen_range(0..self.fns.len());
                let (fname, params, ret) = {
                    let f = &self.fns[f_idx];
                    (f.name.clone(), f.params.clone(), f.ret.clone())
                };
                let args: Vec<String> = params
                    .iter()
                    .map(|(_, t)| self.expr_of(t, env, 1))
                    .collect();
                let ret_profile = self
                    .universe
                    .profiles()
                    .iter()
                    .find(|p| p.ty == ret)
                    .cloned();
                let var = match ret_profile {
                    Some(p) => self.fresh_name(&p, env),
                    None => "outcome".to_string(),
                };
                out.push_str(&format!("{indent}{var} = {fname}({})\n", args.join(", ")));
                env.add(&var, ret);
            }
            // Print-like side effect.
            _ => {
                if let Some((n, _)) = env.vars.first() {
                    let n = n.clone();
                    out.push_str(&format!("{indent}print({n})\n"));
                } else {
                    out.push_str(&format!("{indent}pass\n"));
                }
            }
        }
    }

    /// A one-line statement updating or using `var` (for loop bodies).
    fn simple_update(&mut self, env: &mut Env, var: &str) -> String {
        let ty = env
            .vars
            .iter()
            .find(|(n, _)| n == var)
            .map(|(_, t)| t.clone())
            .unwrap_or(PyType::Any);
        match ty.base_name() {
            "int" | "float" => format!("total = {var} + {var}"),
            "str" => format!("print({var}.lower())"),
            _ => format!("print({var})"),
        }
    }

    /// Emits one function and registers its signature.
    fn function(&mut self, file: &str, fn_index: usize, out: &mut String) -> Vec<InjectedError> {
        let mut errors = Vec::new();
        let n_params = self.rng.gen_range(1..=3);
        let mut env = Env::default();
        let mut params: Vec<(String, PyType)> = Vec::new();
        let mut param_texts: Vec<String> = Vec::new();
        for _ in 0..n_params {
            let idx = self.universe.sample(self.rng);
            let profile = self.universe.profile(idx).clone();
            let name = self.fresh_name(&profile, &env);
            env.add(&name, profile.ty.clone());
            params.push((name.clone(), profile.ty.clone()));
            if self.rng.gen_bool(self.config.annotation_prob) {
                let annotated_ty = if self.rng.gen_bool(self.config.error_rate) {
                    let wrong = confusable(&profile.ty);
                    errors.push(InjectedError {
                        symbol_name: name.clone(),
                        true_type: profile.ty.clone(),
                        wrong_type: wrong.clone(),
                        file: file.to_string(),
                    });
                    wrong
                } else {
                    profile.ty.clone()
                };
                param_texts.push(format!("{name}: {annotated_ty}"));
            } else {
                param_texts.push(name.clone());
            }
        }
        // Return type.
        let ret_idx = self.universe.sample(self.rng);
        let ret = self.universe.profile(ret_idx).ty.clone();
        let verbs = [
            "build", "load", "compute", "update", "merge", "select", "format", "resolve",
        ];
        let verb = self.pick(&verbs);
        let noun = params
            .first()
            .map(|(n, _)| n.split('_').next().unwrap_or("value").to_string())
            .unwrap_or_else(|| "value".to_string());
        let fname = format!("{verb}_{noun}_{fn_index}");
        let ret_annotation = if self.rng.gen_bool(self.config.annotation_prob) {
            format!(" -> {ret}")
        } else {
            String::new()
        };
        out.push_str(&format!(
            "def {fname}({}){}:\n",
            param_texts.join(", "),
            ret_annotation
        ));
        // Body.
        let n_stmts = self.rng.gen_range(2..=4);
        for _ in 0..n_stmts {
            self.statement(&mut env, "    ", out);
        }
        let ret_expr = self.expr_of(&ret, &env, 0);
        out.push_str(&format!("    return {ret_expr}\n\n\n"));
        self.fns.push(FnSig {
            name: fname,
            params,
            ret,
        });
        errors
    }

    /// Emits a class definition for a user type.
    fn class(&mut self, class_name: &str, out: &mut String) {
        // Two typed fields drawn from the head of the universe.
        let f1 = self.universe.profile(self.rng.gen_range(0..4)).clone();
        let f2 = self.universe.profile(self.rng.gen_range(0..4)).clone();
        let mut env = Env::default();
        let n1 = self.fresh_name(&f1, &env);
        env.add(&n1, f1.ty.clone());
        let n2 = self.fresh_name(&f2, &env);
        env.add(&n2, f2.ty.clone());
        let d1 = self.literal_of(&f1.ty, &env, 0);
        let d2 = self.literal_of(&f2.ty, &env, 0);
        out.push_str(&format!(
            "class {class_name}:\n    def __init__(self, {n1}: {} = {d1}, {n2}: {} = {d2}) -> None:\n        self.{n1} = {n1}\n        self.{n2} = {n2}\n",
            f1.ty, f2.ty
        ));
        // One getter method.
        out.push_str(&format!(
            "\n    def get_{n1}(self) -> {}:\n        return self.{n1}\n\n\n",
            f1.ty
        ));
    }

    fn file(&mut self, index: usize, owned_classes: &[&str]) -> GeneratedFile {
        let name = format!("repo_{:02}/module_{index:03}.py", index % 20);
        let mut source = String::new();
        source.push_str(
            "from typing import Dict, List, Optional, Set, Tuple, Iterable, Callable\n\n\n",
        );
        let mut errors = Vec::new();
        for class_name in owned_classes {
            self.class(class_name, &mut source);
        }
        let (lo, hi) = self.config.functions_per_file;
        let n_fns = self.rng.gen_range(lo..=hi);
        for f in 0..n_fns {
            errors.extend(self.function(&name, f, &mut source));
        }
        GeneratedFile {
            name,
            source,
            injected_errors: errors,
            is_duplicate: false,
        }
    }
}

/// A plausible-but-wrong type for annotation-error injection: the
/// confusions the paper observes in the wild (int↔float, str↔bytes,
/// `T`↔`Optional[T]`, `T`↔`List[T]`).
pub fn confusable(ty: &PyType) -> PyType {
    match ty.base_name() {
        "int" => PyType::named("float"),
        "float" => PyType::named("int"),
        "str" => PyType::named("bytes"),
        "bytes" => PyType::named("str"),
        "bool" => PyType::named("int"),
        "List" => match ty {
            PyType::Named { args, .. } if !args.is_empty() => args[0].clone(),
            _ => PyType::named("str"),
        },
        "Union" => match ty {
            // Optional[T] (or any union): drop the None / extra members.
            PyType::Union(members) => members
                .iter()
                .find(|m| **m != PyType::None)
                .cloned()
                .unwrap_or_else(|| PyType::named("str")),
            _ => PyType::named("str"),
        },
        _ => PyType::optional(ty.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typilus_pyast::parse;

    fn small_config() -> CorpusConfig {
        CorpusConfig {
            files: 20,
            seed: 3,
            ..CorpusConfig::default()
        }
    }

    #[test]
    fn every_generated_file_parses() {
        let corpus = generate(&small_config());
        assert_eq!(corpus.files.len(), 22); // 20 + 10% duplicates
        for f in &corpus.files {
            parse(&f.source).unwrap_or_else(|e| {
                panic!(
                    "generated file {} fails to parse: {e}\n{}",
                    f.name, f.source
                )
            });
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&small_config());
        let b = generate(&small_config());
        for (x, y) in a.files.iter().zip(&b.files) {
            assert_eq!(x.source, y.source);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&small_config());
        let b = generate(&CorpusConfig {
            seed: 99,
            ..small_config()
        });
        assert_ne!(a.files[0].source, b.files[0].source);
    }

    #[test]
    fn corpus_contains_annotations_and_symbols() {
        let corpus = generate(&small_config());
        let mut annotated = 0usize;
        let mut total = 0usize;
        for f in &corpus.files {
            let parsed = parse(&f.source).unwrap();
            let table = typilus_pyast::SymbolTable::build(&parsed.module);
            for s in table.annotatable_symbols() {
                total += 1;
                if s.annotation.is_some() {
                    annotated += 1;
                }
            }
        }
        assert!(total > 200, "too few symbols: {total}");
        assert!(
            annotated * 10 >= total * 2,
            "too few annotations: {annotated}/{total}"
        );
    }

    #[test]
    fn user_classes_are_defined_somewhere() {
        let corpus = generate(&small_config());
        let all_source: String = corpus.files.iter().map(|f| f.source.as_str()).collect();
        let classes = corpus.universe.user_classes();
        let defined = classes
            .iter()
            .filter(|c| all_source.contains(&format!("class {c}:")))
            .count();
        assert_eq!(defined, classes.len(), "all user classes must be declared");
    }

    #[test]
    fn error_injection_records_ground_truth() {
        let config = CorpusConfig {
            error_rate: 0.3,
            files: 10,
            seed: 5,
            ..CorpusConfig::default()
        };
        let corpus = generate(&config);
        let errors: Vec<&InjectedError> = corpus
            .files
            .iter()
            .flat_map(|f| f.injected_errors.iter())
            .collect();
        assert!(!errors.is_empty());
        for e in errors {
            assert_ne!(e.true_type, e.wrong_type);
        }
    }

    #[test]
    fn duplicates_flagged() {
        let corpus = generate(&small_config());
        let dups = corpus.files.iter().filter(|f| f.is_duplicate).count();
        assert_eq!(dups, 2);
    }

    #[test]
    fn confusable_types() {
        let int: PyType = "int".parse().unwrap();
        assert_eq!(confusable(&int).to_string(), "float");
        let ls: PyType = "List[str]".parse().unwrap();
        assert_eq!(confusable(&ls).to_string(), "str");
        let user: PyType = "TokenBuffer".parse().unwrap();
        assert_eq!(confusable(&user).to_string(), "Optional[TokenBuffer]");
    }

    #[test]
    fn rare_types_form_a_substantial_minority() {
        // Mirror of the paper's data section: ~32% of annotations are
        // rare. With a laptop-scale corpus we accept 15–60%.
        let config = CorpusConfig {
            files: 60,
            seed: 11,
            ..CorpusConfig::default()
        };
        let corpus = generate(&config);
        let mut counts: std::collections::HashMap<String, usize> = Default::default();
        for f in &corpus.files {
            let parsed = parse(&f.source).unwrap();
            let table = typilus_pyast::SymbolTable::build(&parsed.module);
            for s in table.annotatable_symbols() {
                if let Some(a) = &s.annotation {
                    *counts.entry(a.clone()).or_insert(0) += 1;
                }
            }
        }
        let total: usize = counts.values().sum();
        let threshold = 20usize; // scaled-down "common" cut
        let rare: usize = counts.values().filter(|&&c| c < threshold).copied().sum();
        let frac = rare as f64 / total as f64;
        assert!(
            (0.10..=0.70).contains(&frac),
            "rare fraction {frac:.2} out of expected band (total {total})"
        );
    }
}
