//! Corpus statistics, mirroring the "Data" paragraph of paper Sec. 6.

use crate::gen::Corpus;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use typilus_pyast::{parse, SymbolTable};

/// Summary statistics of a corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Number of files (after any dedup the caller applied).
    pub files: usize,
    /// Total annotatable symbols.
    pub symbols: usize,
    /// Symbols with a usable (non-`Any`, non-`None`) annotation.
    pub annotated: usize,
    /// Distinct annotation strings.
    pub distinct_types: usize,
    /// Fraction of the annotation mass held by the 10 most frequent types.
    pub top10_mass: f64,
    /// Fraction of annotations whose type occurs fewer than
    /// `rare_threshold` times.
    pub rare_fraction: f64,
    /// The threshold used for `rare_fraction`.
    pub rare_threshold: usize,
    /// Fraction of annotations that are parametric (`30%` in the paper).
    pub parametric_fraction: f64,
    /// Annotation counts per type, most frequent first.
    pub type_counts: Vec<(String, usize)>,
    /// Files that failed to parse, file name → parse error
    /// (`BTreeMap`, so reports over it are deterministic). These files
    /// contribute nothing to the counts above — but they are named,
    /// not silently dropped.
    pub unparseable: BTreeMap<String, String>,
}

/// Computes statistics over the (non-duplicate) files of a corpus.
///
/// `rare_threshold` is the "seen fewer than N times" cut — the paper
/// uses 100 at full scale; scaled corpora use a smaller cut.
pub fn corpus_stats(corpus: &Corpus, rare_threshold: usize) -> CorpusStats {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut symbols = 0usize;
    let mut annotated = 0usize;
    let mut parametric = 0usize;
    let mut files = 0usize;
    let mut unparseable: BTreeMap<String, String> = BTreeMap::new();
    for f in corpus.files.iter().filter(|f| !f.is_duplicate) {
        files += 1;
        let parsed = match parse(&f.source) {
            Ok(parsed) => parsed,
            Err(e) => {
                unparseable.insert(f.name.clone(), e.to_string());
                continue;
            }
        };
        let table = SymbolTable::build(&parsed.module);
        for s in table.annotatable_symbols() {
            symbols += 1;
            let Some(text) = &s.annotation else { continue };
            let Ok(ty) = text.parse::<typilus_types::PyType>() else {
                continue;
            };
            if ty.is_top() || ty == typilus_types::PyType::None {
                continue;
            }
            annotated += 1;
            if ty.is_parametric() {
                parametric += 1;
            }
            *counts.entry(ty.to_string()).or_insert(0) += 1;
        }
    }
    let mut type_counts: Vec<(String, usize)> = counts.into_iter().collect();
    type_counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let total: usize = type_counts.iter().map(|(_, c)| c).sum();
    let top10: usize = type_counts.iter().take(10).map(|(_, c)| c).sum();
    let rare: usize = type_counts
        .iter()
        .filter(|(_, c)| *c < rare_threshold)
        .map(|(_, c)| c)
        .sum();
    CorpusStats {
        files,
        symbols,
        annotated,
        distinct_types: type_counts.len(),
        top10_mass: ratio(top10, total),
        rare_fraction: ratio(rare, total),
        rare_threshold,
        parametric_fraction: ratio(parametric, annotated),
        type_counts,
        unparseable,
    }
}

fn ratio(a: usize, b: usize) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, CorpusConfig};

    #[test]
    fn stats_reflect_paper_shape() {
        let corpus = generate(&CorpusConfig {
            files: 60,
            seed: 4,
            ..CorpusConfig::default()
        });
        let stats = corpus_stats(&corpus, 20);
        assert!(stats.symbols > stats.annotated);
        assert!(stats.annotated > 300, "annotated = {}", stats.annotated);
        assert!(
            stats.distinct_types > 30,
            "distinct = {}",
            stats.distinct_types
        );
        // Head dominance and a fat tail, as in the paper's data section.
        assert!(stats.top10_mass > 0.35, "top10 = {}", stats.top10_mass);
        assert!(stats.rare_fraction > 0.1, "rare = {}", stats.rare_fraction);
        // ~30% parametric annotations in the paper; wide band here.
        assert!(
            (0.1..=0.7).contains(&stats.parametric_fraction),
            "parametric = {}",
            stats.parametric_fraction
        );
    }

    #[test]
    fn unparseable_files_are_counted_and_named() {
        let mut corpus = generate(&CorpusConfig {
            files: 6,
            seed: 3,
            ..CorpusConfig::default()
        });
        corpus.files[2].source = "def broken(:\n".to_string();
        let stats = corpus_stats(&corpus, 5);
        assert_eq!(stats.unparseable.len(), 1);
        let (name, error) = stats.unparseable.iter().next().unwrap();
        assert_eq!(name, &corpus.files[2].name);
        assert!(!error.is_empty());
        // The broken file still counts as a file, just contributes no
        // symbols.
        assert_eq!(stats.files, 6);
    }

    #[test]
    fn duplicates_excluded_from_stats() {
        let corpus = generate(&CorpusConfig {
            files: 10,
            duplicate_rate: 0.5,
            seed: 8,
            ..CorpusConfig::default()
        });
        let stats = corpus_stats(&corpus, 5);
        assert_eq!(stats.files, 10);
    }
}
