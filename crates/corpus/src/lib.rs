//! # typilus-corpus
//!
//! A deterministic synthetic corpus of annotated Python, standing in for
//! the paper's 600-repository GitHub dataset (unavailable offline). The
//! generator reproduces the statistical properties the evaluation
//! depends on — a Zipfian type distribution with a builtin head and a
//! user-defined-type tail, name/usage/type correlations, parametric
//! annotations, partially annotated files, planted annotation errors and
//! injected near-duplicates — plus the dedup tool, the 70-10-20 split
//! and the corpus statistics of the paper's Data section.
//!
//! ```
//! use typilus_corpus::{generate, CorpusConfig};
//!
//! let corpus = generate(&CorpusConfig { files: 5, ..CorpusConfig::default() });
//! assert!(corpus.files.len() >= 5);
//! assert!(corpus.files[0].source.contains("def "));
//! ```

#![warn(missing_docs)]

pub mod dedup;
pub mod gen;
pub mod split;
pub mod stats;
pub mod universe;

pub use dedup::{deduplicate, duplicate_count, DEFAULT_THRESHOLD};
pub use gen::{confusable, generate, Corpus, CorpusConfig, GeneratedFile, InjectedError};
pub use split::{split, split_with, Split};
pub use stats::{corpus_stats, CorpusStats};
pub use universe::{TypeProfile, Universe, UniverseConfig};
