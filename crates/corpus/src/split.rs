//! Train / validation / test splitting (the paper uses 70-10-20).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A three-way split of file indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Split {
    /// Training set indices.
    pub train: Vec<usize>,
    /// Validation set indices.
    pub valid: Vec<usize>,
    /// Test set indices.
    pub test: Vec<usize>,
}

/// Splits `n` items into 70% train / 10% valid / 20% test after a
/// seeded shuffle (the paper's proportions).
pub fn split(n: usize, seed: u64) -> Split {
    split_with(n, seed, 0.7, 0.1)
}

/// Splits with explicit train/valid fractions (test takes the rest).
///
/// # Panics
///
/// Panics if the fractions are negative or sum above 1.
pub fn split_with(n: usize, seed: u64, train_frac: f64, valid_frac: f64) -> Split {
    assert!(train_frac >= 0.0 && valid_frac >= 0.0 && train_frac + valid_frac <= 1.0);
    let mut indices: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    let train_end = (n as f64 * train_frac).round() as usize;
    let valid_end = train_end + (n as f64 * valid_frac).round() as usize;
    let valid_end = valid_end.min(n);
    Split {
        train: indices[..train_end.min(n)].to_vec(),
        valid: indices[train_end.min(n)..valid_end].to_vec(),
        test: indices[valid_end..].to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn partitions_cover_everything_once() {
        let s = split(100, 1);
        assert_eq!(s.train.len(), 70);
        assert_eq!(s.valid.len(), 10);
        assert_eq!(s.test.len(), 20);
        let all: HashSet<usize> = s
            .train
            .iter()
            .chain(&s.valid)
            .chain(&s.test)
            .copied()
            .collect();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(split(50, 9), split(50, 9));
        assert_ne!(split(50, 9), split(50, 10));
    }

    #[test]
    fn small_inputs() {
        let s = split(3, 0);
        assert_eq!(s.train.len() + s.valid.len() + s.test.len(), 3);
        let s = split(0, 0);
        assert!(s.train.is_empty() && s.valid.is_empty() && s.test.is_empty());
    }
}
