//! Near-duplicate detection and removal.
//!
//! The paper runs the deduplication tool of Allamanis (2019) and removes
//! more than 133k near-duplicate files before any experiment, keeping
//! one exemplar per duplicate cluster — skipping this step would leak
//! test data into training and inflate every metric. This module
//! reimplements the core of that tool: identifier-multiset Jaccard
//! similarity with a configurable threshold, clustering, one exemplar
//! kept per cluster.

use std::collections::HashMap;
use typilus_pyast::{tokenize, TokenKind};

/// Similarity threshold above which two files count as near-duplicates
/// (the published tool's default operating point).
pub const DEFAULT_THRESHOLD: f64 = 0.8;

/// The identifier multiset of a file, as sorted (token, count) pairs.
fn identifier_profile(source: &str) -> HashMap<String, usize> {
    let mut counts = HashMap::new();
    if let Ok(tokens) = tokenize(source) {
        for t in tokens {
            if t.kind == TokenKind::Name {
                *counts.entry(t.lexeme).or_insert(0) += 1;
            }
        }
    }
    counts
}

/// Multiset Jaccard similarity of two identifier profiles.
fn jaccard(a: &HashMap<String, usize>, b: &HashMap<String, usize>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut intersection = 0usize;
    let mut union = 0usize;
    // lint: allow(D1) — integer min/max sums are commutative-exact, so
    // visit order cannot change the result
    for (k, &ca) in a {
        let cb = b.get(k).copied().unwrap_or(0);
        intersection += ca.min(cb);
        union += ca.max(cb);
    }
    // lint: allow(D1) — integer sum over the complement; order-free
    for (k, &cb) in b {
        if !a.contains_key(k) {
            union += cb;
        }
    }
    if union == 0 {
        return 1.0;
    }
    intersection as f64 / union as f64
}

/// Clusters near-duplicate sources and returns the indices to *keep*
/// (one exemplar — the first — per cluster), in the original order.
pub fn deduplicate(sources: &[&str], threshold: f64) -> Vec<usize> {
    let profiles: Vec<HashMap<String, usize>> =
        sources.iter().map(|s| identifier_profile(s)).collect();
    let mut keep: Vec<usize> = Vec::new();
    'files: for (i, profile) in profiles.iter().enumerate() {
        for &kept in &keep {
            if jaccard(profile, &profiles[kept]) >= threshold {
                continue 'files; // duplicate of an already-kept exemplar
            }
        }
        keep.push(i);
    }
    keep
}

/// Number of files that `deduplicate` would remove.
pub fn duplicate_count(sources: &[&str], threshold: f64) -> usize {
    sources.len() - deduplicate(sources, threshold).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: &str = "def add(count: int) -> int:\n    total = count + 1\n    return total\n";
    // Same identifiers, one rename: high similarity.
    const A2: &str = "def add(count: int) -> int:\n    total = count + 2\n    return total\n";
    const B: &str =
        "def greet(name: str) -> str:\n    message = name.upper()\n    return message\n";

    #[test]
    fn exact_duplicates_removed() {
        let keep = deduplicate(&[A, A, B], DEFAULT_THRESHOLD);
        assert_eq!(keep, vec![0, 2]);
    }

    #[test]
    fn near_duplicates_removed() {
        let keep = deduplicate(&[A, A2, B], DEFAULT_THRESHOLD);
        assert_eq!(keep, vec![0, 2]);
    }

    #[test]
    fn distinct_files_kept() {
        let keep = deduplicate(&[A, B], DEFAULT_THRESHOLD);
        assert_eq!(keep, vec![0, 1]);
    }

    #[test]
    fn generated_duplicates_are_caught() {
        use crate::gen::{generate, CorpusConfig};
        let corpus = generate(&CorpusConfig {
            files: 15,
            duplicate_rate: 0.4,
            seed: 2,
            ..CorpusConfig::default()
        });
        let sources: Vec<&str> = corpus.files.iter().map(|f| f.source.as_str()).collect();
        let removed = duplicate_count(&sources, DEFAULT_THRESHOLD);
        let injected = corpus.files.iter().filter(|f| f.is_duplicate).count();
        assert!(
            removed >= injected,
            "dedup removed {removed}, injected {injected}"
        );
    }

    #[test]
    fn raised_threshold_keeps_looser_matches() {
        // C shares most identifiers with A but adds a new one, so its
        // similarity is below 1 and a maximal threshold keeps both.
        const C: &str =
            "def add(count: int) -> int:\n    total = count + 1\n    bonus = total\n    return bonus\n";
        let keep = deduplicate(&[A, C], 1.0);
        assert_eq!(keep.len(), 2);
        // At the default threshold they still count as near-duplicates.
        let keep = deduplicate(&[A, C], 0.6);
        assert_eq!(keep.len(), 1);
    }

    #[test]
    fn jaccard_properties() {
        let pa = identifier_profile(A);
        let pb = identifier_profile(B);
        assert!((jaccard(&pa, &pa) - 1.0).abs() < 1e-9);
        assert_eq!(jaccard(&pa, &pb), jaccard(&pb, &pa));
        assert!(jaccard(&pa, &pb) < 0.3);
    }
}
