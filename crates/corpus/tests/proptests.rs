//! Property-based tests of the corpus generator: every configuration in
//! a broad band must yield parseable, analysable, type-consistent files.

use proptest::prelude::*;
use typilus_corpus::{generate, split_with, CorpusConfig, UniverseConfig};
use typilus_pyast::{parse, SymbolTable};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generated_corpora_parse_and_bind(
        seed in 0u64..10_000,
        files in 1usize..8,
        annotation_prob in 0.0f64..1.0,
        error_rate in 0.0f64..0.5,
    ) {
        let corpus = generate(&CorpusConfig {
            files,
            seed,
            annotation_prob,
            error_rate,
            duplicate_rate: 0.0,
            ..CorpusConfig::default()
        });
        prop_assert_eq!(corpus.files.len(), files);
        for f in &corpus.files {
            let parsed = parse(&f.source)
                .map_err(|e| TestCaseError::fail(format!("{}: {e}\n{}", f.name, f.source)))?;
            let table = SymbolTable::build(&parsed.module);
            prop_assert!(!table.is_empty(), "file {} has no symbols", f.name);
            // Every recorded annotation parses as a type.
            for s in table.symbols() {
                if let Some(a) = &s.annotation {
                    prop_assert!(
                        a.parse::<typilus_types::PyType>().is_ok(),
                        "unparsable annotation {a:?} in {}",
                        f.name
                    );
                }
            }
        }
    }

    #[test]
    fn universe_scales(user_types in 1usize..200) {
        let u = typilus_corpus::Universe::build(&UniverseConfig {
            user_types,
            zipf_exponent: 1.1,
        });
        prop_assert!(u.len() >= 25 + user_types);
        prop_assert_eq!(u.user_classes().len(), user_types);
    }

    #[test]
    fn split_is_a_partition(n in 0usize..500, seed in 0u64..1000, train in 0.0f64..1.0) {
        let valid = (1.0 - train) / 3.0;
        let s = split_with(n, seed, train, valid);
        let mut all: Vec<usize> =
            s.train.iter().chain(&s.valid).chain(&s.test).copied().collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..n).collect();
        prop_assert_eq!(all, expected);
    }
}
