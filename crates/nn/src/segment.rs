//! Blocked segment reductions (`segment_sum` / `segment_mean` /
//! `segment_max`) and their backward kernels.
//!
//! The GNN's aggregation steps reduce node rows into per-segment rows
//! (and scatter gradients back) with segment ids in arbitrary order, so
//! the naive loops touch a different output row on almost every input
//! row. The fast path builds a [`SegmentPlan`] once per op — a stable
//! counting sort of row indices by segment id — and then streams each
//! segment's rows in one run: the forward accumulators stay cache-hot,
//! and the backward pass reads each segment's gradient row exactly once
//! while it is resident.
//!
//! Bit-compatibility: the plan is a *stable* sort, so within any one
//! segment the rows are visited in ascending original index — the exact
//! accumulation (and comparison) order of the reference loops in
//! [`reference`]. Regrouping work across segments never reorders the
//! float operations that land in any single output element, so every
//! kernel here is bitwise identical to its reference twin
//! (`kernel_bitident` proves it property-wise).

use crate::arena;
use crate::tensor::Tensor;

/// Rows grouped by segment id: a stable counting sort of `0..rows`
/// keyed by segment, in CSR-like `order`/`offsets` form. Built once per
/// op in fast kernel mode and stored on the tape node so the backward
/// pass reuses it.
#[derive(Debug, Clone)]
pub struct SegmentPlan {
    /// Row indices sorted by segment id, ascending within each segment.
    order: Vec<usize>,
    /// `offsets[s]..offsets[s + 1]` bounds segment `s` in `order`.
    offsets: Vec<usize>,
}

impl SegmentPlan {
    /// Groups `0..segments.len()` by segment id (stable, O(rows +
    /// segments)).
    ///
    /// # Panics
    ///
    /// Panics if an id is `>= num_segments`.
    pub fn build(segments: &[usize], num_segments: usize) -> SegmentPlan {
        let mut offsets = vec![0usize; num_segments + 1];
        for &s in segments {
            assert!(s < num_segments, "segment id {s} out of range");
            offsets[s + 1] += 1;
        }
        for i in 1..=num_segments {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor = offsets.clone();
        let mut order = vec![0usize; segments.len()];
        for (i, &s) in segments.iter().enumerate() {
            order[cursor[s]] = i;
            cursor[s] += 1;
        }
        SegmentPlan { order, offsets }
    }

    /// Number of segments the plan was built for.
    pub fn num_segments(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The rows of segment `s`, in ascending original index.
    pub fn rows(&self, s: usize) -> &[usize] {
        &self.order[self.offsets[s]..self.offsets[s + 1]]
    }
}

/// Blocked `out[s] = Σ_{i: seg[i]=s} a[i]`: one segment's accumulator
/// row at a time, its member rows streamed in ascending index.
pub fn sum_blocked(a: &Tensor, plan: &SegmentPlan) -> Tensor {
    let mut out = arena::zeros(plan.num_segments(), a.cols());
    for s in 0..plan.num_segments() {
        let orow = out.row_mut(s);
        for &i in plan.rows(s) {
            for (o, &x) in orow.iter_mut().zip(a.row(i)) {
                *o += x;
            }
        }
    }
    out
}

/// Blocked segment mean; like [`sum_blocked`] with the reference's
/// scaling rule (rows divided only when a segment has more than one).
pub fn mean_blocked(a: &Tensor, plan: &SegmentPlan) -> Tensor {
    let mut out = sum_blocked(a, plan);
    for s in 0..plan.num_segments() {
        let n = plan.rows(s).len();
        if n > 1 {
            let inv = 1.0 / n as f32;
            for o in out.row_mut(s) {
                *o *= inv;
            }
        }
    }
    out
}

/// Blocked segment elementwise max, with the reference's exact tie and
/// NaN semantics: strict `>` from `-inf` in ascending row order, so
/// ties keep the earliest row and NaN never wins; columns with no
/// winner (empty segment or all-NaN) produce `0.0` and
/// `argmax = usize::MAX`.
pub fn max_blocked(a: &Tensor, plan: &SegmentPlan) -> (Tensor, Vec<usize>) {
    let cols = a.cols();
    let num = plan.num_segments();
    let mut argmax = vec![usize::MAX; num * cols];
    let mut out = arena::full(num, cols, f32::NEG_INFINITY);
    for s in 0..num {
        let orow = out.row_mut(s);
        let arow_max = &mut argmax[s * cols..(s + 1) * cols];
        for &i in plan.rows(s) {
            for ((o, am), &x) in orow.iter_mut().zip(arow_max.iter_mut()).zip(a.row(i)) {
                if x > *o {
                    *o = x;
                    *am = i;
                }
            }
        }
        for (o, &am) in orow.iter_mut().zip(arow_max.iter()) {
            if am == usize::MAX {
                *o = 0.0;
            }
        }
    }
    (out, argmax)
}

/// Blocked backward of [`sum_blocked`]: each segment's gradient row is
/// read once, while resident, and copied to every member row — values
/// are pure copies, so the scatter is bitwise identical to the
/// reference gather.
pub fn sum_backward_blocked(g: &Tensor, plan: &SegmentPlan, rows: usize) -> Tensor {
    let mut ga = arena::zeros(rows, g.cols());
    for s in 0..plan.num_segments() {
        let grow = g.row(s);
        for &i in plan.rows(s) {
            ga.row_mut(i).copy_from_slice(grow);
        }
    }
    ga
}

/// Blocked backward of [`mean_blocked`]: like [`sum_backward_blocked`]
/// with each segment's gradient row scaled by `1/count` (the same
/// single multiplication per element as the reference).
pub fn mean_backward_blocked(g: &Tensor, plan: &SegmentPlan, rows: usize) -> Tensor {
    let mut ga = arena::zeros(rows, g.cols());
    for s in 0..plan.num_segments() {
        let members = plan.rows(s);
        let inv = 1.0 / members.len().max(1) as f32;
        let grow = g.row(s);
        for &i in members {
            for (o, &x) in ga.row_mut(i).iter_mut().zip(grow) {
                *o = x * inv;
            }
        }
    }
    ga
}

/// The pre-blocking segment kernels, kept callable so naive kernel mode
/// and the bit-equivalence property tests can compare against them
/// directly (the same role [`crate::tensor::reference`] plays for the
/// matmuls).
pub mod reference {
    use crate::arena;
    use crate::tensor::Tensor;

    /// Row-order segment sum.
    ///
    /// # Panics
    ///
    /// Panics if an id is `>= num_segments`.
    pub fn sum(a: &Tensor, segments: &[usize], num_segments: usize) -> Tensor {
        let mut out = arena::zeros(num_segments, a.cols());
        for (i, &s) in segments.iter().enumerate() {
            assert!(s < num_segments, "segment id {s} out of range");
            for (o, &x) in out.row_mut(s).iter_mut().zip(a.row(i)) {
                *o += x;
            }
        }
        out
    }

    /// Row-order segment mean; empty segments produce zero rows.
    ///
    /// # Panics
    ///
    /// Panics if an id is `>= num_segments`.
    pub fn mean(a: &Tensor, segments: &[usize], num_segments: usize) -> Tensor {
        let mut out = arena::zeros(num_segments, a.cols());
        let mut counts = vec![0usize; num_segments];
        for (i, &s) in segments.iter().enumerate() {
            assert!(s < num_segments, "segment id {s} out of range");
            counts[s] += 1;
            for (o, &x) in out.row_mut(s).iter_mut().zip(a.row(i)) {
                *o += x;
            }
        }
        for (s, &n) in counts.iter().enumerate() {
            if n > 1 {
                let inv = 1.0 / n as f32;
                for o in out.row_mut(s) {
                    *o *= inv;
                }
            }
        }
        out
    }

    /// Row-order segment elementwise max with argmax (strict `>` from
    /// `-inf`; ties keep the earliest row; NaN never wins; winnerless
    /// columns produce `0.0` / `usize::MAX`).
    ///
    /// # Panics
    ///
    /// Panics if an id is `>= num_segments`.
    pub fn max(a: &Tensor, segments: &[usize], num_segments: usize) -> (Tensor, Vec<usize>) {
        let cols = a.cols();
        let mut argmax = vec![usize::MAX; num_segments * cols];
        let mut out = arena::full(num_segments, cols, f32::NEG_INFINITY);
        for (i, &s) in segments.iter().enumerate() {
            assert!(s < num_segments, "segment id {s} out of range");
            for c in 0..cols {
                if a.get(i, c) > out.get(s, c) {
                    out.set(s, c, a.get(i, c));
                    argmax[s * cols + c] = i;
                }
            }
        }
        for s in 0..num_segments {
            for c in 0..cols {
                if argmax[s * cols + c] == usize::MAX {
                    out.set(s, c, 0.0);
                }
            }
        }
        (out, argmax)
    }

    /// Row-order backward of [`sum`]: gather `g[seg[i]]` into row `i`.
    pub fn sum_backward(g: &Tensor, segments: &[usize], rows: usize) -> Tensor {
        debug_assert_eq!(segments.len(), rows);
        let mut buf = arena::take(rows * g.cols());
        for &s in segments {
            buf.extend_from_slice(g.row(s));
        }
        Tensor::from_vec(rows, g.cols(), buf)
    }

    /// Row-order backward of [`mean`]: the gathered rows scaled by
    /// `1/count`.
    pub fn mean_backward(
        g: &Tensor,
        segments: &[usize],
        num_segments: usize,
        rows: usize,
    ) -> Tensor {
        debug_assert_eq!(segments.len(), rows);
        let mut counts = vec![0usize; num_segments];
        for &s in segments {
            counts[s] += 1;
        }
        let mut buf = arena::take(rows * g.cols());
        for &s in segments {
            let inv = 1.0 / counts[s].max(1) as f32;
            buf.extend(g.row(s).iter().map(|&x| x * inv));
        }
        Tensor::from_vec(rows, g.cols(), buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_groups_rows_stably() {
        let plan = SegmentPlan::build(&[2, 0, 2, 1, 0, 2], 4);
        assert_eq!(plan.num_segments(), 4);
        assert_eq!(plan.rows(0), &[1, 4]);
        assert_eq!(plan.rows(1), &[3]);
        assert_eq!(plan.rows(2), &[0, 2, 5]);
        assert_eq!(plan.rows(3), &[] as &[usize]);
    }

    #[test]
    #[should_panic(expected = "segment id 3 out of range")]
    fn plan_rejects_out_of_range_ids() {
        SegmentPlan::build(&[0, 3], 3);
    }

    #[test]
    fn blocked_kernels_match_reference_bitwise() {
        let a = Tensor::from_vec(
            5,
            2,
            vec![0.1, -2.0, 3.5, 0.25, -0.75, 1.5, 2.25, -0.125, 0.0, -0.0],
        );
        let segments = [1, 0, 1, 2, 1];
        let plan = SegmentPlan::build(&segments, 4);

        let sum = sum_blocked(&a, &plan);
        let sum_ref = reference::sum(&a, &segments, 4);
        assert_eq!(sum.as_slice(), sum_ref.as_slice());

        let mean = mean_blocked(&a, &plan);
        let mean_ref = reference::mean(&a, &segments, 4);
        assert_eq!(mean.as_slice(), mean_ref.as_slice());

        let (max, argmax) = max_blocked(&a, &plan);
        let (max_ref, argmax_ref) = reference::max(&a, &segments, 4);
        assert_eq!(max.as_slice(), max_ref.as_slice());
        assert_eq!(argmax, argmax_ref);

        let g = Tensor::from_vec(4, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let gs = sum_backward_blocked(&g, &plan, 5);
        let gs_ref = reference::sum_backward(&g, &segments, 5);
        assert_eq!(gs.as_slice(), gs_ref.as_slice());

        let gm = mean_backward_blocked(&g, &plan, 5);
        let gm_ref = reference::mean_backward(&g, &segments, 4, 5);
        assert_eq!(gm.as_slice(), gm_ref.as_slice());
    }
}
