//! Define-by-run reverse-mode automatic differentiation.
//!
//! A [`Tape`] records every operation applied to [`Var`] handles; calling
//! [`Tape::backward`] on a scalar loss walks the record in reverse and
//! returns gradients for every parameter that participated. Tapes are
//! cheap and rebuilt per training step, which is what lets the GNN unroll
//! a different message-passing structure for every input graph.
//!
//! Every tensor the tape materialises — op outputs, parameter
//! snapshots, gradient temporaries — is drawn from the thread-local
//! [`crate::arena`], and [`Tape::reset`] (or dropping the tape) returns
//! the storage for the next step, so a steady-state training loop stops
//! allocating after the first iteration. The fused ops
//! ([`Tape::matmul_bias`], [`Tape::add2_row_sigmoid`],
//! [`Tape::add2_row_tanh`], [`Tape::gru_combine`]) record one node where
//! the naive composition records three to four, skipping the
//! intermediate tensors entirely; their forward values and backward
//! accumulation order replicate the unfused composition exactly, so
//! results stay bit-identical (`DESIGN.md` §9). In
//! [`KernelMode::Naive`](crate::mode::KernelMode) the fused entry points
//! record the unfused composition instead, which is what `bench_nn`
//! compares against.

use crate::arena;
use crate::mode::{kernel_mode, KernelMode};
use crate::params::{Gradients, ParamId, ParamSet};
use crate::profile::{prof, run_op, OpKind};
use crate::segment::{self, SegmentPlan};
use crate::tensor::Tensor;

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug, Clone)]
#[allow(dead_code)] // some payloads are forward-only (kept for Debug clarity)
enum Op {
    /// Constant input; no gradient.
    Input,
    /// Read of a trainable parameter.
    Param(ParamId),
    Matmul(Var, Var),
    /// `a · bᵀ`
    MatmulT(Var, Var),
    /// Fused `x·W + b` (one node instead of matmul + add_row).
    MatmulBias(Var, Var, Var),
    Transpose(Var),
    Add(Var, Var),
    /// `[n,m] + [1,m]` broadcast over rows.
    AddRow(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Scale(Var, f32),
    AddScalar(Var, f32),
    Sigmoid(Var),
    Exp(Var),
    Tanh(Var),
    Relu(Var),
    /// Fused `σ(a + b + row)` — a GRU gate in one node.
    AddRowSigmoid(Var, Var, Var),
    /// Fused `tanh(a + b + row)` — the GRU candidate in one node.
    AddRowTanh(Var, Var, Var),
    /// Fused GRU state blend `h - z⊙h + z⊙cand`.
    GruCombine(Var, Var, Var),
    /// Row gather: `out[i] = a[indices[i]]`.
    Gather(Var, Vec<usize>),
    /// Segment sum: `out[s] = Σ_{i: seg[i]=s} a[i]`. Fast kernel mode
    /// carries the forward pass's [`SegmentPlan`] so the backward
    /// scatter streams contiguously too; `None` in naive mode.
    SegmentSum(Var, Vec<usize>, usize, Option<SegmentPlan>),
    /// Segment mean (plan as in [`Op::SegmentSum`]).
    SegmentMean(Var, Vec<usize>, usize, Option<SegmentPlan>),
    /// Segment elementwise max; `argmax[s*cols+c]` = winning row or usize::MAX.
    SegmentMax(Var, Vec<usize>, usize, Vec<usize>),
    /// Pairwise L1 distances between rows: `out[i,j] = ||a[i]-a[j]||₁`.
    PairwiseL1(Var),
    /// Row-wise log-softmax.
    LogSoftmax(Var),
    /// Row-wise standardisation (LayerNorm without affine parameters).
    RowNorm(Var),
    /// Negative log likelihood of per-row labels, averaged: `1×1`.
    NllLoss(Var, Vec<usize>),
    /// Elementwise multiplication by a constant mask.
    MulConst(Var, Tensor),
    /// Sum of all elements: `1×1`.
    SumAll(Var),
    /// Vertical concatenation of rows.
    ConcatRows(Vec<Var>),
    /// Horizontal concatenation of columns.
    ConcatCols(Vec<Var>),
}

struct Node {
    value: Tensor,
    op: Op,
}

/// Elementwise map into an arena-backed tensor.
fn pooled_map(t: &Tensor, f: impl Fn(f32) -> f32) -> Tensor {
    let mut buf = arena::take(t.len());
    buf.extend(t.as_slice().iter().map(|&x| f(x)));
    Tensor::from_vec(t.rows(), t.cols(), buf)
}

/// Elementwise zip of two same-shaped tensors into an arena-backed one.
fn pooled_zip(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    debug_assert_eq!(a.shape(), b.shape());
    let mut buf = arena::take(a.len());
    buf.extend(
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(&x, &y)| f(x, y)),
    );
    Tensor::from_vec(a.rows(), a.cols(), buf)
}

/// A gradient tape over a [`ParamSet`].
pub struct Tape<'p> {
    params: &'p ParamSet,
    nodes: Vec<Node>,
}

impl<'p> Tape<'p> {
    /// Creates a fresh tape reading parameters from `params`.
    pub fn new(params: &'p ParamSet) -> Tape<'p> {
        Tape {
            params,
            nodes: Vec::new(),
        }
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// The current value of a variable.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Clears the tape and returns every node's storage to the arena,
    /// so the next step's ops reuse it instead of allocating. All
    /// outstanding [`Var`]s are invalidated. Dropping the tape does the
    /// same; `reset` just makes the reuse explicit inside a loop.
    pub fn reset(&mut self) {
        for node in self.nodes.drain(..) {
            let Node { value, op } = node;
            if let Op::MulConst(_, mask) = op {
                arena::recycle(mask);
            }
            arena::recycle(value);
        }
    }

    // ---- sources ---------------------------------------------------------

    /// Records a constant input (no gradient flows into it).
    pub fn input(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Input)
    }

    /// Records a read of parameter `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the tape's parameter set.
    pub fn param(&mut self, id: ParamId) -> Var {
        let value = arena::copy_of(self.params.get(id));
        self.push(value, Op::Param(id))
    }

    // ---- arithmetic -------------------------------------------------------

    /// `a · b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        let v = run_op(OpKind::Matmul, || va.matmul(vb));
        self.push(v, Op::Matmul(a, b))
    }

    /// `a · bᵀ`.
    pub fn matmul_t(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        let v = run_op(OpKind::MatmulT, || va.matmul_t(vb));
        self.push(v, Op::MatmulT(a, b))
    }

    /// Fused `x·W + b` — one node for a whole [`crate::Linear`] apply;
    /// the matmul output is biased in place, skipping the intermediate.
    /// In naive kernel mode this records the unfused composition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or if `b` is not `1×m`.
    pub fn matmul_bias(&mut self, x: Var, w: Var, b: Var) -> Var {
        if kernel_mode() == KernelMode::Naive {
            let y = self.matmul(x, w);
            return self.add_row(y, b);
        }
        let (vx, vw, vb) = (self.value(x), self.value(w), self.value(b));
        assert_eq!(vb.rows(), 1, "matmul_bias needs a 1×m bias row");
        assert_eq!(vw.cols(), vb.cols(), "matmul_bias width mismatch");
        let v = run_op(OpKind::MatmulBias, || {
            let mut out = vx.matmul(vw);
            let brow = vb.as_slice();
            for r in 0..out.rows() {
                for (o, &bv) in out.row_mut(r).iter_mut().zip(brow) {
                    *o += bv;
                }
            }
            out
        });
        self.push(v, Op::MatmulBias(x, w, b))
    }

    /// `aᵀ`.
    pub fn transpose(&mut self, a: Var) -> Var {
        let va = self.value(a);
        let v = run_op(OpKind::Transpose, || va.transposed());
        self.push(v, Op::Transpose(a))
    }

    /// Elementwise `a + b` (same shape).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(va.shape(), vb.shape(), "add shape mismatch");
        let v = run_op(OpKind::Elementwise, || pooled_zip(va, vb, |x, y| x + y));
        self.push(v, Op::Add(a, b))
    }

    /// `a + row` where `row` is `1×m`, broadcast over the rows of `a`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ or `row` is not a single row.
    pub fn add_row(&mut self, a: Var, row: Var) -> Var {
        let (va, vr) = (self.value(a), self.value(row));
        assert_eq!(vr.rows(), 1, "add_row needs a 1×m row");
        assert_eq!(va.cols(), vr.cols(), "add_row width mismatch");
        let v = run_op(OpKind::Elementwise, || {
            let mut buf = arena::take(va.len());
            let rrow = vr.as_slice();
            for r in 0..va.rows() {
                buf.extend(va.row(r).iter().zip(rrow).map(|(&x, &y)| x + y));
            }
            Tensor::from_vec(va.rows(), va.cols(), buf)
        });
        self.push(v, Op::AddRow(a, row))
    }

    /// Elementwise `a - b`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(va.shape(), vb.shape(), "sub shape mismatch");
        let v = run_op(OpKind::Elementwise, || pooled_zip(va, vb, |x, y| x - y));
        self.push(v, Op::Sub(a, b))
    }

    /// Elementwise `a * b`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(va.shape(), vb.shape(), "mul shape mismatch");
        let v = run_op(OpKind::Elementwise, || pooled_zip(va, vb, |x, y| x * y));
        self.push(v, Op::Mul(a, b))
    }

    /// `a * c` for a scalar constant `c`.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let va = self.value(a);
        let v = run_op(OpKind::Elementwise, || pooled_map(va, |x| x * c));
        self.push(v, Op::Scale(a, c))
    }

    /// `a + c` elementwise for a scalar constant `c`.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let va = self.value(a);
        let v = run_op(OpKind::Elementwise, || pooled_map(va, |x| x + c));
        self.push(v, Op::AddScalar(a, c))
    }

    // ---- nonlinearities ----------------------------------------------------

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let va = self.value(a);
        let v = run_op(OpKind::Elementwise, || {
            pooled_map(va, |x| 1.0 / (1.0 + (-x).exp()))
        });
        self.push(v, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let va = self.value(a);
        let v = run_op(OpKind::Elementwise, || pooled_map(va, f32::tanh));
        self.push(v, Op::Tanh(a))
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let va = self.value(a);
        let v = run_op(OpKind::Elementwise, || pooled_map(va, f32::exp));
        self.push(v, Op::Exp(a))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let va = self.value(a);
        let v = run_op(OpKind::Elementwise, || pooled_map(va, |x| x.max(0.0)));
        self.push(v, Op::Relu(a))
    }

    /// Fused `σ(a + b + row)` — one node for a whole GRU gate
    /// (`tape.sigmoid(tape.add_row(tape.add(a, b), row))`), skipping
    /// both intermediates. In naive kernel mode this records the
    /// unfused composition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or if `row` is not `1×m`.
    pub fn add2_row_sigmoid(&mut self, a: Var, b: Var, row: Var) -> Var {
        if kernel_mode() == KernelMode::Naive {
            let s = self.add(a, b);
            let s = self.add_row(s, row);
            return self.sigmoid(s);
        }
        let v = self.fused_gate(a, b, row, |x| 1.0 / (1.0 + (-x).exp()));
        self.push(v, Op::AddRowSigmoid(a, b, row))
    }

    /// Fused `tanh(a + b + row)` — the GRU candidate state in one node.
    /// In naive kernel mode this records the unfused composition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or if `row` is not `1×m`.
    pub fn add2_row_tanh(&mut self, a: Var, b: Var, row: Var) -> Var {
        if kernel_mode() == KernelMode::Naive {
            let s = self.add(a, b);
            let s = self.add_row(s, row);
            return self.tanh(s);
        }
        let v = self.fused_gate(a, b, row, f32::tanh);
        self.push(v, Op::AddRowTanh(a, b, row))
    }

    /// Shared forward for the fused gates: `f((a + b) + row)`, with the
    /// additions associated exactly as in the unfused composition.
    fn fused_gate(&self, a: Var, b: Var, row: Var, f: impl Fn(f32) -> f32) -> Tensor {
        let (va, vb, vr) = (self.value(a), self.value(b), self.value(row));
        assert_eq!(va.shape(), vb.shape(), "add shape mismatch");
        assert_eq!(vr.rows(), 1, "add_row needs a 1×m row");
        assert_eq!(va.cols(), vr.cols(), "add_row width mismatch");
        run_op(OpKind::Fused, || {
            let mut buf = arena::take(va.len());
            let rrow = vr.as_slice();
            for r in 0..va.rows() {
                buf.extend(
                    va.row(r)
                        .iter()
                        .zip(vb.row(r))
                        .zip(rrow)
                        .map(|((&x, &y), &z)| f((x + y) + z)),
                );
            }
            Tensor::from_vec(va.rows(), va.cols(), buf)
        })
    }

    /// Fused GRU state blend `h' = h - z⊙h + z⊙cand` — one node for the
    /// four-op tail of a GRU step, skipping three intermediates. In
    /// naive kernel mode this records the unfused composition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn gru_combine(&mut self, z: Var, h: Var, cand: Var) -> Var {
        if kernel_mode() == KernelMode::Naive {
            let zh = self.mul(z, h);
            let zc = self.mul(z, cand);
            let keep = self.sub(h, zh);
            return self.add(keep, zc);
        }
        let (vz, vh, vc) = (self.value(z), self.value(h), self.value(cand));
        assert_eq!(vz.shape(), vh.shape(), "mul shape mismatch");
        assert_eq!(vz.shape(), vc.shape(), "mul shape mismatch");
        let v = run_op(OpKind::Fused, || {
            let mut buf = arena::take(vz.len());
            buf.extend(
                vz.as_slice()
                    .iter()
                    .zip(vh.as_slice())
                    .zip(vc.as_slice())
                    .map(|((&zv, &hv), &cv)| (hv - zv * hv) + zv * cv),
            );
            Tensor::from_vec(vz.rows(), vz.cols(), buf)
        });
        self.push(v, Op::GruCombine(z, h, cand))
    }

    // ---- structure ops -----------------------------------------------------

    /// Row gather: `out[i] = a[indices[i]]`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather(&mut self, a: Var, indices: &[usize]) -> Var {
        let va = self.value(a);
        let v = run_op(OpKind::Gather, || {
            let mut buf = arena::take(indices.len() * va.cols());
            for &idx in indices {
                assert!(idx < va.rows(), "gather index {idx} out of bounds");
                buf.extend_from_slice(va.row(idx));
            }
            Tensor::from_vec(indices.len(), va.cols(), buf)
        });
        self.push(v, Op::Gather(a, indices.to_vec()))
    }

    /// Segment sum: rows of `a` grouped by `segments`, summed per segment.
    ///
    /// # Panics
    ///
    /// Panics if `segments.len() != a.rows()` or an id `>= num_segments`.
    pub fn segment_sum(&mut self, a: Var, segments: &[usize], num_segments: usize) -> Var {
        let va = self.value(a);
        assert_eq!(segments.len(), va.rows(), "segment id per row required");
        let (v, plan) = match kernel_mode() {
            KernelMode::Fast => {
                let plan = SegmentPlan::build(segments, num_segments);
                let v = run_op(OpKind::Segment, || segment::sum_blocked(va, &plan));
                (v, Some(plan))
            }
            KernelMode::Naive => {
                let v = run_op(OpKind::Segment, || {
                    segment::reference::sum(va, segments, num_segments)
                });
                (v, None)
            }
        };
        self.push(v, Op::SegmentSum(a, segments.to_vec(), num_segments, plan))
    }

    /// Segment mean; empty segments produce zero rows.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Tape::segment_sum`].
    pub fn segment_mean(&mut self, a: Var, segments: &[usize], num_segments: usize) -> Var {
        let va = self.value(a);
        assert_eq!(segments.len(), va.rows(), "segment id per row required");
        let (v, plan) = match kernel_mode() {
            KernelMode::Fast => {
                let plan = SegmentPlan::build(segments, num_segments);
                let v = run_op(OpKind::Segment, || segment::mean_blocked(va, &plan));
                (v, Some(plan))
            }
            KernelMode::Naive => {
                let v = run_op(OpKind::Segment, || {
                    segment::reference::mean(va, segments, num_segments)
                });
                (v, None)
            }
        };
        self.push(v, Op::SegmentMean(a, segments.to_vec(), num_segments, plan))
    }

    /// Segment elementwise max; empty segments produce zero rows. This is
    /// the max-pooling aggregation the paper uses in its GGNN.
    ///
    /// Ties keep the earliest row (strict `>` comparison); NaN inputs
    /// never win a comparison, so a segment whose every entry is NaN in
    /// a column behaves like an empty segment for that column.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Tape::segment_sum`].
    pub fn segment_max(&mut self, a: Var, segments: &[usize], num_segments: usize) -> Var {
        let va = self.value(a);
        assert_eq!(segments.len(), va.rows(), "segment id per row required");
        let mut argmax = Vec::new();
        let v = match kernel_mode() {
            KernelMode::Fast => {
                let plan = SegmentPlan::build(segments, num_segments);
                run_op(OpKind::Segment, || {
                    let (out, am) = segment::max_blocked(va, &plan);
                    argmax = am;
                    out
                })
            }
            KernelMode::Naive => run_op(OpKind::Segment, || {
                let (out, am) = segment::reference::max(va, segments, num_segments);
                argmax = am;
                out
            }),
        };
        self.push(
            v,
            Op::SegmentMax(a, segments.to_vec(), num_segments, argmax),
        )
    }

    /// Pairwise L1 distance matrix between the rows of `a`.
    pub fn pairwise_l1(&mut self, a: Var) -> Var {
        let va = self.value(a);
        let n = va.rows();
        let v = run_op(OpKind::Reduce, || {
            let mut out = arena::zeros(n, n);
            for i in 0..n {
                for j in (i + 1)..n {
                    let d = Tensor::l1_row_distance(va.row(i), va.row(j));
                    out.set(i, j, d);
                    out.set(j, i, d);
                }
            }
            out
        });
        self.push(v, Op::PairwiseL1(a))
    }

    /// Row-wise log-softmax.
    pub fn log_softmax(&mut self, a: Var) -> Var {
        let va = self.value(a);
        let v = run_op(OpKind::Reduce, || {
            let mut out = arena::copy_of(va);
            for r in 0..out.rows() {
                let row = out.row_mut(r);
                let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let logsum = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln() + max;
                for x in row.iter_mut() {
                    *x -= logsum;
                }
            }
            out
        });
        self.push(v, Op::LogSoftmax(a))
    }

    /// Row-wise standardisation: each row is shifted to zero mean and
    /// scaled to unit variance (plus a small epsilon) — LayerNorm
    /// without learned affine parameters.
    pub fn row_norm(&mut self, a: Var) -> Var {
        let va = self.value(a);
        let v = run_op(OpKind::Reduce, || {
            let mut out = arena::copy_of(va);
            for r in 0..out.rows() {
                let row = out.row_mut(r);
                let n = row.len() as f32;
                let mean = row.iter().sum::<f32>() / n;
                let var = row.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n;
                let inv = 1.0 / (var + 1e-5).sqrt();
                for x in row.iter_mut() {
                    *x = (*x - mean) * inv;
                }
            }
            out
        });
        self.push(v, Op::RowNorm(a))
    }

    /// Mean negative log-likelihood of `labels` under row-wise
    /// log-probabilities `logp` (pair with [`Tape::log_softmax`]).
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != logp.rows()` or a label is out of range.
    pub fn nll_loss(&mut self, logp: Var, labels: &[usize]) -> Var {
        let v = self.value(logp);
        assert_eq!(labels.len(), v.rows(), "one label per row required");
        let mut total = 0.0;
        for (r, &l) in labels.iter().enumerate() {
            assert!(l < v.cols(), "label {l} out of range");
            total -= v.get(r, l);
        }
        let out = arena::full(1, 1, total / labels.len().max(1) as f32);
        self.push(out, Op::NllLoss(logp, labels.to_vec()))
    }

    /// Elementwise product with a constant mask (no gradient through the
    /// mask) — used to select loss terms without breaking differentiation.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul_const(&mut self, a: Var, mask: &Tensor) -> Var {
        let va = self.value(a);
        assert_eq!(va.shape(), mask.shape(), "mask shape mismatch");
        let v = run_op(OpKind::Elementwise, || pooled_zip(va, mask, |x, m| x * m));
        self.push(v, Op::MulConst(a, arena::copy_of(mask)))
    }

    /// Sum of all elements, as a `1×1` scalar.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let out = arena::full(1, 1, self.value(a).sum());
        self.push(out, Op::SumAll(a))
    }

    /// Mean of all elements, as a `1×1` scalar.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let n = self.value(a).len().max(1) as f32;
        let s = self.sum_all(a);
        self.scale(s, 1.0 / n)
    }

    /// Vertically concatenates rows of several variables (same width).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or widths differ.
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_rows needs at least one part");
        let cols = self.value(parts[0]).cols();
        let total: usize = parts.iter().map(|&p| self.value(p).rows()).sum();
        let v = run_op(OpKind::Concat, || {
            let mut buf = arena::take(total * cols);
            for &p in parts {
                let vp = self.value(p);
                assert_eq!(vp.cols(), cols, "concat_rows width mismatch");
                buf.extend_from_slice(vp.as_slice());
            }
            Tensor::from_vec(total, cols, buf)
        });
        self.push(v, Op::ConcatRows(parts.to_vec()))
    }

    /// Horizontally concatenates columns of several variables (same
    /// number of rows) — e.g. joining forward and backward RNN states.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or row counts differ.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols needs at least one part");
        let rows = self.value(parts[0]).rows();
        let total: usize = parts.iter().map(|&p| self.value(p).cols()).sum();
        let v = run_op(OpKind::Concat, || {
            let mut buf = arena::take(rows * total);
            for r in 0..rows {
                for &p in parts {
                    let vp = self.value(p);
                    assert_eq!(vp.rows(), rows, "concat_cols row mismatch");
                    buf.extend_from_slice(vp.row(r));
                }
            }
            Tensor::from_vec(rows, total, buf)
        });
        self.push(v, Op::ConcatCols(parts.to_vec()))
    }

    // ---- backward ----------------------------------------------------------

    /// Computes gradients of the scalar `loss` with respect to every
    /// parameter touched by the tape.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not `1×1`.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(self.value(loss).shape(), (1, 1), "loss must be scalar");
        self.backward_impl(loss, arena::full(1, 1, 1.0), &[]).0
    }

    /// Like [`Tape::backward`], but also returns the gradient of the loss
    /// with respect to each listed [`Tape::input`] variable, in the order
    /// given. Inputs the loss does not depend on get a zero gradient.
    ///
    /// This is the seam for data-parallel training: a batch-level loss
    /// tape takes per-file embeddings as inputs, and the returned input
    /// gradients seed each file's own forward tape via
    /// [`Tape::backward_from`].
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not `1×1`.
    pub fn backward_with_inputs(&self, loss: Var, inputs: &[Var]) -> (Gradients, Vec<Tensor>) {
        assert_eq!(self.value(loss).shape(), (1, 1), "loss must be scalar");
        self.backward_impl(loss, arena::full(1, 1, 1.0), inputs)
    }

    /// Backpropagates from an arbitrary (possibly non-scalar) variable,
    /// seeding it with `seed` — the gradient of some downstream scalar
    /// loss with respect to `root`, computed on another tape.
    ///
    /// # Panics
    ///
    /// Panics if `seed` does not have `root`'s shape.
    pub fn backward_from(&self, root: Var, seed: Tensor) -> Gradients {
        assert_eq!(
            self.value(root).shape(),
            seed.shape(),
            "seed must match the root's shape"
        );
        self.backward_impl(root, seed, &[]).0
    }

    fn backward_impl(&self, root: Var, seed: Tensor, inputs: &[Var]) -> (Gradients, Vec<Tensor>) {
        prof!(OpKind::Backward, 0u64, {
            let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
            grads[root.0] = Some(seed);
            let mut out = Gradients::new();
            let mut input_grads: Vec<Option<Tensor>> = vec![None; inputs.len()];

            for i in (0..self.nodes.len()).rev() {
                let g = match grads[i].take() {
                    Some(g) => g,
                    None => continue,
                };
                let node = &self.nodes[i];
                match &node.op {
                    Op::Input => {
                        if let Some(slot) = inputs.iter().position(|v| v.0 == i) {
                            input_grads[slot] = Some(g);
                        } else {
                            arena::recycle(g);
                        }
                    }
                    Op::Param(id) => out.accumulate(*id, g),
                    Op::Matmul(a, b) => {
                        // out = a · b : da = g · bᵀ ; db = aᵀ · g — the
                        // latter via the fused kernel, no materialised aᵀ.
                        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
                        let ga = g.matmul_t(vb);
                        let gb = run_op(OpKind::MatmulAtB, || va.matmul_at_b(&g));
                        arena::recycle(g);
                        accumulate(&mut grads, *a, ga);
                        accumulate(&mut grads, *b, gb);
                    }
                    Op::MatmulT(a, b) => {
                        // out = a · bᵀ : da = g · b ; db = gᵀ · a — the
                        // latter via the fused kernel, no materialised gᵀ.
                        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
                        let ga = g.matmul(vb);
                        let gb = run_op(OpKind::MatmulAtB, || g.matmul_at_b(va));
                        arena::recycle(g);
                        accumulate(&mut grads, *a, ga);
                        accumulate(&mut grads, *b, gb);
                    }
                    Op::MatmulBias(x, w, b) => {
                        // Replicates the add_row ∘ matmul reverse walk:
                        // bias row grad first, then dx, then dW.
                        let (vx, vw) = (&self.nodes[x.0].value, &self.nodes[w.0].value);
                        let mut row_grad = arena::zeros(1, g.cols());
                        for r in 0..g.rows() {
                            for c in 0..g.cols() {
                                let v = row_grad.get(0, c) + g.get(r, c);
                                row_grad.set(0, c, v);
                            }
                        }
                        let gx = g.matmul_t(vw);
                        let gw = run_op(OpKind::MatmulAtB, || vx.matmul_at_b(&g));
                        arena::recycle(g);
                        accumulate(&mut grads, *b, row_grad);
                        accumulate(&mut grads, *x, gx);
                        accumulate(&mut grads, *w, gw);
                    }
                    Op::Transpose(a) => {
                        let gt = g.transposed();
                        arena::recycle(g);
                        accumulate(&mut grads, *a, gt);
                    }
                    Op::Add(a, b) => {
                        accumulate(&mut grads, *a, arena::copy_of(&g));
                        accumulate(&mut grads, *b, g);
                    }
                    Op::AddRow(a, row) => {
                        let mut row_grad = arena::zeros(1, g.cols());
                        for r in 0..g.rows() {
                            for c in 0..g.cols() {
                                let v = row_grad.get(0, c) + g.get(r, c);
                                row_grad.set(0, c, v);
                            }
                        }
                        accumulate(&mut grads, *a, g);
                        accumulate(&mut grads, *row, row_grad);
                    }
                    Op::Sub(a, b) => {
                        let ga = arena::copy_of(&g);
                        let gb = pooled_map(&g, |x| -x);
                        arena::recycle(g);
                        accumulate(&mut grads, *a, ga);
                        accumulate(&mut grads, *b, gb);
                    }
                    Op::Mul(a, b) => {
                        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
                        let ga = pooled_zip(&g, vb, |x, y| x * y);
                        let mut gb = g;
                        for (x, &y) in gb.as_mut_slice().iter_mut().zip(va.as_slice()) {
                            *x *= y;
                        }
                        accumulate(&mut grads, *a, ga);
                        accumulate(&mut grads, *b, gb);
                    }
                    Op::Scale(a, c) => {
                        let ga = pooled_map(&g, |x| x * c);
                        arena::recycle(g);
                        accumulate(&mut grads, *a, ga);
                    }
                    Op::AddScalar(a, _) => accumulate(&mut grads, *a, g),
                    Op::Sigmoid(a) => {
                        let y = &node.value;
                        let mut ga = g;
                        for (x, &s) in ga.as_mut_slice().iter_mut().zip(y.as_slice()) {
                            *x *= s * (1.0 - s);
                        }
                        accumulate(&mut grads, *a, ga);
                    }
                    Op::Exp(a) => {
                        let y = &node.value;
                        let mut ga = g;
                        for (x, &e) in ga.as_mut_slice().iter_mut().zip(y.as_slice()) {
                            *x *= e;
                        }
                        accumulate(&mut grads, *a, ga);
                    }
                    Op::Tanh(a) => {
                        let y = &node.value;
                        let mut ga = g;
                        for (x, &t) in ga.as_mut_slice().iter_mut().zip(y.as_slice()) {
                            *x *= 1.0 - t * t;
                        }
                        accumulate(&mut grads, *a, ga);
                    }
                    Op::Relu(a) => {
                        let y = &node.value;
                        let mut ga = g;
                        for (x, &v) in ga.as_mut_slice().iter_mut().zip(y.as_slice()) {
                            if v <= 0.0 {
                                *x = 0.0;
                            }
                        }
                        accumulate(&mut grads, *a, ga);
                    }
                    Op::AddRowSigmoid(a, b, row) | Op::AddRowTanh(a, b, row) => {
                        // Replicates sigmoid/tanh ∘ add_row ∘ add:
                        // gs = g ⊙ f'(y), then row grad, then a, then b.
                        let y = &node.value;
                        let sig = matches!(node.op, Op::AddRowSigmoid(..));
                        let mut gs = g;
                        for (x, &v) in gs.as_mut_slice().iter_mut().zip(y.as_slice()) {
                            *x *= if sig { v * (1.0 - v) } else { 1.0 - v * v };
                        }
                        let mut row_grad = arena::zeros(1, gs.cols());
                        for r in 0..gs.rows() {
                            for c in 0..gs.cols() {
                                let v = row_grad.get(0, c) + gs.get(r, c);
                                row_grad.set(0, c, v);
                            }
                        }
                        let ga = arena::copy_of(&gs);
                        accumulate(&mut grads, *row, row_grad);
                        accumulate(&mut grads, *a, ga);
                        accumulate(&mut grads, *b, gs);
                    }
                    Op::GruCombine(z, h, cand) => {
                        // Replicates add(sub(h, mul(z,h)), mul(z,cand))'s
                        // reverse walk, in its exact accumulation order:
                        // h += g; z += g⊙cand; cand += g⊙z;
                        // z += (-g)⊙h; h += (-g)⊙z.
                        let (vz, vh, vc) = (
                            &self.nodes[z.0].value,
                            &self.nodes[h.0].value,
                            &self.nodes[cand.0].value,
                        );
                        let gh1 = arena::copy_of(&g);
                        let gz1 = pooled_zip(&g, vc, |x, y| x * y);
                        let gc = pooled_zip(&g, vz, |x, y| x * y);
                        let ng = pooled_map(&g, |x| -x);
                        arena::recycle(g);
                        let gz2 = pooled_zip(&ng, vh, |x, y| x * y);
                        let mut gh2 = ng;
                        for (x, &y) in gh2.as_mut_slice().iter_mut().zip(vz.as_slice()) {
                            *x *= y;
                        }
                        accumulate(&mut grads, *h, gh1);
                        accumulate(&mut grads, *z, gz1);
                        accumulate(&mut grads, *cand, gc);
                        accumulate(&mut grads, *z, gz2);
                        accumulate(&mut grads, *h, gh2);
                    }
                    Op::Gather(a, indices) => {
                        let va = &self.nodes[a.0].value;
                        let mut ga = arena::zeros(va.rows(), va.cols());
                        for (i, &idx) in indices.iter().enumerate() {
                            for c in 0..g.cols() {
                                let v = ga.get(idx, c) + g.get(i, c);
                                ga.set(idx, c, v);
                            }
                        }
                        arena::recycle(g);
                        accumulate(&mut grads, *a, ga);
                    }
                    Op::SegmentSum(a, segments, _, plan) => {
                        let va = &self.nodes[a.0].value;
                        let ga = match plan {
                            Some(plan) => segment::sum_backward_blocked(&g, plan, va.rows()),
                            None => segment::reference::sum_backward(&g, segments, va.rows()),
                        };
                        arena::recycle(g);
                        accumulate(&mut grads, *a, ga);
                    }
                    Op::SegmentMean(a, segments, num, plan) => {
                        let va = &self.nodes[a.0].value;
                        let ga = match plan {
                            Some(plan) => segment::mean_backward_blocked(&g, plan, va.rows()),
                            None => {
                                segment::reference::mean_backward(&g, segments, *num, va.rows())
                            }
                        };
                        arena::recycle(g);
                        accumulate(&mut grads, *a, ga);
                    }
                    Op::SegmentMax(a, _, _, argmax) => {
                        let va = &self.nodes[a.0].value;
                        let cols = va.cols();
                        let mut ga = arena::zeros(va.rows(), va.cols());
                        for s in 0..g.rows() {
                            for c in 0..cols {
                                let winner = argmax[s * cols + c];
                                if winner != usize::MAX {
                                    let v = ga.get(winner, c) + g.get(s, c);
                                    ga.set(winner, c, v);
                                }
                            }
                        }
                        arena::recycle(g);
                        accumulate(&mut grads, *a, ga);
                    }
                    Op::PairwiseL1(a) => {
                        let va = &self.nodes[a.0].value;
                        let n = va.rows();
                        let mut ga = arena::zeros(n, va.cols());
                        for i in 0..n {
                            for j in 0..n {
                                if i == j {
                                    continue;
                                }
                                let w = g.get(i, j);
                                if w == 0.0 {
                                    continue;
                                }
                                for c in 0..va.cols() {
                                    let s = (va.get(i, c) - va.get(j, c)).signum();
                                    let vi = ga.get(i, c) + w * s;
                                    ga.set(i, c, vi);
                                    let vj = ga.get(j, c) - w * s;
                                    ga.set(j, c, vj);
                                }
                            }
                        }
                        arena::recycle(g);
                        accumulate(&mut grads, *a, ga);
                    }
                    Op::LogSoftmax(a) => {
                        // dx = g - softmax(x) * rowsum(g)
                        let y = &node.value; // log-probabilities
                        let mut buf = arena::take(y.len());
                        for r in 0..y.rows() {
                            let rowsum: f32 = g.row(r).iter().sum();
                            for c in 0..y.cols() {
                                let p = y.get(r, c).exp();
                                buf.push(g.get(r, c) - p * rowsum);
                            }
                        }
                        let ga = Tensor::from_vec(y.rows(), y.cols(), buf);
                        arena::recycle(g);
                        accumulate(&mut grads, *a, ga);
                    }
                    Op::RowNorm(a) => {
                        // y = (x - mu) / sigma;
                        // dx = (g - mean(g) - y * mean(g*y)) / sigma
                        let x = &self.nodes[a.0].value;
                        let y = &node.value;
                        let mut buf = arena::take(y.len());
                        for r in 0..y.rows() {
                            let n = y.cols() as f32;
                            let mean_x = x.row(r).iter().sum::<f32>() / n;
                            let var =
                                x.row(r).iter().map(|v| (v - mean_x).powi(2)).sum::<f32>() / n;
                            let inv = 1.0 / (var + 1e-5).sqrt();
                            let mean_g = g.row(r).iter().sum::<f32>() / n;
                            let mean_gy = g
                                .row(r)
                                .iter()
                                .zip(y.row(r))
                                .map(|(gv, yv)| gv * yv)
                                .sum::<f32>()
                                / n;
                            for c in 0..y.cols() {
                                buf.push((g.get(r, c) - mean_g - y.get(r, c) * mean_gy) * inv);
                            }
                        }
                        let ga = Tensor::from_vec(y.rows(), y.cols(), buf);
                        arena::recycle(g);
                        accumulate(&mut grads, *a, ga);
                    }
                    Op::NllLoss(logp, labels) => {
                        let v = &self.nodes[logp.0].value;
                        let scale = g.item() / labels.len().max(1) as f32;
                        let mut ga = arena::zeros(v.rows(), v.cols());
                        for (r, &l) in labels.iter().enumerate() {
                            ga.set(r, l, -scale);
                        }
                        arena::recycle(g);
                        accumulate(&mut grads, *logp, ga);
                    }
                    Op::MulConst(a, mask) => {
                        let mut ga = g;
                        for (x, &m) in ga.as_mut_slice().iter_mut().zip(mask.as_slice()) {
                            *x *= m;
                        }
                        accumulate(&mut grads, *a, ga);
                    }
                    Op::SumAll(a) => {
                        let va = &self.nodes[a.0].value;
                        let ga = arena::full(va.rows(), va.cols(), g.item());
                        arena::recycle(g);
                        accumulate(&mut grads, *a, ga);
                    }
                    Op::ConcatRows(parts) => {
                        let mut r = 0;
                        for &p in parts {
                            let rows = self.nodes[p.0].value.rows();
                            let cols = self.nodes[p.0].value.cols();
                            let mut buf = arena::take(rows * cols);
                            for i in 0..rows {
                                buf.extend_from_slice(g.row(r + i));
                            }
                            let gp = Tensor::from_vec(rows, cols, buf);
                            r += rows;
                            accumulate(&mut grads, p, gp);
                        }
                        arena::recycle(g);
                    }
                    Op::ConcatCols(parts) => {
                        let mut base = 0;
                        for &p in parts {
                            let rows = self.nodes[p.0].value.rows();
                            let cols = self.nodes[p.0].value.cols();
                            let mut buf = arena::take(rows * cols);
                            for r in 0..rows {
                                for c in 0..cols {
                                    buf.push(g.get(r, base + c));
                                }
                            }
                            let gp = Tensor::from_vec(rows, cols, buf);
                            base += cols;
                            accumulate(&mut grads, p, gp);
                        }
                        arena::recycle(g);
                    }
                }
            }
            let input_grads = inputs
                .iter()
                .zip(input_grads)
                .map(|(v, g)| {
                    g.unwrap_or_else(|| {
                        let t = self.value(*v);
                        arena::zeros(t.rows(), t.cols())
                    })
                })
                .collect();
            (out, input_grads)
        })
    }
}

impl Drop for Tape<'_> {
    fn drop(&mut self) {
        self.reset();
    }
}

fn accumulate(grads: &mut [Option<Tensor>], v: Var, g: Tensor) {
    match &mut grads[v.0] {
        Some(existing) => {
            existing.add_assign(&g);
            arena::recycle(g);
        }
        slot @ None => *slot = Some(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Numerically checks d loss / d param against finite differences.
    fn check_gradient(build: impl Fn(&mut Tape<'_>, Var) -> Var, init: Tensor, tol: f32) {
        let mut params = ParamSet::new();
        let id = params.add("w", init);
        // Analytic gradient.
        let analytic = {
            let mut tape = Tape::new(&params);
            let w = tape.param(id);
            let loss = build(&mut tape, w);
            tape.backward(loss).get(id).expect("param used").clone()
        };
        // Finite differences.
        let eps = 1e-3;
        let (rows, cols) = params.get(id).shape();
        for r in 0..rows {
            for c in 0..cols {
                let orig = params.get(id).get(r, c);
                params.get_mut(id).set(r, c, orig + eps);
                let plus = {
                    let mut tape = Tape::new(&params);
                    let w = tape.param(id);
                    build(&mut tape, w);
                    let loss_idx = tape.len() - 1;
                    tape.value(Var(loss_idx)).item()
                };
                params.get_mut(id).set(r, c, orig - eps);
                let minus = {
                    let mut tape = Tape::new(&params);
                    let w = tape.param(id);
                    build(&mut tape, w);
                    let loss_idx = tape.len() - 1;
                    tape.value(Var(loss_idx)).item()
                };
                params.get_mut(id).set(r, c, orig);
                let numeric = (plus - minus) / (2.0 * eps);
                let got = analytic.get(r, c);
                assert!(
                    (numeric - got).abs() < tol,
                    "grad mismatch at ({r},{c}): numeric {numeric} vs analytic {got}"
                );
            }
        }
    }

    #[test]
    fn grad_matmul_chain() {
        let mut rng = StdRng::seed_from_u64(11);
        let x = Tensor::glorot(3, 4, &mut rng);
        check_gradient(
            move |tape, w| {
                let xin = tape.input(x.clone());
                let y = tape.matmul(xin, w);
                let y = tape.tanh(y);
                tape.mean_all(y)
            },
            Tensor::glorot(4, 2, &mut StdRng::seed_from_u64(12)),
            1e-2,
        );
    }

    #[test]
    fn grad_sigmoid_relu_add() {
        let mut rng = StdRng::seed_from_u64(21);
        let x = Tensor::glorot(2, 3, &mut rng);
        check_gradient(
            move |tape, w| {
                let xin = tape.input(x.clone());
                let s = tape.mul(xin, w);
                let s = tape.sigmoid(s);
                let r = tape.relu(s);
                let r2 = tape.add(r, s);
                tape.sum_all(r2)
            },
            Tensor::glorot(2, 3, &mut StdRng::seed_from_u64(22)),
            1e-2,
        );
    }

    #[test]
    fn grad_log_softmax_nll() {
        check_gradient(
            |tape, w| {
                let lp = tape.log_softmax(w);
                tape.nll_loss(lp, &[1, 0])
            },
            Tensor::from_vec(2, 3, vec![0.1, 0.5, -0.2, 0.3, -0.4, 0.8]),
            1e-2,
        );
    }

    #[test]
    fn grad_gather_segment_sum() {
        check_gradient(
            |tape, w| {
                let g = tape.gather(w, &[0, 1, 1, 2]);
                let s = tape.segment_sum(g, &[0, 0, 1, 1], 2);
                let s = tape.tanh(s);
                tape.sum_all(s)
            },
            Tensor::from_vec(3, 2, vec![0.5, -0.2, 0.1, 0.9, -0.7, 0.3]),
            1e-2,
        );
    }

    #[test]
    fn grad_segment_mean_and_max() {
        check_gradient(
            |tape, w| {
                let mean = tape.segment_mean(w, &[0, 0, 1], 2);
                let max = tape.segment_max(w, &[0, 0, 1], 2);
                let out = tape.add(mean, max);
                tape.sum_all(out)
            },
            Tensor::from_vec(3, 2, vec![0.5, -0.2, 0.1, 0.9, -0.7, 0.3]),
            1e-2,
        );
    }

    #[test]
    fn grad_pairwise_l1() {
        check_gradient(
            |tape, w| {
                let d = tape.pairwise_l1(w);
                let mask = Tensor::from_vec(3, 3, vec![0., 1., 0., 0., 0., 1., 0., 0., 0.]);
                let sel = tape.mul_const(d, &mask);
                tape.sum_all(sel)
            },
            Tensor::from_vec(3, 2, vec![0.9, -0.2, 0.1, 0.7, -0.5, 0.3]),
            1e-2,
        );
    }

    #[test]
    fn grad_add_row_and_matmul_t() {
        let mut rng = StdRng::seed_from_u64(31);
        let x = Tensor::glorot(3, 4, &mut rng);
        let b = Tensor::glorot(1, 3, &mut rng);
        check_gradient(
            move |tape, w| {
                let xin = tape.input(x.clone());
                let bin = tape.input(b.clone());
                let y = tape.matmul_t(xin, w); // [3,4]x[3,4]T -> [3,3]
                let y = tape.add_row(y, bin);
                let y = tape.sigmoid(y);
                tape.mean_all(y)
            },
            Tensor::glorot(3, 4, &mut StdRng::seed_from_u64(32)),
            1e-2,
        );
    }

    #[test]
    fn grad_concat_and_transpose() {
        check_gradient(
            |tape, w| {
                let t = tape.transpose(w);
                let c = tape.concat_rows(&[t, t]);
                let c = tape.tanh(c);
                tape.sum_all(c)
            },
            Tensor::from_vec(2, 3, vec![0.2, -0.1, 0.4, 0.6, -0.3, 0.5]),
            1e-2,
        );
    }

    #[test]
    fn grad_exp() {
        check_gradient(
            |tape, w| {
                let e = tape.exp(w);
                tape.mean_all(e)
            },
            Tensor::from_vec(1, 3, vec![0.1, -0.5, 0.9]),
            1e-2,
        );
    }

    #[test]
    fn grad_row_norm() {
        check_gradient(
            |tape, w| {
                let n = tape.row_norm(w);
                let t = tape.tanh(n);
                tape.mean_all(t)
            },
            Tensor::from_vec(2, 4, vec![0.3, -0.6, 0.2, 0.8, 1.2, -0.1, 0.4, -0.9]),
            2e-2,
        );
    }

    #[test]
    fn grad_matmul_bias() {
        let mut rng = StdRng::seed_from_u64(41);
        let x = Tensor::glorot(3, 4, &mut rng);
        let b = Tensor::glorot(1, 2, &mut rng);
        check_gradient(
            move |tape, w| {
                let xin = tape.input(x.clone());
                let bin = tape.input(b.clone());
                let y = tape.matmul_bias(xin, w, bin);
                let y = tape.tanh(y);
                tape.mean_all(y)
            },
            Tensor::glorot(4, 2, &mut StdRng::seed_from_u64(42)),
            1e-2,
        );
    }

    #[test]
    fn grad_fused_gates_and_combine() {
        let mut rng = StdRng::seed_from_u64(51);
        let b = Tensor::glorot(2, 3, &mut rng);
        let row = Tensor::glorot(1, 3, &mut rng);
        check_gradient(
            move |tape, w| {
                let bin = tape.input(b.clone());
                let rin = tape.input(row.clone());
                let z = tape.add2_row_sigmoid(w, bin, rin);
                let cand = tape.add2_row_tanh(w, bin, rin);
                let h = tape.gru_combine(z, w, cand);
                tape.mean_all(h)
            },
            Tensor::glorot(2, 3, &mut StdRng::seed_from_u64(52)),
            1e-2,
        );
    }

    #[test]
    fn fused_ops_match_unfused_composition_bitwise() {
        // The same computation through the fused nodes and through the
        // naive composition must agree bit-for-bit — forward value AND
        // every parameter gradient.
        let mut rng = StdRng::seed_from_u64(61);
        let mut params = ParamSet::new();
        let a_id = params.add("a", Tensor::glorot(4, 5, &mut rng));
        let b_id = params.add("b", Tensor::glorot(4, 5, &mut rng));
        let r_id = params.add("r", Tensor::glorot(1, 5, &mut rng));
        let run = |fused: bool| {
            let mut tape = Tape::new(&params);
            let a = tape.param(a_id);
            let b = tape.param(b_id);
            let r = tape.param(r_id);
            let (z, cand, h) = if fused {
                let z = tape.add2_row_sigmoid(a, b, r);
                let cand = tape.add2_row_tanh(a, b, r);
                let h = tape.gru_combine(z, b, cand);
                (z, cand, h)
            } else {
                let s = tape.add(a, b);
                let s = tape.add_row(s, r);
                let z = tape.sigmoid(s);
                let t = tape.add(a, b);
                let t = tape.add_row(t, r);
                let cand = tape.tanh(t);
                let zh = tape.mul(z, b);
                let zc = tape.mul(z, cand);
                let keep = tape.sub(b, zh);
                let h = tape.add(keep, zc);
                (z, cand, h)
            };
            let _ = (z, cand);
            let loss = tape.mean_all(h);
            let value = tape.value(h).clone();
            let grads = tape.backward(loss);
            let gs: Vec<Vec<f32>> = [a_id, b_id, r_id]
                .iter()
                .map(|&id| grads.get(id).unwrap().as_slice().to_vec())
                .collect();
            (value, gs)
        };
        let (vf, gf) = run(true);
        let (vu, gu) = run(false);
        assert_eq!(vf.as_slice(), vu.as_slice(), "fused forward differs");
        assert_eq!(gf, gu, "fused gradients differ");
    }

    #[test]
    fn reset_recycles_and_preserves_results() {
        // Running the same computation twice through one reset tape must
        // give identical results, and the second run must reuse buffers.
        let mut params = ParamSet::new();
        let id = params.add("w", Tensor::from_vec(2, 2, vec![0.3, -0.2, 0.8, 0.1]));
        let mut tape = Tape::new(&params);
        let run = |tape: &mut Tape<'_>| {
            let w = tape.param(id);
            let s = tape.sigmoid(w);
            let loss = tape.mean_all(s);
            let grads = tape.backward(loss);
            (
                tape.value(loss).item(),
                grads.get(id).unwrap().as_slice().to_vec(),
            )
        };
        let first = run(&mut tape);
        tape.reset();
        assert!(tape.is_empty());
        let before = crate::arena::arena_stats();
        let second = run(&mut tape);
        let after = crate::arena::arena_stats();
        assert_eq!(first, second, "reset changed results");
        if kernel_mode() == KernelMode::Fast {
            assert!(
                after.reused > before.reused,
                "reset tape did not reuse buffers"
            );
        }
    }

    #[test]
    fn row_norm_standardises() {
        let params = ParamSet::new();
        let mut tape = Tape::new(&params);
        let x = tape.input(Tensor::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]));
        let n = tape.row_norm(x);
        let row = tape.value(n).row(0).to_vec();
        let mean: f32 = row.iter().sum::<f32>() / 4.0;
        let var: f32 = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn grad_concat_cols() {
        check_gradient(
            |tape, w| {
                let c = tape.concat_cols(&[w, w]);
                let t = tape.tanh(c);
                tape.mean_all(t)
            },
            Tensor::from_vec(2, 2, vec![0.3, -0.6, 0.2, 0.8]),
            1e-2,
        );
    }

    #[test]
    fn segment_max_empty_segment_is_zero() {
        let params = ParamSet::new();
        let mut tape = Tape::new(&params);
        let x = tape.input(Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let m = tape.segment_max(x, &[0, 0], 3);
        assert_eq!(tape.value(m).row(1), &[0.0, 0.0]);
        assert_eq!(tape.value(m).row(0), &[3.0, 4.0]);
    }

    #[test]
    fn log_softmax_rows_normalise() {
        let params = ParamSet::new();
        let mut tape = Tape::new(&params);
        let x = tape.input(Tensor::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1.]));
        let lp = tape.log_softmax(x);
        for r in 0..2 {
            let total: f32 = tape.value(lp).row(r).iter().map(|&x| x.exp()).sum();
            assert!((total - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn unused_params_get_no_gradient() {
        let mut params = ParamSet::new();
        let used = params.add("used", Tensor::scalar(2.0));
        let unused = params.add("unused", Tensor::scalar(5.0));
        let mut tape = Tape::new(&params);
        let w = tape.param(used);
        let loss = tape.sum_all(w);
        let grads = tape.backward(loss);
        assert!(grads.get(used).is_some());
        assert!(grads.get(unused).is_none());
    }

    #[test]
    fn shared_param_grads_accumulate() {
        let mut params = ParamSet::new();
        let id = params.add("w", Tensor::scalar(3.0));
        let mut tape = Tape::new(&params);
        let a = tape.param(id);
        let b = tape.param(id);
        let s = tape.add(a, b); // loss = 2w -> dw = 2
        let loss = tape.sum_all(s);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(id).unwrap().item(), 2.0);
    }

    #[test]
    fn backward_with_inputs_returns_input_gradients() {
        let params = ParamSet::new();
        let mut tape = Tape::new(&params);
        let x = tape.input(Tensor::from_vec(1, 2, vec![2.0, -1.0]));
        let unused = tape.input(Tensor::from_vec(1, 3, vec![0.0, 0.0, 0.0]));
        let sq = tape.mul(x, x); // d(sum x^2)/dx = 2x
        let loss = tape.sum_all(sq);
        let (_, input_grads) = tape.backward_with_inputs(loss, &[x, unused]);
        assert_eq!(input_grads[0].as_slice(), &[4.0, -2.0]);
        // Inputs the loss ignores get a zero gradient of matching shape.
        assert_eq!(input_grads[1].shape(), (1, 3));
        assert!(input_grads[1].as_slice().iter().all(|&g| g == 0.0));
    }

    /// Splitting a computation over two tapes — a forward tape producing
    /// an intermediate, and a loss tape consuming it as an input — must
    /// yield the same parameter gradients as the single-tape run:
    /// `backward_with_inputs` extracts d loss / d intermediate, and
    /// `backward_from` pushes it through the forward tape.
    #[test]
    fn two_tape_split_matches_single_tape() {
        let mut params = ParamSet::new();
        let id = params.add("w", Tensor::from_vec(1, 2, vec![0.7, -0.4]));

        // Single tape: loss = sum(tanh(w) * tanh(w)).
        let mut whole = Tape::new(&params);
        let w = whole.param(id);
        let t = whole.tanh(w);
        let sq = whole.mul(t, t);
        let loss = whole.sum_all(sq);
        let reference = whole.backward(loss);

        // Split: forward tape computes tanh(w); loss tape squares it.
        let mut forward = Tape::new(&params);
        let w = forward.param(id);
        let mid = forward.tanh(w);
        let mid_value = forward.value(mid).clone();

        let mut loss_tape = Tape::new(&params);
        let x = loss_tape.input(mid_value);
        let sq = loss_tape.mul(x, x);
        let loss = loss_tape.sum_all(sq);
        let (mut grads, input_grads) = loss_tape.backward_with_inputs(loss, &[x]);
        grads.merge(forward.backward_from(mid, input_grads.into_iter().next().unwrap()));

        let (r, s) = (reference.get(id).unwrap(), grads.get(id).unwrap());
        assert_eq!(r.shape(), s.shape());
        for (a, b) in r.as_slice().iter().zip(s.as_slice()) {
            assert!(
                (a - b).abs() < 1e-6,
                "split-tape gradient mismatch: {a} vs {b}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "seed must match")]
    fn backward_from_rejects_mismatched_seed() {
        let params = ParamSet::new();
        let mut tape = Tape::new(&params);
        let x = tape.input(Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        tape.backward_from(x, Tensor::scalar(1.0));
    }
}
