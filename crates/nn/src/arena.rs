//! A thread-local buffer arena for tape tensors.
//!
//! Every tensor a [`crate::Tape`](crate::tape::Tape) materialises — op
//! outputs, parameter snapshots, gradient temporaries — is backed by a
//! `Vec<f32>` drawn from a per-thread pool of retired buffers. When a
//! tape is dropped or [`reset`](crate::tape::Tape::reset), its buffers
//! return to the pool, so a steady-state training loop (same model, same
//! batch shapes) stops allocating after the first step.
//!
//! Recycling is invisible to the numerics: a pooled buffer is always
//! fully reinitialised (zero-filled or overwritten) before use, so
//! results are bit-identical to fresh allocation. Pools are
//! thread-local, which keeps the data-parallel engine free of cross-
//! thread coordination; buffers recycled on a worker thread simply join
//! that worker's pool.
//!
//! In [`KernelMode::Naive`](crate::mode::KernelMode) the pool is
//! bypassed entirely (every request is a fresh allocation and recycling
//! drops the buffer) so benchmarks can measure the pre-arena behaviour.
//!
//! Global counters track pool hits and misses; they are cheap relaxed
//! atomics and always on, which is what lets `bench_nn` report the
//! allocations-per-step reduction without a special build.

use crate::mode::{kernel_mode, KernelMode};
use crate::tensor::Tensor;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Buffers are binned by floor(log2(capacity)); 32 classes cover every
/// realistic tensor (class 31 ≈ 2 G elements).
const NUM_CLASSES: usize = 32;
/// At most this many retired buffers are kept per size class; extras
/// are released to the system allocator. A tape holds every op output
/// alive until backward, so the cap must cover the peak live set of one
/// training step (thousands of small tensors for a GNN batch) — in
/// steady state the pool holds roughly one step's working set and no
/// more, since buffers only enter it on recycle.
const PER_CLASS_CAP: usize = 4096;

static FRESH: AtomicU64 = AtomicU64::new(0);
static REUSED: AtomicU64 = AtomicU64::new(0);
static RECYCLED: AtomicU64 = AtomicU64::new(0);

struct Pool {
    classes: Vec<Vec<Vec<f32>>>,
}

impl Pool {
    fn new() -> Pool {
        Pool { classes: (0..NUM_CLASSES).map(|_| Vec::new()).collect() }
    }
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::new());
}

/// Size class holding buffers with `capacity >= 2^c` (floor log2).
#[inline]
fn class_of_capacity(cap: usize) -> usize {
    (usize::BITS - 1 - cap.max(1).leading_zeros()) as usize
}

/// Smallest class whose buffers are guaranteed to hold `len` elements.
#[inline]
fn class_for_request(len: usize) -> usize {
    let c = class_of_capacity(len.max(1));
    if len.max(1).is_power_of_two() {
        c
    } else {
        c + 1
    }
}

/// An empty `Vec<f32>` with capacity for at least `len` elements,
/// recycled from the pool when possible.
pub(crate) fn take(len: usize) -> Vec<f32> {
    if kernel_mode() == KernelMode::Naive {
        FRESH.fetch_add(1, Relaxed);
        return Vec::with_capacity(len);
    }
    let reused = POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        let first = class_for_request(len).min(NUM_CLASSES - 1);
        // Look in the exact class and the next one up; anything larger
        // would waste big buffers on small tensors.
        for class in first..(first + 2).min(NUM_CLASSES) {
            if let Some(mut buf) = pool.classes[class].pop() {
                buf.clear();
                return Some(buf);
            }
        }
        None
    });
    match reused {
        Some(buf) => {
            REUSED.fetch_add(1, Relaxed);
            buf
        }
        None => {
            FRESH.fetch_add(1, Relaxed);
            // Round fresh capacity up to a power of two so the buffer's
            // recycle class equals its request class: a buffer with the
            // exact capacity 777_777 would land in floor-class 19 on
            // recycle but be searched for in ceil-class 20.
            Vec::with_capacity(len.max(1).next_power_of_two())
        }
    }
}

/// A zero-filled `rows × cols` tensor backed by a pooled buffer.
pub(crate) fn zeros(rows: usize, cols: usize) -> Tensor {
    full(rows, cols, 0.0)
}

/// A constant-filled `rows × cols` tensor backed by a pooled buffer.
pub(crate) fn full(rows: usize, cols: usize, value: f32) -> Tensor {
    let len = rows * cols;
    let mut buf = take(len);
    buf.resize(len, value);
    Tensor::from_vec(rows, cols, buf)
}

/// A pooled copy of `t`.
pub(crate) fn copy_of(t: &Tensor) -> Tensor {
    copy_slice(t.rows(), t.cols(), t.as_slice())
}

/// A pooled `rows × cols` tensor initialised from a row-major slice.
///
/// # Panics
///
/// Panics if `data.len() != rows * cols`.
pub(crate) fn copy_slice(rows: usize, cols: usize, data: &[f32]) -> Tensor {
    assert_eq!(data.len(), rows * cols, "arena copy length mismatch");
    let mut buf = take(data.len());
    buf.extend_from_slice(data);
    Tensor::from_vec(rows, cols, buf)
}

/// Returns a tensor's buffer to the current thread's pool.
pub(crate) fn recycle(t: Tensor) {
    recycle_vec(t.into_data());
}

/// Returns a raw buffer to the current thread's pool.
pub(crate) fn recycle_vec(buf: Vec<f32>) {
    if buf.capacity() == 0 || kernel_mode() == KernelMode::Naive {
        return;
    }
    let class = class_of_capacity(buf.capacity()).min(NUM_CLASSES - 1);
    POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        let bin = &mut pool.classes[class];
        if bin.len() < PER_CLASS_CAP {
            RECYCLED.fetch_add(1, Relaxed);
            bin.push(buf);
        }
        // Over the cap: drop, releasing the memory.
    });
}

/// Snapshot of the arena's global allocation counters (all threads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaStats {
    /// Buffer requests the pool could not serve (heap allocations).
    pub fresh: u64,
    /// Buffer requests served from the pool (no allocation).
    pub reused: u64,
    /// Buffers returned to the pool.
    pub recycled: u64,
}

impl ArenaStats {
    /// Counter deltas since an earlier snapshot.
    pub fn since(&self, earlier: &ArenaStats) -> ArenaStats {
        ArenaStats {
            fresh: self.fresh - earlier.fresh,
            reused: self.reused - earlier.reused,
            recycled: self.recycled - earlier.recycled,
        }
    }
}

/// Reads the arena counters.
pub fn arena_stats() -> ArenaStats {
    ArenaStats {
        fresh: FRESH.load(Relaxed),
        reused: REUSED.load(Relaxed),
        recycled: RECYCLED.load(Relaxed),
    }
}

/// Zeroes the arena counters (pool contents are untouched).
pub fn reset_arena_stats() {
    FRESH.store(0, Relaxed);
    REUSED.store(0, Relaxed);
    RECYCLED.store(0, Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_classes_round_trip() {
        assert_eq!(class_of_capacity(1), 0);
        assert_eq!(class_of_capacity(2), 1);
        assert_eq!(class_of_capacity(3), 1);
        assert_eq!(class_of_capacity(1024), 10);
        // A request of n must map to a class whose buffers hold n.
        for len in [1usize, 2, 3, 7, 8, 9, 100, 1 << 20] {
            let class = class_for_request(len);
            assert!((1usize << class) >= len, "class {class} too small for {len}");
        }
    }

    #[test]
    fn recycled_buffers_are_reused() {
        crate::mode::set_kernel_mode(crate::mode::KernelMode::Fast);
        // Use an odd, large size so no other test's buffers match the class.
        let t = zeros(1, 777_777);
        let before = arena_stats();
        recycle(t);
        let t2 = take(777_777);
        let after = arena_stats();
        assert!(t2.capacity() >= 777_777);
        assert_eq!(after.reused - before.reused, 1, "second request must hit the pool");
    }

    #[test]
    fn pooled_tensors_are_fully_initialised() {
        crate::mode::set_kernel_mode(crate::mode::KernelMode::Fast);
        let mut t = full(2, 3, 7.5);
        t.as_mut_slice().iter_mut().for_each(|x| *x = 99.0);
        recycle(t);
        let z = zeros(2, 3);
        assert!(z.as_slice().iter().all(|&x| x == 0.0), "stale data leaked from pool");
        let c = copy_slice(1, 6, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(c.as_slice(), &[1., 2., 3., 4., 5., 6.]);
    }
}
