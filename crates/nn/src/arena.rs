//! A thread-local buffer arena for tape tensors.
//!
//! Every tensor a [`crate::Tape`](crate::tape::Tape) materialises — op
//! outputs, parameter snapshots, gradient temporaries — is backed by a
//! `Vec<f32>` drawn from a per-thread pool of retired buffers. When a
//! tape is dropped or [`reset`](crate::tape::Tape::reset), its buffers
//! return to the pool, so a steady-state training loop (same model, same
//! batch shapes) stops allocating after the first step.
//!
//! Recycling is invisible to the numerics: a pooled buffer is always
//! fully reinitialised (zero-filled or overwritten) before use, so
//! results are bit-identical to fresh allocation. Pools are
//! thread-local, which keeps the hot allocate/recycle path of the
//! data-parallel engine free of cross-thread coordination; buffers
//! recycled on a worker thread simply join that worker's pool.
//!
//! A few buffers migrate between threads under the persistent
//! [`crate::pool::WorkerPool`]: a gradient computed on a worker is
//! merged — and its buffer retired — on the caller. Recycling those on
//! the caller would starve the workers' local pools, so the known
//! hand-off points return buffers through [`recycle_shared`] into a
//! process-wide backstop pool that every thread's [`take`] falls back
//! to after a local miss (local → shared → fresh). Only the migration
//! points pay the shared lock; within-thread recycling stays lock-free.
//!
//! In [`KernelMode::Naive`](crate::mode::KernelMode) the pool is
//! bypassed entirely (every request is a fresh allocation and recycling
//! drops the buffer) so benchmarks can measure the pre-arena behaviour.
//!
//! Global counters track pool hits and misses; they are cheap relaxed
//! atomics and always on, which is what lets `bench_nn` report the
//! allocations-per-step reduction without a special build.

use crate::mode::{kernel_mode, KernelMode};
use crate::tensor::Tensor;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};

/// Buffers are binned by floor(log2(capacity)); 32 classes cover every
/// realistic tensor (class 31 ≈ 2 G elements).
const NUM_CLASSES: usize = 32;
/// At most this many retired buffers are kept per size class; extras
/// are released to the system allocator. A tape holds every op output
/// alive until backward, so the cap must cover the peak live set of one
/// training step (thousands of small tensors for a GNN batch) — in
/// steady state the pool holds roughly one step's working set and no
/// more, since buffers only enter it on recycle.
const PER_CLASS_CAP: usize = 4096;

static FRESH: AtomicU64 = AtomicU64::new(0);
static REUSED: AtomicU64 = AtomicU64::new(0);
static RECYCLED: AtomicU64 = AtomicU64::new(0);

struct Pool {
    classes: Vec<Vec<Vec<f32>>>,
}

impl Pool {
    fn new() -> Pool {
        Pool {
            classes: (0..NUM_CLASSES).map(|_| Vec::new()).collect(),
        }
    }
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::new());
}

/// Process-wide backstop pool for buffers that migrate between threads
/// (see the module docs). Touched only on a local-pool miss and at the
/// explicit [`recycle_shared`] hand-off points, so the mutex is cold.
fn shared_pool() -> &'static Mutex<Pool> {
    static SHARED: OnceLock<Mutex<Pool>> = OnceLock::new();
    SHARED.get_or_init(|| Mutex::new(Pool::new()))
}

impl Pool {
    /// Pops the smallest stored buffer able to hold `len` elements.
    ///
    /// Buffers allocated by [`take`] have power-of-two capacities, but
    /// buffers born outside it — e.g. `Tensor::clone` copies that later
    /// enter a tape — carry exact capacities and land in the *floor*
    /// class of their capacity, one below the class a request for that
    /// length searches. So the search runs best-fit, smallest class
    /// first: the floor class (which can hold fitting buffers only for
    /// non-power-of-two requests), then the exact class. Larger classes
    /// are deliberately left alone: serving a request from the class
    /// above wastes a 2× buffer on it — and under the worker pool that
    /// buffer may then migrate to another thread (e.g. as a backward
    /// seed), slowly draining the big classes of the thread that owns
    /// them and forcing it to re-allocate every step. A fresh exact-size
    /// allocation converges instead: each (thread, class) population is
    /// self-contained, so steady-state training stops allocating. Each
    /// bin is sorted by descending capacity, so within a bin the best
    /// fit is the deepest fitting entry — `pop` for the (common)
    /// homogeneous bins.
    fn pop_for_request(&mut self, len: usize) -> Option<Vec<f32>> {
        let exact = class_for_request(len).min(NUM_CLASSES - 1);
        let floor = if exact > 0 && !len.max(1).is_power_of_two() {
            exact - 1
        } else {
            exact
        };
        for class in floor..=exact {
            let bin = &mut self.classes[class];
            // Descending order: entries with capacity >= len form a
            // prefix; its last element is the smallest fitting buffer.
            let fit = bin.partition_point(|b| b.capacity() >= len);
            if fit > 0 {
                let mut buf = bin.remove(fit - 1);
                buf.clear();
                return Some(buf);
            }
        }
        None
    }

    /// Stores a buffer in the size class of its capacity, keeping the
    /// bin sorted by descending capacity (a push for the common case of
    /// a bin full of identical power-of-two buffers), and dropping the
    /// buffer when the class is at [`PER_CLASS_CAP`]. Returns whether
    /// the buffer was kept.
    fn store(&mut self, buf: Vec<f32>) -> bool {
        let class = class_of_capacity(buf.capacity()).min(NUM_CLASSES - 1);
        let bin = &mut self.classes[class];
        if bin.len() < PER_CLASS_CAP {
            let pos = bin.partition_point(|b| b.capacity() >= buf.capacity());
            bin.insert(pos, buf);
            true
        } else {
            false
        }
    }
}

/// Size class holding buffers with `capacity >= 2^c` (floor log2).
#[inline]
fn class_of_capacity(cap: usize) -> usize {
    (usize::BITS - 1 - cap.max(1).leading_zeros()) as usize
}

/// Smallest class whose buffers are guaranteed to hold `len` elements.
#[inline]
fn class_for_request(len: usize) -> usize {
    let c = class_of_capacity(len.max(1));
    if len.max(1).is_power_of_two() {
        c
    } else {
        c + 1
    }
}

/// An empty `Vec<f32>` with capacity for at least `len` elements,
/// recycled from the pool when possible.
pub(crate) fn take(len: usize) -> Vec<f32> {
    if kernel_mode() == KernelMode::Naive {
        FRESH.fetch_add(1, Relaxed);
        return Vec::with_capacity(len);
    }
    let reused = POOL
        .with(|pool| pool.borrow_mut().pop_for_request(len))
        .or_else(|| {
            // Local miss: check the shared backstop before allocating,
            // picking up buffers that were retired on another thread.
            shared_pool()
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .pop_for_request(len)
        });
    match reused {
        Some(buf) => {
            REUSED.fetch_add(1, Relaxed);
            buf
        }
        None => {
            FRESH.fetch_add(1, Relaxed);
            if crate::config::arena_trace() {
                eprintln!(
                    "arena: FRESH len={} class={} on {:?}",
                    len,
                    class_for_request(len),
                    std::thread::current().name().unwrap_or("?")
                );
                if crate::config::arena_trace_backtrace() {
                    eprintln!("{}", std::backtrace::Backtrace::force_capture());
                }
            }
            // Round fresh capacity up to a power of two so the buffer's
            // recycle class equals its request class: a buffer with the
            // exact capacity 777_777 would land in floor-class 19 on
            // recycle but be searched for in ceil-class 20.
            Vec::with_capacity(len.max(1).next_power_of_two())
        }
    }
}

/// A zero-filled `rows × cols` tensor backed by a pooled buffer.
pub(crate) fn zeros(rows: usize, cols: usize) -> Tensor {
    full(rows, cols, 0.0)
}

/// A constant-filled `rows × cols` tensor backed by a pooled buffer.
pub(crate) fn full(rows: usize, cols: usize, value: f32) -> Tensor {
    let len = rows * cols;
    let mut buf = take(len);
    buf.resize(len, value);
    Tensor::from_vec(rows, cols, buf)
}

/// A pooled copy of `t`.
pub(crate) fn copy_of(t: &Tensor) -> Tensor {
    copy_slice(t.rows(), t.cols(), t.as_slice())
}

/// A pooled `rows × cols` tensor initialised from a row-major slice.
///
/// # Panics
///
/// Panics if `data.len() != rows * cols`.
pub(crate) fn copy_slice(rows: usize, cols: usize, data: &[f32]) -> Tensor {
    assert_eq!(data.len(), rows * cols, "arena copy length mismatch");
    let mut buf = take(data.len());
    buf.extend_from_slice(data);
    Tensor::from_vec(rows, cols, buf)
}

/// Returns a tensor's buffer to the current thread's pool.
pub(crate) fn recycle(t: Tensor) {
    recycle_vec(t.into_data());
}

/// Returns a raw buffer to the current thread's pool.
pub(crate) fn recycle_vec(buf: Vec<f32>) {
    if buf.capacity() == 0 || kernel_mode() == KernelMode::Naive {
        return;
    }
    POOL.with(|pool| {
        if pool.borrow_mut().store(buf) {
            RECYCLED.fetch_add(1, Relaxed);
        }
        // Over the cap: drop, releasing the memory.
    });
}

/// Returns a tensor's buffer to the process-wide shared pool. Use at
/// the points where a buffer allocated on one thread is retired on
/// another (gradient merge on the caller, optimizer teardown, per-file
/// value snapshots dropped on workers), so it can flow back to
/// whichever thread next misses its local pool.
pub fn recycle_shared(t: Tensor) {
    recycle_vec_shared(t.into_data());
}

/// Returns a raw buffer to the process-wide shared pool.
pub(crate) fn recycle_vec_shared(buf: Vec<f32>) {
    if buf.capacity() == 0 || kernel_mode() == KernelMode::Naive {
        return;
    }
    let kept = shared_pool()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .store(buf);
    if kept {
        RECYCLED.fetch_add(1, Relaxed);
    }
}

/// Snapshot of the arena's global allocation counters (all threads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaStats {
    /// Buffer requests the pool could not serve (heap allocations).
    pub fresh: u64,
    /// Buffer requests served from the pool (no allocation).
    pub reused: u64,
    /// Buffers returned to the pool.
    pub recycled: u64,
}

impl ArenaStats {
    /// Counter deltas since an earlier snapshot.
    pub fn since(&self, earlier: &ArenaStats) -> ArenaStats {
        ArenaStats {
            fresh: self.fresh - earlier.fresh,
            reused: self.reused - earlier.reused,
            recycled: self.recycled - earlier.recycled,
        }
    }
}

/// Reads the arena counters.
pub fn arena_stats() -> ArenaStats {
    ArenaStats {
        fresh: FRESH.load(Relaxed),
        reused: REUSED.load(Relaxed),
        recycled: RECYCLED.load(Relaxed),
    }
}

/// Zeroes the arena counters (pool contents are untouched).
pub fn reset_arena_stats() {
    FRESH.store(0, Relaxed);
    REUSED.store(0, Relaxed);
    RECYCLED.store(0, Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_classes_round_trip() {
        assert_eq!(class_of_capacity(1), 0);
        assert_eq!(class_of_capacity(2), 1);
        assert_eq!(class_of_capacity(3), 1);
        assert_eq!(class_of_capacity(1024), 10);
        // A request of n must map to a class whose buffers hold n.
        for len in [1usize, 2, 3, 7, 8, 9, 100, 1 << 20] {
            let class = class_for_request(len);
            assert!(
                (1usize << class) >= len,
                "class {class} too small for {len}"
            );
        }
    }

    #[test]
    fn recycled_buffers_are_reused() {
        crate::mode::set_kernel_mode(crate::mode::KernelMode::Fast);
        // Use an odd, large size so no other test's buffers match the class.
        let t = zeros(1, 777_777);
        let before = arena_stats();
        recycle(t);
        let t2 = take(777_777);
        let after = arena_stats();
        assert!(t2.capacity() >= 777_777);
        assert_eq!(
            after.reused - before.reused,
            1,
            "second request must hit the pool"
        );
    }

    #[test]
    fn shared_backstop_serves_cross_thread_misses() {
        crate::mode::set_kernel_mode(crate::mode::KernelMode::Fast);
        // Odd, large size so no other test's buffers land in the class.
        let t = zeros(1, 555_555);
        recycle_shared(t);
        // A fresh thread has an empty local pool, so it can only be
        // served by the shared backstop.
        let capacity = std::thread::spawn(|| take(555_555).capacity())
            .join()
            .expect("helper thread");
        assert!(
            capacity >= 555_555,
            "shared buffer not found from another thread"
        );
    }

    #[test]
    fn pooled_tensors_are_fully_initialised() {
        crate::mode::set_kernel_mode(crate::mode::KernelMode::Fast);
        let mut t = full(2, 3, 7.5);
        t.as_mut_slice().iter_mut().for_each(|x| *x = 99.0);
        recycle(t);
        let z = zeros(2, 3);
        assert!(
            z.as_slice().iter().all(|&x| x == 0.0),
            "stale data leaked from pool"
        );
        let c = copy_slice(1, 6, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(c.as_slice(), &[1., 2., 3., 4., 5., 6.]);
    }
}
