//! Parse-once environment configuration for the `nn` crate.
//!
//! Every environment input this crate honours is read here exactly
//! once, on first use, and cached for the life of the process — the
//! same discipline `par::configured_threads` (`TYPILUS_THREADS`) and
//! `mode::kernel_mode` (`TYPILUS_NN_NAIVE`) already follow. Lint rule
//! `D3` bans ad-hoc `std::env::var` reads everywhere else, so a flag's
//! spelling, parsing and default live in exactly one place.

use crate::simd::SimdWidth;
use std::sync::OnceLock;

/// The `TYPILUS_SIMD` kernel-width override, parsed once: `sse2` forces
/// the baseline tile, `avx2` requests the widened tile (clamped by
/// [`crate::simd`] if the CPU lacks it), unset/empty/`auto` means CPU
/// detection. Any other value warns once and falls back to detection.
pub fn simd_override() -> Option<SimdWidth> {
    static OVERRIDE: OnceLock<Option<SimdWidth>> = OnceLock::new();
    *OVERRIDE.get_or_init(|| {
        let raw = std::env::var("TYPILUS_SIMD").unwrap_or_default();
        match raw.trim().to_ascii_lowercase().as_str() {
            "" | "auto" => None,
            "sse2" => Some(SimdWidth::Sse2),
            "avx2" => Some(SimdWidth::Avx2),
            other => {
                eprintln!("typilus-nn: unknown TYPILUS_SIMD value {other:?} (expected sse2, avx2 or auto); using auto");
                None
            }
        }
    })
}

/// Whether `TYPILUS_ARENA_TRACE` is set: log every arena allocation
/// that misses both the thread-local pool and the shared backstop.
pub fn arena_trace() -> bool {
    static TRACE: OnceLock<bool> = OnceLock::new();
    *TRACE.get_or_init(|| std::env::var_os("TYPILUS_ARENA_TRACE").is_some())
}

/// Whether `TYPILUS_ARENA_TRACE_BT` is set: include a backtrace with
/// each [`arena_trace`] line to find the allocation site.
pub fn arena_trace_backtrace() -> bool {
    static TRACE_BT: OnceLock<bool> = OnceLock::new();
    *TRACE_BT.get_or_init(|| std::env::var_os("TYPILUS_ARENA_TRACE_BT").is_some())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_flags_are_stable_across_calls() {
        // Cached after the first read: repeated calls agree.
        assert_eq!(arena_trace(), arena_trace());
        assert_eq!(arena_trace_backtrace(), arena_trace_backtrace());
        assert_eq!(simd_override(), simd_override());
    }
}
