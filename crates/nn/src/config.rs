//! Parse-once environment configuration for the `nn` crate.
//!
//! Every environment input this crate honours is read here exactly
//! once, on first use, and cached for the life of the process — the
//! same discipline `par::configured_threads` (`TYPILUS_THREADS`) and
//! `mode::kernel_mode` (`TYPILUS_NN_NAIVE`) already follow. Lint rule
//! `D3` bans ad-hoc `std::env::var` reads everywhere else, so a flag's
//! spelling, parsing and default live in exactly one place.

use std::sync::OnceLock;

/// Whether `TYPILUS_ARENA_TRACE` is set: log every arena allocation
/// that misses both the thread-local pool and the shared backstop.
pub fn arena_trace() -> bool {
    static TRACE: OnceLock<bool> = OnceLock::new();
    *TRACE.get_or_init(|| std::env::var_os("TYPILUS_ARENA_TRACE").is_some())
}

/// Whether `TYPILUS_ARENA_TRACE_BT` is set: include a backtrace with
/// each [`arena_trace`] line to find the allocation site.
pub fn arena_trace_backtrace() -> bool {
    static TRACE_BT: OnceLock<bool> = OnceLock::new();
    *TRACE_BT.get_or_init(|| std::env::var_os("TYPILUS_ARENA_TRACE_BT").is_some())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_flags_are_stable_across_calls() {
        // Cached after the first read: repeated calls agree.
        assert_eq!(arena_trace(), arena_trace());
        assert_eq!(arena_trace_backtrace(), arena_trace_backtrace());
    }
}
