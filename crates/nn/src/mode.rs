//! Runtime kernel-mode switch.
//!
//! The compute core ships two implementations of every hot kernel: the
//! optimised path (cache-blocked matmuls, fused elementwise ops, the
//! arena allocator) and the pre-optimisation naive path, kept alive so
//! that benchmarks and equivalence tests can compare both inside one
//! process. Both paths are bit-identical on finite inputs (see
//! `DESIGN.md` §9); the switch exists for measurement, not correctness.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel implementations the tape and tensor ops use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// Blocked kernels, fused ops and the recycling arena (default).
    Fast,
    /// The pre-optimisation reference path: naive triple-loop matmuls,
    /// unfused op compositions and a fresh allocation per tensor.
    Naive,
}

// 0 = unresolved, 1 = fast, 2 = naive.
static MODE: AtomicU8 = AtomicU8::new(0);

/// The active kernel mode.
///
/// Resolved once from the `TYPILUS_NN_NAIVE` environment variable (any
/// non-empty value other than `0` selects [`KernelMode::Naive`]) unless
/// [`set_kernel_mode`] was called first.
#[inline]
pub fn kernel_mode() -> KernelMode {
    match MODE.load(Ordering::Relaxed) {
        1 => KernelMode::Fast,
        2 => KernelMode::Naive,
        _ => resolve_from_env(),
    }
}

#[cold]
fn resolve_from_env() -> KernelMode {
    let naive = std::env::var("TYPILUS_NN_NAIVE")
        .map(|v| !v.trim().is_empty() && v.trim() != "0")
        .unwrap_or(false);
    let mode = if naive {
        KernelMode::Naive
    } else {
        KernelMode::Fast
    };
    set_kernel_mode(mode);
    mode
}

/// Overrides the kernel mode process-wide (used by benchmarks and the
/// equivalence tests; regular training never calls this).
pub fn set_kernel_mode(mode: KernelMode) {
    let v = match mode {
        KernelMode::Fast => 1,
        KernelMode::Naive => 2,
    };
    MODE.store(v, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mode_is_fast_and_override_sticks() {
        // The suite never sets TYPILUS_NN_NAIVE, so resolution lands on
        // Fast; an explicit override must win afterwards.
        assert_eq!(kernel_mode(), KernelMode::Fast);
        set_kernel_mode(KernelMode::Fast);
        assert_eq!(kernel_mode(), KernelMode::Fast);
    }
}
