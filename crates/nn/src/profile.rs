//! A lightweight per-op profiler (`nn-profile` feature).
//!
//! When the crate is built with `--features nn-profile`, every hot tape
//! operation records its op kind, wall-clock nanoseconds and output
//! bytes into a global table of relaxed atomics; [`report`] renders the
//! table sorted by time. Without the feature every hook compiles to
//! nothing and [`report`] returns `None`, so call sites need no `cfg`.
//!
//! The arena's allocation counters (always on) complement this table;
//! `typilus train --profile` prints both.

/// Coarse operation categories tracked by the profiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum OpKind {
    /// `a · b` (blocked or naive).
    Matmul,
    /// `a · bᵀ`.
    MatmulT,
    /// Fused `x·W + b`.
    MatmulBias,
    /// `aᵀ · b` without a materialised transpose (the backward pass's
    /// `gw = xᵀ·g` products).
    MatmulAtB,
    /// Blocked transpose.
    Transpose,
    /// Unfused elementwise ops (add, mul, sigmoid, …).
    Elementwise,
    /// Fused gate / GRU-combine ops.
    Fused,
    /// Row gather.
    Gather,
    /// Segment sum / mean / max.
    Segment,
    /// Row / column concatenation.
    Concat,
    /// Log-softmax, row-norm, losses.
    Reduce,
    /// One whole reverse pass.
    Backward,
}

/// Number of [`OpKind`] categories.
pub const NUM_OP_KINDS: usize = 12;

impl OpKind {
    /// Display label.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Matmul => "matmul",
            OpKind::MatmulT => "matmul_t",
            OpKind::MatmulBias => "matmul_bias",
            OpKind::MatmulAtB => "matmul_at_b",
            OpKind::Transpose => "transpose",
            OpKind::Elementwise => "elementwise",
            OpKind::Fused => "fused",
            OpKind::Gather => "gather",
            OpKind::Segment => "segment",
            OpKind::Concat => "concat",
            OpKind::Reduce => "reduce",
            OpKind::Backward => "backward",
        }
    }

    fn all() -> [OpKind; NUM_OP_KINDS] {
        [
            OpKind::Matmul,
            OpKind::MatmulT,
            OpKind::MatmulBias,
            OpKind::MatmulAtB,
            OpKind::Transpose,
            OpKind::Elementwise,
            OpKind::Fused,
            OpKind::Gather,
            OpKind::Segment,
            OpKind::Concat,
            OpKind::Reduce,
            OpKind::Backward,
        ]
    }
}

#[cfg(feature = "nn-profile")]
mod imp {
    use super::{OpKind, NUM_OP_KINDS};
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);
    pub(super) static COUNTS: [AtomicU64; NUM_OP_KINDS] = [ZERO; NUM_OP_KINDS];
    pub(super) static NANOS: [AtomicU64; NUM_OP_KINDS] = [ZERO; NUM_OP_KINDS];
    pub(super) static BYTES: [AtomicU64; NUM_OP_KINDS] = [ZERO; NUM_OP_KINDS];

    /// Records one completed operation.
    #[inline]
    pub fn record(kind: OpKind, nanos: u64, bytes: u64) {
        let i = kind as usize;
        COUNTS[i].fetch_add(1, Relaxed);
        NANOS[i].fetch_add(nanos, Relaxed);
        BYTES[i].fetch_add(bytes, Relaxed);
    }
}

#[cfg(feature = "nn-profile")]
pub use imp::record;

/// Whether per-op profiling is compiled in.
pub fn profiling_enabled() -> bool {
    cfg!(feature = "nn-profile")
}

/// Zeroes every profiler counter (no-op without the feature).
pub fn reset_profile() {
    #[cfg(feature = "nn-profile")]
    {
        use std::sync::atomic::Ordering::Relaxed;
        for i in 0..NUM_OP_KINDS {
            imp::COUNTS[i].store(0, Relaxed);
            imp::NANOS[i].store(0, Relaxed);
            imp::BYTES[i].store(0, Relaxed);
        }
    }
}

/// One row of the profile table.
#[derive(Debug, Clone, Copy)]
pub struct OpProfile {
    /// Operation category.
    pub kind: OpKind,
    /// Number of recorded calls.
    pub calls: u64,
    /// Total wall-clock nanoseconds.
    pub nanos: u64,
    /// Total output bytes produced.
    pub bytes: u64,
}

/// Per-op counters sorted by total time, or `None` without the feature.
pub fn profile_rows() -> Option<Vec<OpProfile>> {
    #[cfg(feature = "nn-profile")]
    {
        use std::sync::atomic::Ordering::Relaxed;
        let mut rows: Vec<OpProfile> = OpKind::all()
            .into_iter()
            .map(|kind| OpProfile {
                kind,
                calls: imp::COUNTS[kind as usize].load(Relaxed),
                nanos: imp::NANOS[kind as usize].load(Relaxed),
                bytes: imp::BYTES[kind as usize].load(Relaxed),
            })
            .filter(|r| r.calls > 0)
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.nanos));
        Some(rows)
    }
    #[cfg(not(feature = "nn-profile"))]
    {
        let _ = OpKind::all();
        None
    }
}

/// Renders the per-op table, or `None` without the feature.
pub fn report() -> Option<String> {
    let rows = profile_rows()?;
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>10} {:>12} {:>12} {:>10}\n",
        "op", "calls", "total ms", "MB out", "ns/call"
    ));
    for r in &rows {
        out.push_str(&format!(
            "{:<12} {:>10} {:>12.3} {:>12.2} {:>10}\n",
            r.kind.name(),
            r.calls,
            r.nanos as f64 / 1e6,
            r.bytes as f64 / (1024.0 * 1024.0),
            r.nanos / r.calls.max(1),
        ));
    }
    Some(out)
}

/// Times `$body` and attributes it to `$kind` when profiling is
/// compiled in; otherwise expands to `$body` alone. `$bytes` should be
/// the output size in bytes.
macro_rules! prof {
    ($kind:expr, $bytes:expr, $body:expr) => {{
        #[cfg(feature = "nn-profile")]
        {
            let __start = std::time::Instant::now();
            let __result = $body;
            $crate::profile::record($kind, __start.elapsed().as_nanos() as u64, $bytes as u64);
            __result
        }
        #[cfg(not(feature = "nn-profile"))]
        {
            $body
        }
    }};
}

pub(crate) use prof;

/// Runs one forward-op body, recording its wall-clock time and output
/// size when the `nn-profile` feature is enabled; a plain call
/// otherwise. Lives here (not in `tape`) so all wall-clock reads stay
/// inside profiling code.
#[inline]
pub(crate) fn run_op(
    kind: OpKind,
    f: impl FnOnce() -> crate::tensor::Tensor,
) -> crate::tensor::Tensor {
    #[cfg(feature = "nn-profile")]
    {
        let start = std::time::Instant::now();
        let out = f();
        record(
            kind,
            start.elapsed().as_nanos() as u64,
            (out.len() * 4) as u64,
        );
        out
    }
    #[cfg(not(feature = "nn-profile"))]
    {
        let _ = kind;
        f()
    }
}
