//! A persistent worker pool with warm thread-local arenas.
//!
//! [`crate::par::par_map_ordered`] spawns fresh crossbeam threads on
//! every call, so each worker's thread-local [`crate::arena`] pool dies
//! with it and every parallel batch re-allocates what the sequential
//! path reuses. A [`WorkerPool`] keeps its workers — and therefore their
//! arenas — alive across calls: workers are created once (per
//! `Parallelism` resolution, in practice) and serve `par_map_ordered`-
//! shaped jobs for the lifetime of the pool.
//!
//! The execution contract is identical to `par_map_ordered`, so results
//! are bit-identical to it — and to the sequential path — at every
//! thread count:
//!
//! * work is assigned by **striding** (stripe `t` takes items
//!   `t, t + w, …` where `w = min(threads, items.len())`);
//! * each result lands in its item's **index-addressed slot**, so the
//!   output order — and any ordered reduction over it — never depends
//!   on scheduling;
//! * the calling thread runs stripe 0 itself, so a pool of `threads`
//!   logical workers spawns only `threads - 1` OS threads.
//!
//! # Panic semantics
//!
//! If a job panics on any stripe, the pool records the **first** panic
//! payload, sets a cancellation flag that makes the remaining stripes
//! stop before their next item, waits for every stripe to finish, and
//! then [`std::panic::resume_unwind`]s the captured payload on the
//! caller — so the original assertion message reaches the caller
//! intact, instead of a generic "worker thread panicked". Workers
//! survive the panic and keep serving later calls.
//!
//! # Interaction with the arena
//!
//! Worker arenas stay warm across batches, but some buffers migrate
//! between threads (a worker-computed gradient is merged — and its
//! buffer retired — on the caller). Those hand-off points recycle into
//! the process-wide shared arena pool (see
//! [`crate::arena::recycle_shared`]), which every thread's allocation
//! path falls back to, so a pooled steady-state training step performs
//! zero fresh arena allocations — matching the sequential path.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;

type Panic = Box<dyn std::any::Any + Send + 'static>;

/// A type-erased stripe job. The lifetime is erased to `'static` only
/// for transport to the worker threads: the dispatching call blocks
/// until every stripe has reported completion, so the reference never
/// outlives the closure it points to.
type Task = &'static (dyn Fn(usize) + Sync);

enum Msg {
    Run {
        task: Task,
        stripe: usize,
        done: mpsc::Sender<()>,
    },
    Shutdown,
}

/// State shared between the pool handle and its worker threads.
struct Shared {
    /// Set when a stripe panics; running stripes stop at the next item.
    cancel: AtomicBool,
    /// First panic payload of the current call, if any.
    panic: Mutex<Option<Panic>>,
}

impl Shared {
    fn record_panic(&self, payload: Panic) {
        self.cancel.store(true, SeqCst);
        let mut slot = lock_ignoring_poison(&self.panic);
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
}

/// A mutex lock that survives poisoning: the pool's own state stays
/// valid across job panics (that is the whole point of its panic
/// handling), so a poisoned lock carries no extra information here.
fn lock_ignoring_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn worker_main(rx: mpsc::Receiver<Msg>, shared: Arc<Shared>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Run { task, stripe, done } => {
                if let Err(p) = catch_unwind(AssertUnwindSafe(|| task(stripe))) {
                    shared.record_panic(p);
                }
                // The send doubles as the completion barrier; a closed
                // receiver means the caller is already gone (process
                // teardown), which is fine.
                let _ = done.send(());
            }
            Msg::Shutdown => break,
        }
    }
}

struct Inner {
    threads: usize,
    shared: Arc<Shared>,
    /// One channel per helper thread (stripe `i + 1`). Behind a mutex
    /// only so the pool handle is `Sync`; dispatch is serialized by
    /// `run_lock` anyway.
    senders: Mutex<Vec<mpsc::Sender<Msg>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Serializes calls. A call that cannot take it (re-entrant or
    /// concurrent use) falls back to inline sequential execution, which
    /// produces identical results.
    run_lock: Mutex<()>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        for tx in lock_ignoring_poison(&self.senders).iter() {
            let _ = tx.send(Msg::Shutdown);
        }
        for handle in lock_ignoring_poison(&self.handles).drain(..) {
            let _ = handle.join();
        }
    }
}

/// A long-lived pool of worker threads serving ordered parallel maps.
///
/// Cloning is cheap and shares the same workers. See the module docs
/// for the execution and panic contract.
#[derive(Clone)]
pub struct WorkerPool {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.inner.threads)
            .finish()
    }
}

/// Raw-pointer wrapper for the result slots and mutable items: each
/// stripe touches only its own indices, so all accesses are disjoint.
struct SendPtr<P>(*mut P);
impl<P> Copy for SendPtr<P> {}
impl<P> Clone for SendPtr<P> {
    fn clone(&self) -> Self {
        *self
    }
}
// SAFETY: the pointer targets a buffer owned by the dispatching call
// frame, which outlives every stripe; stripes write disjoint indices.
unsafe impl<P: Send> Send for SendPtr<P> {}
// SAFETY: shared access is read-only (`get` copies the pointer); all
// writes through it go to stripe-disjoint indices.
unsafe impl<P: Send> Sync for SendPtr<P> {}

impl<P> SendPtr<P> {
    /// Accessor (rather than field access) so closures capture the
    /// whole `Sync` wrapper, not the raw pointer inside it.
    fn get(self) -> *mut P {
        self.0
    }
}

impl WorkerPool {
    /// Creates a pool with `threads` logical workers (`threads - 1` OS
    /// threads plus the calling thread; `0` is treated as `1`).
    pub fn new(threads: usize) -> WorkerPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            cancel: AtomicBool::new(false),
            panic: Mutex::new(None),
        });
        let mut senders = Vec::with_capacity(threads - 1);
        let mut handles = Vec::with_capacity(threads - 1);
        for i in 1..threads {
            let (tx, rx) = mpsc::channel::<Msg>();
            let worker_shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("typilus-worker-{i}"))
                .spawn(move || worker_main(rx, worker_shared))
                .expect("spawn pool worker thread");
            senders.push(tx);
            handles.push(handle);
        }
        WorkerPool {
            inner: Arc::new(Inner {
                threads,
                shared,
                senders: Mutex::new(senders),
                handles: Mutex::new(handles),
                run_lock: Mutex::new(()),
            }),
        }
    }

    /// Number of logical workers (including the calling thread).
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// Applies `f` to every item on the pool's workers and returns the
    /// results in input order. Bit-identical to the sequential loop for
    /// any thread count; see the module docs for the panic contract.
    pub fn map_ordered<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let w = self.inner.threads.min(n);
        if w <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let slot_ptr = SendPtr(slots.as_mut_ptr());
        let shared = &*self.inner.shared;
        let f = &f;
        let stripe_job = move |stripe: usize| {
            let mut i = stripe;
            while i < n {
                if shared.cancel.load(SeqCst) {
                    return;
                }
                let r = f(i, &items[i]);
                // SAFETY: index i is visited by exactly one stripe
                // (i ≡ stripe mod w), so this write is disjoint from
                // every other thread's; `slots` outlives `run`.
                unsafe { *slot_ptr.get().add(i) = Some(r) };
                i += w;
            }
        };
        if !self.run(w, &stripe_job) {
            drop(slots);
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        slots
            .into_iter()
            .map(|r| r.expect("every slot is filled"))
            .collect()
    }

    /// [`WorkerPool::map_ordered`] over mutable items: `f` may consume
    /// an item's contents (e.g. take ownership of a per-file tape so it
    /// is dropped — and its arena buffers retired — on the worker that
    /// allocated them). Striding, ordering and panic semantics are
    /// identical to `map_ordered`.
    pub fn map_ordered_mut<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        let n = items.len();
        let w = self.inner.threads.min(n);
        if w <= 1 {
            return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let slot_ptr = SendPtr(slots.as_mut_ptr());
        let item_ptr = SendPtr(items.as_mut_ptr());
        let shared = &*self.inner.shared;
        let f = &f;
        let stripe_job = move |stripe: usize| {
            let mut i = stripe;
            while i < n {
                if shared.cancel.load(SeqCst) {
                    return;
                }
                // SAFETY: stripe-disjoint for the same reason as the
                // result slots — index i belongs to exactly one stripe,
                // so no two threads alias this element.
                let r = f(i, unsafe { &mut *item_ptr.get().add(i) });
                // SAFETY: same disjointness; `slots` outlives `run`.
                unsafe { *slot_ptr.get().add(i) = Some(r) };
                i += w;
            }
        };
        if !self.run(w, &stripe_job) {
            drop(slots);
            return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        slots
            .into_iter()
            .map(|r| r.expect("every slot is filled"))
            .collect()
    }

    /// Dispatches `job` across `w` stripes (helpers take 1..w, the
    /// caller runs stripe 0), blocks until all stripes finish, and
    /// re-raises the first captured panic. Returns `false` without
    /// running anything when the pool is busy (re-entrant call) — the
    /// caller then falls back to inline execution.
    fn run(&self, w: usize, job: &(dyn Fn(usize) + Sync)) -> bool {
        let inner = &self.inner;
        let Ok(_guard) = inner.run_lock.try_lock() else {
            return false;
        };
        inner.shared.cancel.store(false, SeqCst);
        *lock_ignoring_poison(&inner.shared.panic) = None;
        // SAFETY: the reference is only shared with worker threads that
        // signal `done` before this function returns, and we block on
        // every signal below — the erased lifetime cannot be outlived.
        let task: Task = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(job)
        };
        let (done_tx, done_rx) = mpsc::channel::<()>();
        {
            let senders = lock_ignoring_poison(&inner.senders);
            for stripe in 1..w {
                senders[stripe - 1]
                    .send(Msg::Run {
                        task,
                        stripe,
                        done: done_tx.clone(),
                    })
                    .expect("pool worker thread is alive");
            }
        }
        drop(done_tx);
        if let Err(p) = catch_unwind(AssertUnwindSafe(|| job(0))) {
            inner.shared.record_panic(p);
        }
        // Completion barrier: one signal per helper stripe.
        for _ in 1..w {
            done_rx.recv().expect("pool worker thread is alive");
        }
        if let Some(p) = lock_ignoring_poison(&inner.shared.panic).take() {
            drop(_guard);
            resume_unwind(p);
        }
        true
    }
}

/// A lazily created, never-persisted [`WorkerPool`] slot, for embedding
/// in serializable structs (a trained system carries its pool without
/// writing threads to disk). Serializes as a unit — zero bytes in the
/// project's binary format — and deserializes to an empty cell.
///
/// Cloning an initialized cell shares the same pool.
#[derive(Default)]
pub struct PoolCell(OnceLock<WorkerPool>);

impl PoolCell {
    /// An empty cell; the pool is created on first use.
    pub fn new() -> PoolCell {
        PoolCell::default()
    }

    /// A cell pre-populated with `pool`.
    pub fn with(pool: WorkerPool) -> PoolCell {
        let cell = OnceLock::new();
        let _ = cell.set(pool);
        PoolCell(cell)
    }

    /// The cell's pool, created with `threads()` workers on first use.
    pub fn get_or_create(&self, threads: impl FnOnce() -> usize) -> &WorkerPool {
        self.0.get_or_init(|| WorkerPool::new(threads()))
    }
}

impl Clone for PoolCell {
    fn clone(&self) -> PoolCell {
        match self.0.get() {
            Some(pool) => PoolCell::with(pool.clone()),
            None => PoolCell::new(),
        }
    }
}

impl std::fmt::Debug for PoolCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.get() {
            Some(pool) => write!(f, "PoolCell({pool:?})"),
            None => write!(f, "PoolCell(uninit)"),
        }
    }
}

impl serde::Serialize for PoolCell {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<'de> serde::Deserialize<'de> for PoolCell {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UnitVisitor;
        impl<'de> serde::de::Visitor<'de> for UnitVisitor {
            type Value = PoolCell;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a unit pool cell")
            }
            fn visit_unit<E: serde::de::Error>(self) -> Result<PoolCell, E> {
                Ok(PoolCell::new())
            }
        }
        deserializer.deserialize_unit(UnitVisitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        let items: Vec<usize> = (0..53).collect();
        for threads in [1, 2, 3, 8, 64] {
            let pool = WorkerPool::new(threads);
            let out = pool.map_ordered(&items, |i, &x| {
                assert_eq!(i, x);
                x * 3 + 1
            });
            assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn reuse_across_many_calls() {
        let pool = WorkerPool::new(4);
        let items: Vec<u64> = (0..100).collect();
        for round in 0..20u64 {
            let out = pool.map_ordered(&items, |_, &x| x + round);
            assert_eq!(out[99], 99 + round);
        }
    }

    #[test]
    fn float_reduction_is_thread_count_invariant() {
        let items: Vec<f32> = (0..200).map(|i| (i as f32).cos() * 1e-3).collect();
        let reduce = |threads: usize| -> f32 {
            let pool = WorkerPool::new(threads);
            pool.map_ordered(&items, |_, &x| x * x + 0.25).iter().sum()
        };
        let one = reduce(1);
        for threads in [2, 4, 7] {
            assert_eq!(one.to_bits(), reduce(threads).to_bits());
        }
    }

    #[test]
    fn agrees_with_spawn_per_call_primitive() {
        // The pool must be a drop-in replacement for the crossbeam
        // spawn-per-call engine it supersedes.
        let items: Vec<f32> = (0..157).map(|i| (i as f32).sin()).collect();
        for threads in [2, 3, 5] {
            let pool = WorkerPool::new(threads);
            let pooled = pool.map_ordered(&items, |i, &x| (x * i as f32).to_bits());
            let spawned =
                crate::par::par_map_ordered(&items, threads, |i, &x| (x * i as f32).to_bits());
            assert_eq!(pooled, spawned);
        }
    }

    #[test]
    fn panic_payload_reaches_the_caller() {
        let pool = WorkerPool::new(3);
        let items: Vec<usize> = (0..40).collect();
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map_ordered(&items, |i, _| {
                assert!(i != 17, "stripe assertion failed on item {i}");
                i
            })
        }))
        .expect_err("the panic must propagate");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("stripe assertion failed on item 17"),
            "original payload lost: {msg:?}"
        );
        // The pool survives and keeps serving.
        let out = pool.map_ordered(&items, |_, &x| x);
        assert_eq!(out, items);
    }

    #[test]
    fn caller_stripe_panic_also_propagates() {
        // Stripe 0 runs on the calling thread; its payload must take the
        // same path as a worker's.
        let pool = WorkerPool::new(2);
        let items: Vec<usize> = (0..8).collect();
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map_ordered(&items, |i, _| {
                assert!(i != 0, "caller stripe boom");
                i
            })
        }))
        .expect_err("the panic must propagate");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("caller stripe boom"),
            "original payload lost: {msg:?}"
        );
    }

    #[test]
    fn map_ordered_mut_consumes_items() {
        let pool = WorkerPool::new(3);
        let mut items: Vec<Option<String>> = (0..31).map(|i| Some(format!("item-{i}"))).collect();
        let out = pool.map_ordered_mut(&mut items, |i, slot| {
            let taken = slot.take().expect("each slot visited once");
            format!("{taken}!{i}")
        });
        assert!(items.iter().all(Option::is_none));
        assert_eq!(out[30], "item-30!30");
    }

    #[test]
    fn reentrant_use_falls_back_to_inline() {
        let pool = WorkerPool::new(4);
        let outer: Vec<usize> = (0..6).collect();
        let inner: Vec<usize> = (0..5).collect();
        let out = pool.map_ordered(&outer, |_, &x| {
            // A nested call would deadlock a naive implementation; the
            // pool detects it and runs inline.
            let nested: usize = pool.map_ordered(&inner, |_, &y| y).iter().sum();
            x * 100 + nested
        });
        assert_eq!(out, outer.iter().map(|x| x * 100 + 10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let pool = WorkerPool::new(4);
        let out: Vec<u32> = pool.map_ordered(&[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
        let out = pool.map_ordered(&[7u32], |_, &x| x * 2);
        assert_eq!(out, vec![14]);
    }

    #[test]
    fn pool_cell_round_trips_as_unit() {
        let cell = PoolCell::with(WorkerPool::new(2));
        assert_eq!(cell.get_or_create(|| 9).threads(), 2, "pre-set pool wins");
        let empty = PoolCell::new();
        assert_eq!(empty.get_or_create(|| 3).threads(), 3, "lazy creation");
    }
}
