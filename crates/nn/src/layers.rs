//! Reusable neural layers: linear projections, GRU cells and embeddings.
//!
//! A layer owns [`ParamId`]s into a shared [`ParamSet`]; applying the
//! layer records operations on a [`Tape`].

use crate::params::{ParamId, ParamSet};
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense layer `y = x·W + b`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    /// Input width.
    pub in_dim: usize,
    /// Output width.
    pub out_dim: usize,
}

impl Linear {
    /// Creates a linear layer with bias.
    pub fn new<R: Rng>(
        params: &mut ParamSet,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Linear {
        let w = params.add(format!("{name}.w"), Tensor::glorot(in_dim, out_dim, rng));
        let b = params.add(format!("{name}.b"), Tensor::zeros(1, out_dim));
        Linear {
            w,
            b: Some(b),
            in_dim,
            out_dim,
        }
    }

    /// Creates a linear layer without bias (e.g. GGNN message functions).
    pub fn new_no_bias<R: Rng>(
        params: &mut ParamSet,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Linear {
        let w = params.add(format!("{name}.w"), Tensor::glorot(in_dim, out_dim, rng));
        Linear {
            w,
            b: None,
            in_dim,
            out_dim,
        }
    }

    /// Applies the layer to a `[n, in_dim]` batch. The recorded matmul
    /// node backpropagates `dW = xᵀ·g` through the fused `aᵀ·b` kernel
    /// (no transpose of the batch is ever materialised).
    pub fn apply(&self, tape: &mut Tape<'_>, x: Var) -> Var {
        let w = tape.param(self.w);
        match self.b {
            Some(b) => {
                let b = tape.param(b);
                tape.matmul_bias(x, w, b)
            }
            None => tape.matmul(x, w),
        }
    }
}

/// A gated recurrent unit cell (Cho et al., 2014), the `f_t` of the GGNN.
///
/// `h' = (1-z)⊙h + z⊙ĥ` with `z = σ(x·Wz + h·Uz + bz)`,
/// `r = σ(x·Wr + h·Ur + br)`, `ĥ = tanh(x·Wh + (r⊙h)·Uh + bh)`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GruCell {
    wz: ParamId,
    uz: ParamId,
    bz: ParamId,
    wr: ParamId,
    ur: ParamId,
    br: ParamId,
    wh: ParamId,
    uh: ParamId,
    bh: ParamId,
    /// Input width.
    pub in_dim: usize,
    /// Hidden width.
    pub hidden_dim: usize,
}

impl GruCell {
    /// Creates a GRU cell.
    pub fn new<R: Rng>(
        params: &mut ParamSet,
        name: &str,
        in_dim: usize,
        hidden_dim: usize,
        rng: &mut R,
    ) -> GruCell {
        let mut mat = |suffix: &str, r: usize, c: usize, rng: &mut R| {
            params.add(format!("{name}.{suffix}"), Tensor::glorot(r, c, rng))
        };
        let wz = mat("wz", in_dim, hidden_dim, rng);
        let uz = mat("uz", hidden_dim, hidden_dim, rng);
        let wr = mat("wr", in_dim, hidden_dim, rng);
        let ur = mat("ur", hidden_dim, hidden_dim, rng);
        let wh = mat("wh", in_dim, hidden_dim, rng);
        let uh = mat("uh", hidden_dim, hidden_dim, rng);
        let bz = params.add(format!("{name}.bz"), Tensor::zeros(1, hidden_dim));
        let br = params.add(format!("{name}.br"), Tensor::zeros(1, hidden_dim));
        let bh = params.add(format!("{name}.bh"), Tensor::zeros(1, hidden_dim));
        GruCell {
            wz,
            uz,
            bz,
            wr,
            ur,
            br,
            wh,
            uh,
            bh,
            in_dim,
            hidden_dim,
        }
    }

    /// One step: inputs `x` `[n, in_dim]`, state `h` `[n, hidden_dim]`.
    ///
    /// Each gate is one fused tape node (`σ(x·W + h·U + b)` via
    /// [`Tape::add2_row_sigmoid`], the candidate via
    /// [`Tape::add2_row_tanh`]) and the state blend is a single
    /// [`Tape::gru_combine`], so a step records 12 nodes instead of 21
    /// and skips nine intermediate tensors.
    pub fn step(&self, tape: &mut Tape<'_>, x: Var, h: Var) -> Var {
        let wz = tape.param(self.wz);
        let uz = tape.param(self.uz);
        let bz = tape.param(self.bz);
        let xz = tape.matmul(x, wz);
        let hz = tape.matmul(h, uz);
        let z = tape.add2_row_sigmoid(xz, hz, bz);

        let wr = tape.param(self.wr);
        let ur = tape.param(self.ur);
        let br = tape.param(self.br);
        let xr = tape.matmul(x, wr);
        let hr = tape.matmul(h, ur);
        let r = tape.add2_row_sigmoid(xr, hr, br);

        let wh = tape.param(self.wh);
        let uh = tape.param(self.uh);
        let bh = tape.param(self.bh);
        let xh = tape.matmul(x, wh);
        let rh = tape.mul(r, h);
        let rhu = tape.matmul(rh, uh);
        let cand = tape.add2_row_tanh(xh, rhu, bh);

        // h' = (1 - z) ⊙ h + z ⊙ cand  =  h - z⊙h + z⊙cand
        tape.gru_combine(z, h, cand)
    }
}

/// An embedding table with mean pooling over id groups, used for the
/// subtoken-averaged initial node states of the paper (Eq. 7).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Embedding {
    table: ParamId,
    /// Vocabulary size.
    pub vocab: usize,
    /// Embedding width.
    pub dim: usize,
}

impl Embedding {
    /// Creates an embedding table of `vocab × dim`.
    pub fn new<R: Rng>(
        params: &mut ParamSet,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut R,
    ) -> Embedding {
        let table = params.add(
            format!("{name}.table"),
            Tensor::uniform(vocab, dim, 0.1, rng),
        );
        Embedding { table, vocab, dim }
    }

    /// Looks up rows for `ids`, producing `[ids.len(), dim]`.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of range.
    pub fn lookup(&self, tape: &mut Tape<'_>, ids: &[usize]) -> Var {
        let t = tape.param(self.table);
        tape.gather(t, ids)
    }

    /// Mean-pools token embeddings into group embeddings: `ids[i]`
    /// contributes to group `groups[i]`; produces `[num_groups, dim]`.
    /// Groups with no ids get zero rows.
    pub fn lookup_mean(
        &self,
        tape: &mut Tape<'_>,
        ids: &[usize],
        groups: &[usize],
        num_groups: usize,
    ) -> Var {
        if ids.is_empty() {
            return tape.input(Tensor::zeros(num_groups, self.dim));
        }
        let rows = self.lookup(tape, ids);
        tape.segment_mean(rows, groups, num_groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = ParamSet::new();
        let lin = Linear::new(&mut params, "l", 4, 3, &mut rng);
        let mut tape = Tape::new(&params);
        let x = tape.input(Tensor::zeros(5, 4));
        let y = lin.apply(&mut tape, x);
        assert_eq!(tape.value(y).shape(), (5, 3));
    }

    #[test]
    fn gru_step_shapes_and_gradients() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut params = ParamSet::new();
        let gru = GruCell::new(&mut params, "g", 4, 6, &mut rng);
        let mut tape = Tape::new(&params);
        let x = tape.input(Tensor::glorot(3, 4, &mut rng));
        let h0 = tape.input(Tensor::zeros(3, 6));
        let h1 = gru.step(&mut tape, x, h0);
        let h2 = gru.step(&mut tape, x, h1);
        assert_eq!(tape.value(h2).shape(), (3, 6));
        let loss = tape.mean_all(h2);
        let grads = tape.backward(loss);
        // All nine GRU parameters receive gradients.
        let with_grads = params
            .iter()
            .filter(|(id, _, _)| grads.get(*id).is_some())
            .count();
        assert_eq!(with_grads, 9);
    }

    #[test]
    fn gru_state_stays_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut params = ParamSet::new();
        let gru = GruCell::new(&mut params, "g", 2, 4, &mut rng);
        let mut tape = Tape::new(&params);
        let x = tape.input(Tensor::full(1, 2, 10.0));
        let mut h = tape.input(Tensor::zeros(1, 4));
        for _ in 0..50 {
            h = gru.step(&mut tape, x, h);
        }
        assert!(tape
            .value(h)
            .as_slice()
            .iter()
            .all(|v| v.abs() <= 1.0 + 1e-5));
    }

    #[test]
    fn embedding_mean_pooling() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut params = ParamSet::new();
        let emb = Embedding::new(&mut params, "e", 10, 3, &mut rng);
        let mut tape = Tape::new(&params);
        // Group 0: ids 1 and 2; group 1: id 3; group 2: empty.
        let pooled = emb.lookup_mean(&mut tape, &[1, 2, 3], &[0, 0, 1], 3);
        assert_eq!(tape.value(pooled).shape(), (3, 3));
        assert_eq!(tape.value(pooled).row(2), &[0.0, 0.0, 0.0]);
        let e1 = params.get(ParamId(0)).row(1).to_vec();
        let e2 = params.get(ParamId(0)).row(2).to_vec();
        for c in 0..3 {
            let expect = (e1[c] + e2[c]) / 2.0;
            assert!((tape.value(pooled).get(0, c) - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn embedding_empty_lookup() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut params = ParamSet::new();
        let emb = Embedding::new(&mut params, "e", 4, 2, &mut rng);
        let mut tape = Tape::new(&params);
        let pooled = emb.lookup_mean(&mut tape, &[], &[], 2);
        assert_eq!(tape.value(pooled).shape(), (2, 2));
        assert_eq!(tape.value(pooled).sum(), 0.0);
    }
}
