//! Optimizers: Adam (the paper's stack uses Adam-family training) and
//! plain SGD for tests and ablations.

use crate::params::{Gradients, ParamId, ParamSet};
use crate::pool::WorkerPool;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One detached per-parameter Adam update: the parameter, its two
/// moment tensors and its gradient, moved out of their owners so a
/// worker thread can update them without touching shared state.
struct AdamTask {
    id: ParamId,
    p: Tensor,
    m: Tensor,
    v: Tensor,
    g: Tensor,
}

/// Adam optimizer (Kingma & Ba, 2015).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Max global gradient norm; gradients are rescaled above it.
    pub clip_norm: Option<f32>,
    t: u64,
    m: BTreeMap<ParamId, Tensor>,
    v: BTreeMap<ParamId, Tensor>,
}

impl Adam {
    /// Creates Adam with standard hyperparameters and the given rate.
    pub fn new(lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm: Some(5.0),
            t: 0,
            m: BTreeMap::new(),
            v: BTreeMap::new(),
        }
    }

    /// Applies one update step from `grads` onto `params`.
    pub fn step(&mut self, params: &mut ParamSet, grads: Gradients) {
        self.step_impl(params, grads, None);
    }

    /// Like [`Adam::step`], but spreads the per-parameter elementwise
    /// updates across `pool`'s workers. Every scalar's update reads and
    /// writes only its own parameter/moment/gradient slots, so splitting
    /// the work by parameter reorders no floating-point operation: the
    /// result is byte-identical to the sequential [`Adam::step`] at any
    /// worker count. Gradient clipping — a global reduction whose
    /// summation order matters — stays sequential.
    pub fn step_pooled(&mut self, params: &mut ParamSet, grads: Gradients, pool: &WorkerPool) {
        self.step_impl(params, grads, Some(pool));
    }

    fn step_impl(
        &mut self,
        params: &mut ParamSet,
        mut grads: Gradients,
        pool: Option<&WorkerPool>,
    ) {
        if let Some(max_norm) = self.clip_norm {
            let norm = grads.global_norm();
            if norm > max_norm {
                grads.scale(max_norm / norm);
            }
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        // Detach one owned task per parameter, in ascending id order:
        // moments and parameter tensors are moved out (the parameter
        // slot is left holding an empty, allocation-free placeholder)
        // and restored in the same order after the updates complete.
        let mut tasks: Vec<AdamTask> = grads
            .into_pairs()
            .map(|(id, g)| {
                let shape = g.shape();
                let m = self
                    .m
                    .remove(&id)
                    .unwrap_or_else(|| Tensor::zeros(shape.0, shape.1));
                let v = self
                    .v
                    .remove(&id)
                    .unwrap_or_else(|| Tensor::zeros(shape.0, shape.1));
                let p = std::mem::replace(params.get_mut(id), Tensor::zeros(0, 0));
                debug_assert_eq!(p.shape(), shape, "gradient shape mismatch for {id:?}");
                AdamTask { id, p, m, v, g }
            })
            .collect();
        let (lr, beta1, beta2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let update = |t: &mut AdamTask| {
            for i in 0..t.g.len() {
                let gi = t.g.as_slice()[i];
                let mi = beta1 * t.m.as_slice()[i] + (1.0 - beta1) * gi;
                let vi = beta2 * t.v.as_slice()[i] + (1.0 - beta2) * gi * gi;
                t.m.as_mut_slice()[i] = mi;
                t.v.as_mut_slice()[i] = vi;
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                t.p.as_mut_slice()[i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        };
        match pool {
            Some(pool) if pool.threads() > 1 && tasks.len() > 1 => {
                pool.map_ordered_mut(&mut tasks, |_, t| update(t));
            }
            _ => {
                for t in &mut tasks {
                    update(t);
                }
            }
        }
        // Reattach in the same ascending id order, and return the spent
        // gradient buffers to the shared arena pool (they were
        // allocated on worker threads; see `Gradients::recycle`).
        for t in tasks {
            *params.get_mut(t.id) = t.p;
            self.m.insert(t.id, t.m);
            self.v.insert(t.id, t.v);
            crate::arena::recycle_shared(t.g);
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates SGD with the given rate.
    pub fn new(lr: f32) -> Sgd {
        Sgd { lr }
    }

    /// Applies one update step.
    pub fn step(&self, params: &mut ParamSet, grads: &Gradients) {
        for (id, g) in grads.iter() {
            let p = params.get_mut(id);
            for i in 0..g.len() {
                p.as_mut_slice()[i] -= self.lr * g.as_slice()[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimises (w - 3)^2 and expects convergence to 3.
    fn quadratic_descent(mut step: impl FnMut(&mut ParamSet, Gradients)) -> f32 {
        let mut params = ParamSet::new();
        let id = params.add("w", Tensor::scalar(0.0));
        for _ in 0..500 {
            let grads = {
                let mut tape = Tape::new(&params);
                let w = tape.param(id);
                let c = tape.add_scalar(w, -3.0);
                let sq = tape.mul(c, c);
                let loss = tape.sum_all(sq);
                tape.backward(loss)
            };
            step(&mut params, grads);
        }
        params.get(id).item()
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.05);
        let w = quadratic_descent(|p, g| adam.step(p, g));
        assert!((w - 3.0).abs() < 0.05, "w = {w}");
        assert_eq!(adam.steps(), 500);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let sgd = Sgd::new(0.05);
        let w = quadratic_descent(|p, g| sgd.step(p, &g));
        assert!((w - 3.0).abs() < 0.05, "w = {w}");
    }

    #[test]
    fn pooled_step_is_bitwise_identical_to_sequential() {
        let mut seq_params = ParamSet::new();
        let ids: Vec<ParamId> = (0..5)
            .map(|k| seq_params.add(format!("w{k}"), Tensor::full(3, 2, 0.5 + k as f32)))
            .collect();
        let mut pooled_params = seq_params.clone();
        let mut seq = Adam::new(0.01);
        let mut pooled = seq.clone();
        let pool = WorkerPool::new(3);
        for step_no in 0..5 {
            let mut gs = Gradients::new();
            let mut gp = Gradients::new();
            for (k, &id) in ids.iter().enumerate() {
                let g = Tensor::full(3, 2, 0.25 * (k as f32 + 1.0) - step_no as f32 * 0.1);
                gs.accumulate(id, g.clone());
                gp.accumulate(id, g);
            }
            seq.step(&mut seq_params, gs);
            pooled.step_pooled(&mut pooled_params, gp, &pool);
        }
        assert_eq!(seq.steps(), pooled.steps());
        for &id in &ids {
            let a: Vec<u32> = seq_params
                .get(id)
                .as_slice()
                .iter()
                .map(|x| x.to_bits())
                .collect();
            let b: Vec<u32> = pooled_params
                .get(id)
                .as_slice()
                .iter()
                .map(|x| x.to_bits())
                .collect();
            assert_eq!(a, b, "parameter {id:?} diverged");
        }
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut params = ParamSet::new();
        let id = params.add("w", Tensor::scalar(0.0));
        let mut grads = Gradients::new();
        grads.accumulate(id, Tensor::scalar(1e6));
        let mut adam = Adam::new(0.1);
        adam.step(&mut params, grads);
        // A huge gradient must not produce a huge step.
        assert!(params.get(id).item().abs() < 1.0);
    }
}
