//! Optimizers: Adam (the paper's stack uses Adam-family training) and
//! plain SGD for tests and ablations.

use crate::params::{Gradients, ParamId, ParamSet};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Adam optimizer (Kingma & Ba, 2015).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Max global gradient norm; gradients are rescaled above it.
    pub clip_norm: Option<f32>,
    t: u64,
    m: BTreeMap<ParamId, Tensor>,
    v: BTreeMap<ParamId, Tensor>,
}

impl Adam {
    /// Creates Adam with standard hyperparameters and the given rate.
    pub fn new(lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm: Some(5.0),
            t: 0,
            m: BTreeMap::new(),
            v: BTreeMap::new(),
        }
    }

    /// Applies one update step from `grads` onto `params`.
    pub fn step(&mut self, params: &mut ParamSet, mut grads: Gradients) {
        if let Some(max_norm) = self.clip_norm {
            let norm = grads.global_norm();
            if norm > max_norm {
                grads.scale(max_norm / norm);
            }
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (id, g) in grads.iter() {
            let shape = g.shape();
            let m = self
                .m
                .entry(id)
                .or_insert_with(|| Tensor::zeros(shape.0, shape.1));
            let v = self
                .v
                .entry(id)
                .or_insert_with(|| Tensor::zeros(shape.0, shape.1));
            let p = params.get_mut(id);
            debug_assert_eq!(p.shape(), shape, "gradient shape mismatch for {id:?}");
            for i in 0..g.len() {
                let gi = g.as_slice()[i];
                let mi = self.beta1 * m.as_slice()[i] + (1.0 - self.beta1) * gi;
                let vi = self.beta2 * v.as_slice()[i] + (1.0 - self.beta2) * gi * gi;
                m.as_mut_slice()[i] = mi;
                v.as_mut_slice()[i] = vi;
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                p.as_mut_slice()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
        // The gradients are spent; return their buffers to the arena so
        // the next step's backward pass reuses them.
        grads.recycle();
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates SGD with the given rate.
    pub fn new(lr: f32) -> Sgd {
        Sgd { lr }
    }

    /// Applies one update step.
    pub fn step(&self, params: &mut ParamSet, grads: &Gradients) {
        for (id, g) in grads.iter() {
            let p = params.get_mut(id);
            for i in 0..g.len() {
                p.as_mut_slice()[i] -= self.lr * g.as_slice()[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimises (w - 3)^2 and expects convergence to 3.
    fn quadratic_descent(mut step: impl FnMut(&mut ParamSet, Gradients)) -> f32 {
        let mut params = ParamSet::new();
        let id = params.add("w", Tensor::scalar(0.0));
        for _ in 0..500 {
            let grads = {
                let mut tape = Tape::new(&params);
                let w = tape.param(id);
                let c = tape.add_scalar(w, -3.0);
                let sq = tape.mul(c, c);
                let loss = tape.sum_all(sq);
                tape.backward(loss)
            };
            step(&mut params, grads);
        }
        params.get(id).item()
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.05);
        let w = quadratic_descent(|p, g| adam.step(p, g));
        assert!((w - 3.0).abs() < 0.05, "w = {w}");
        assert_eq!(adam.steps(), 500);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let sgd = Sgd::new(0.05);
        let w = quadratic_descent(|p, g| sgd.step(p, &g));
        assert!((w - 3.0).abs() < 0.05, "w = {w}");
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut params = ParamSet::new();
        let id = params.add("w", Tensor::scalar(0.0));
        let mut grads = Gradients::new();
        grads.accumulate(id, Tensor::scalar(1e6));
        let mut adam = Adam::new(0.1);
        adam.step(&mut params, grads);
        // A huge gradient must not produce a huge step.
        assert!(params.get(id).item().abs() < 1.0);
    }
}
