//! Runtime SIMD-width selection for the matmul micro-kernels.
//!
//! The register-tiled kernels in [`crate::tensor`] are generic over
//! their `MR×NR` accumulator tile. At the baseline width the tile is
//! sized for the SSE register file (`4×8`); where the CPU reports AVX2
//! the same generic kernel is instantiated with a twice-as-wide tile
//! (`4×16`) inside a `#[target_feature(enable = "avx2")]` function, so
//! LLVM maps each accumulator row to `ymm` registers.
//!
//! The width is selected once per process — from the CPU, or from the
//! `TYPILUS_SIMD` override parsed in [`crate::config`] — and applies to
//! every kernel in every mode ("all modes or none"). Widening the tile
//! is bit-safe by construction: the tile shape only changes *which*
//! output elements are computed together, never the order of any one
//! element's `k` accumulation chain, and the AVX2 instantiation uses
//! plain `vmulps`/`vaddps` (rustc never enables floating-point
//! contraction, and the `avx2` target feature does not include FMA), so
//! every per-element rounding sequence is identical to the scalar
//! baseline. `kernel_bitident` proves this against the naive reference
//! at every selectable width.

use std::sync::atomic::{AtomicU8, Ordering};

/// Register-tile width family used by the matmul kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdWidth {
    /// Baseline `MR=4 × NR=8` tile (fits the SSE2 register file; also
    /// the portable fallback on non-x86 targets).
    Sse2,
    /// Widened `MR=4 × NR=16` tile for CPUs with AVX2 (no FMA — fused
    /// multiply-add would change rounding and break bit-exactness).
    Avx2,
}

impl SimdWidth {
    /// Display label (used by benchmarks and diagnostics).
    pub fn name(self) -> &'static str {
        match self {
            SimdWidth::Sse2 => "sse2",
            SimdWidth::Avx2 => "avx2",
        }
    }
}

// 0 = unresolved, 1 = sse2, 2 = avx2.
static WIDTH: AtomicU8 = AtomicU8::new(0);

/// Whether this CPU can run the widened AVX2 tile.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Every width the dispatcher can select on this CPU, narrowest first.
/// Equivalence tests iterate this to prove bit-identity at each one.
pub fn available_widths() -> Vec<SimdWidth> {
    let mut widths = vec![SimdWidth::Sse2];
    if avx2_available() {
        widths.push(SimdWidth::Avx2);
    }
    widths
}

/// The active kernel tile width.
///
/// Resolved once: an explicit [`set_simd_width`] wins; otherwise the
/// `TYPILUS_SIMD` override (see [`crate::config::simd_override`]),
/// clamped to what the CPU supports; otherwise CPU detection.
#[inline]
pub fn simd_width() -> SimdWidth {
    match WIDTH.load(Ordering::Relaxed) {
        1 => SimdWidth::Sse2,
        2 => SimdWidth::Avx2,
        _ => resolve(),
    }
}

#[cold]
fn resolve() -> SimdWidth {
    let width = match crate::config::simd_override() {
        Some(SimdWidth::Avx2) if !avx2_available() => {
            eprintln!(
                "typilus-nn: TYPILUS_SIMD=avx2 requested but AVX2 is unavailable; using sse2"
            );
            SimdWidth::Sse2
        }
        Some(requested) => requested,
        None => {
            if avx2_available() {
                SimdWidth::Avx2
            } else {
                SimdWidth::Sse2
            }
        }
    };
    set_simd_width(width);
    width
}

/// Overrides the kernel tile width process-wide (benchmarks and the
/// per-width equivalence tests; regular training never calls this).
///
/// # Panics
///
/// Panics if `width` requires a CPU feature this machine lacks — the
/// dispatcher must never be able to select an unrunnable kernel.
pub fn set_simd_width(width: SimdWidth) {
    assert!(
        width != SimdWidth::Avx2 || avx2_available(),
        "SimdWidth::Avx2 requested on a CPU without AVX2"
    );
    let v = match width {
        SimdWidth::Sse2 => 1,
        SimdWidth::Avx2 => 2,
    };
    WIDTH.store(v, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_is_stable_and_override_sticks() {
        let first = simd_width();
        assert_eq!(first, simd_width());
        set_simd_width(SimdWidth::Sse2);
        assert_eq!(simd_width(), SimdWidth::Sse2);
        // Restore auto-detected width for the rest of the process.
        set_simd_width(first);
    }

    #[test]
    fn available_widths_start_at_baseline() {
        let widths = available_widths();
        assert_eq!(widths[0], SimdWidth::Sse2);
        assert_eq!(widths.contains(&SimdWidth::Avx2), avx2_available());
    }
}
