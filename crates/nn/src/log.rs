//! Warn-once structured logging.
//!
//! Long-lived processes (the serve daemon foremost) can hit the same
//! degraded-but-survivable condition thousands of times — a missing
//! index sidecar, a failed overlay rebuild. Raw `eprintln!`s would
//! flood stderr and make `detcheck.sh`-style output comparisons
//! unstable, so every such warning goes through [`warn_once`]: the
//! first occurrence of a *key* prints one structured line, repeats are
//! counted silently.
//!
//! The key names the condition class (`"space.rebuild"`,
//! `"persist.sidecar-missing"`); the message carries the
//! instance detail. Keys are process-global: a condition warns once per
//! process lifetime, not once per call site.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Emitted keys with their occurrence counts. A `BTreeMap` so
/// [`warning_counts`] reports in deterministic key order.
static EMITTED: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());

fn registry() -> std::sync::MutexGuard<'static, BTreeMap<String, u64>> {
    // A panic while holding the lock can only poison a map of
    // counters; the data is still coherent, so keep serving it.
    EMITTED.lock().unwrap_or_else(|e| e.into_inner())
}

/// Logs `message` to stderr the *first* time `key` is seen in this
/// process; later occurrences only bump the key's counter. Returns
/// whether the line was actually printed.
///
/// The printed line is structured as `typilus: warning[<key>]:
/// <message>` so harnesses can match on the stable key rather than the
/// free-form message.
pub fn warn_once(key: &str, message: &str) -> bool {
    let mut emitted = registry();
    let count = emitted.entry(key.to_string()).or_insert(0);
    *count += 1;
    if *count == 1 {
        eprintln!("typilus: warning[{key}]: {message}");
        true
    } else {
        false
    }
}

/// How many times `key` has been raised (0 if never).
pub fn warning_count(key: &str) -> u64 {
    registry().get(key).copied().unwrap_or(0)
}

/// Every raised key with its occurrence count, in key order — the
/// serve daemon's `stats` reply includes this so suppressed repeats
/// stay observable.
pub fn warning_counts() -> Vec<(String, u64)> {
    registry().iter().map(|(k, &v)| (k.clone(), v)).collect()
}

/// Clears the emitted-key registry so the next [`warn_once`] per key
/// prints again. Test support; production code never needs it.
pub fn reset_warnings() {
    registry().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global, so tests that reset it must not
    /// interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn first_occurrence_prints_then_counts() {
        let _guard = serial();
        reset_warnings();
        assert!(warn_once("test.condition", "first"));
        assert!(!warn_once("test.condition", "second"));
        assert!(!warn_once("test.condition", "third"));
        assert_eq!(warning_count("test.condition"), 3);
        assert!(warn_once("test.other", "different key prints"));
        assert_eq!(warning_count("test.never"), 0);
    }

    #[test]
    fn reset_reopens_keys() {
        let _guard = serial();
        reset_warnings();
        assert!(warn_once("test.reset", "a"));
        reset_warnings();
        assert!(warn_once("test.reset", "b"));
    }

    #[test]
    fn counts_come_back_in_key_order() {
        let _guard = serial();
        reset_warnings();
        warn_once("test.b", "x");
        warn_once("test.a", "y");
        warn_once("test.a", "z");
        let counts = warning_counts();
        assert_eq!(
            counts,
            vec![("test.a".to_string(), 2), ("test.b".to_string(), 1)]
        );
    }
}
