//! A minimal dense 2-D `f32` tensor.
//!
//! Everything in the reproduction's neural stack is a matrix: batches are
//! rows, features are columns, scalars are `1×1`. The type deliberately
//! supports only what the models need; it is not a general ndarray.
//!
//! The matrix kernels ([`Tensor::matmul`], [`Tensor::matmul_t`],
//! [`Tensor::transposed`]) dispatch on [`crate::mode::kernel_mode`]:
//! the default fast path is cache-blocked and register-tiled with
//! arena-backed outputs, while [`reference`] keeps the pre-optimisation
//! naive kernels alive for benchmarks and bit-equivalence tests. Both
//! paths produce bit-identical results on finite inputs: the blocked
//! kernel accumulates every output element over `k` in ascending order,
//! exactly like the naive triple loop (see `DESIGN.md` §9).

use crate::arena;
use crate::mode::{kernel_mode, KernelMode};
use crate::simd::{simd_width, SimdWidth};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Rows of `out` computed together in the baseline matmul micro-kernel
/// (register tile height).
const MR: usize = 4;
/// Columns of `out` computed together in the baseline micro-kernel: the
/// `MR×NR` accumulator block (32 floats) fits the SSE register file, so
/// each output element is read and written exactly once however large
/// `k` is.
const NR: usize = 8;
/// Accumulator columns of the widened AVX2 tile: two `ymm` registers
/// per row, eight for the whole `4×16` block, leaving room for the
/// `b` strip and the broadcast `a` value.
const NR_AVX2: usize = 16;
/// Square tile edge for the blocked transpose.
const TB: usize = 32;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl Tensor {
    /// Creates a tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        Tensor {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Tensor {
        Tensor {
            data: vec![value; rows * cols],
            rows,
            cols,
        }
    }

    /// Creates a `1×1` scalar tensor.
    pub fn scalar(value: f32) -> Tensor {
        Tensor {
            data: vec![value],
            rows: 1,
            cols: 1,
        }
    }

    /// Creates a tensor from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Tensor {
        assert_eq!(data.len(), rows * cols, "tensor data length mismatch");
        Tensor { data, rows, cols }
    }

    /// Glorot/Xavier-uniform initialisation.
    pub fn glorot<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Tensor {
        let limit = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        Tensor { data, rows, cols }
    }

    /// Uniform initialisation in `[-limit, limit]`.
    pub fn uniform<R: Rng>(rows: usize, cols: usize, limit: f32, rng: &mut R) -> Tensor {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        Tensor { data, rows, cols }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    // lint: allow(S3) — r < rows and c < cols is the Tensor shape contract; a violation is a model bug, not request data
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// The underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, yielding its backing buffer (for the arena).
    pub(crate) fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable access to one row.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single element of a `1×1` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not `1×1`.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() requires a scalar tensor");
        self.data[0]
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        match kernel_mode() {
            KernelMode::Naive => reference::matmul(self, other),
            KernelMode::Fast => {
                let mut out = arena::zeros(self.rows, other.cols);
                matmul_into(
                    &self.data,
                    &other.data,
                    &mut out.data,
                    self.rows,
                    self.cols,
                    other.cols,
                );
                out
            }
        }
    }

    /// Matrix product `selfᵀ · other` without materialising the
    /// transpose — the backward pass's `gw = xᵀ·g` shape. Each output
    /// element accumulates over the shared row dimension in ascending
    /// order, exactly like `self.transposed().matmul(other)`, so the
    /// result is bit-identical to that composition in both kernel
    /// modes.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn matmul_at_b(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows,
            other.rows,
            "matmul_at_b shape mismatch: {:?}ᵀ x {:?}",
            self.shape(),
            other.shape()
        );
        match kernel_mode() {
            KernelMode::Naive => reference::matmul_at_b(self, other),
            KernelMode::Fast => {
                let mut out = arena::zeros(self.cols, other.cols);
                matmul_at_b_into(
                    &self.data,
                    &other.data,
                    &mut out.data,
                    self.rows,
                    self.cols,
                    other.cols,
                );
                out
            }
        }
    }

    /// Matrix product `self · otherᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if column counts differ.
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols,
            other.cols,
            "matmul_t shape mismatch: {:?} x {:?}ᵀ",
            self.shape(),
            other.shape()
        );
        match kernel_mode() {
            KernelMode::Naive => reference::matmul_t(self, other),
            KernelMode::Fast => {
                // Pack Bᵀ once (blocked transpose into an arena buffer),
                // then run the same blocked kernel; the packed panel
                // returns to the pool immediately. Per output element
                // this accumulates over k in ascending order — the same
                // order as the naive row·row dot product.
                let packed = transpose_blocked(other);
                let mut out = arena::zeros(self.rows, other.rows);
                matmul_into(
                    &self.data,
                    &packed.data,
                    &mut out.data,
                    self.rows,
                    self.cols,
                    other.rows,
                );
                arena::recycle(packed);
                out
            }
        }
    }

    /// Transpose.
    pub fn transposed(&self) -> Tensor {
        match kernel_mode() {
            KernelMode::Naive => reference::transposed(self),
            KernelMode::Fast => transpose_blocked(self),
        }
    }

    /// Elementwise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place multiplication by a scalar.
    pub fn scale_assign(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Elementwise map, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// L1 distance between two rows of (possibly different) tensors.
    ///
    /// # Panics
    ///
    /// Panics if the rows have different widths.
    pub fn l1_row_distance(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "row width mismatch");
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

/// `out[m×n] += a[m×k] · b[k×n]`, cache-blocked and register-tiled,
/// generic over the `MRX×NRX` accumulator tile.
///
/// Bit-compatibility contract: each output element accumulates its `k`
/// products in ascending-`k` order, starting from `+0.0` — the exact
/// float-addition sequence of the naive triple loop in
/// [`reference::matmul`] (whose `a == 0.0` skip is bitwise-invisible on
/// finite data, since `x + 0.0·b ≡ x` for every finite `x` and the
/// accumulator can never be `-0.0`). Tiling only reorders *which*
/// elements are worked on, never the order *within* one element: every
/// accumulator chain — register block, column remainder and row
/// remainder alike — walks `k = 0, 1, …, k-1` ascending, at every tile
/// shape. That is what makes the runtime width dispatch "all modes or
/// none": any `(MRX, NRX)` instantiation is bit-identical to any other.
///
/// The micro-kernel holds an `MRX×NRX` accumulator block in registers
/// for the whole `k` loop and stores it once, so `out` traffic is `m·n`
/// floats total instead of `m·n·k/NRX` read-modify-writes, and the
/// independent accumulator chains give the CPU instruction-level
/// parallelism the naive single-row axpy lacks.
///
/// `#[inline(always)]` is load-bearing: the AVX2 entry point relies on
/// this body inlining into its `#[target_feature]` scope so the
/// compiler may use `ymm` registers for the wider tile.
#[inline(always)]
fn matmul_tile<const MRX: usize, const NRX: usize>(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let n_main = n - n % NRX;
    let mut i0 = 0;
    while i0 + MRX <= m {
        let mut a_rows: [&[f32]; MRX] = [&a[..0]; MRX];
        for (r, row) in a_rows.iter_mut().enumerate() {
            *row = &a[(i0 + r) * k..(i0 + r + 1) * k];
        }
        let mut j0 = 0;
        while j0 < n_main {
            let mut acc = [[0.0f32; NRX]; MRX];
            for (r, row) in acc.iter_mut().enumerate() {
                row.copy_from_slice(&out[(i0 + r) * n + j0..][..NRX]);
            }
            for kk in 0..k {
                let bs: &[f32; NRX] = (&b[kk * n + j0..][..NRX]).try_into().unwrap();
                for (row, arow) in acc.iter_mut().zip(&a_rows) {
                    let av = arow[kk];
                    for (x, &bv) in row.iter_mut().zip(bs) {
                        *x += av * bv;
                    }
                }
            }
            for (r, row) in acc.iter().enumerate() {
                out[(i0 + r) * n + j0..][..NRX].copy_from_slice(row);
            }
            j0 += NRX;
        }
        // Column remainder: MRX scalar accumulator chains per column.
        for j in n_main..n {
            let mut s = [0.0f32; MRX];
            for (r, x) in s.iter_mut().enumerate() {
                *x = out[(i0 + r) * n + j];
            }
            for kk in 0..k {
                let bv = b[kk * n + j];
                for (x, row) in s.iter_mut().zip(&a_rows) {
                    *x += row[kk] * bv;
                }
            }
            for (r, &x) in s.iter().enumerate() {
                out[(i0 + r) * n + j] = x;
            }
        }
        i0 += MRX;
    }
    // Row remainder, one row at a time with the same NRX-wide strips.
    for i in i0..m {
        let arow = &a[i * k..(i + 1) * k];
        let mut j0 = 0;
        while j0 < n_main {
            let mut acc = [0.0f32; NRX];
            acc.copy_from_slice(&out[i * n + j0..][..NRX]);
            for kk in 0..k {
                let av = arow[kk];
                let bs: &[f32; NRX] = (&b[kk * n + j0..][..NRX]).try_into().unwrap();
                for (x, &bv) in acc.iter_mut().zip(bs) {
                    *x += av * bv;
                }
            }
            out[i * n + j0..][..NRX].copy_from_slice(&acc);
            j0 += NRX;
        }
        for j in n_main..n {
            let mut s = out[i * n + j];
            for kk in 0..k {
                s += arow[kk] * b[kk * n + j];
            }
            out[i * n + j] = s;
        }
    }
}

/// `out[k×n] += aᵀ[k×m] · b[m×n]` computed directly from row-major
/// `a[m×k]` — no transpose is materialised; both input streams are read
/// contiguously (`a`'s row gives the tile's `MRX` lane values, `b`'s
/// row its `NRX` strip).
///
/// Bit-compatibility: output element `(i, j)` accumulates
/// `a[r][i]·b[r][j]` for `r = 0, 1, …, m-1` ascending from `+0.0` — the
/// same per-element chain as `matmul(transposed(a), b)` in either the
/// blocked or the naive kernels, at every tile shape.
#[inline(always)]
fn matmul_at_b_tile<const MRX: usize, const NRX: usize>(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), m * n);
    debug_assert_eq!(out.len(), k * n);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let n_main = n - n % NRX;
    let mut i0 = 0;
    while i0 + MRX <= k {
        let mut j0 = 0;
        while j0 < n_main {
            let mut acc = [[0.0f32; NRX]; MRX];
            for (r, row) in acc.iter_mut().enumerate() {
                row.copy_from_slice(&out[(i0 + r) * n + j0..][..NRX]);
            }
            for r in 0..m {
                let avs: &[f32; MRX] = (&a[r * k + i0..][..MRX]).try_into().unwrap();
                let bs: &[f32; NRX] = (&b[r * n + j0..][..NRX]).try_into().unwrap();
                for (row, &av) in acc.iter_mut().zip(avs) {
                    for (x, &bv) in row.iter_mut().zip(bs) {
                        *x += av * bv;
                    }
                }
            }
            for (r, row) in acc.iter().enumerate() {
                out[(i0 + r) * n + j0..][..NRX].copy_from_slice(row);
            }
            j0 += NRX;
        }
        // Column remainder: MRX scalar accumulator chains per column.
        for j in n_main..n {
            let mut s = [0.0f32; MRX];
            for (r, x) in s.iter_mut().enumerate() {
                *x = out[(i0 + r) * n + j];
            }
            for r in 0..m {
                let bv = b[r * n + j];
                let avs = &a[r * k + i0..][..MRX];
                for (x, &av) in s.iter_mut().zip(avs) {
                    *x += av * bv;
                }
            }
            for (r, &x) in s.iter().enumerate() {
                out[(i0 + r) * n + j] = x;
            }
        }
        i0 += MRX;
    }
    // Row remainder: the trailing columns of `a`, NRX-wide strips.
    for i in i0..k {
        let mut j0 = 0;
        while j0 < n_main {
            let mut acc = [0.0f32; NRX];
            acc.copy_from_slice(&out[i * n + j0..][..NRX]);
            for r in 0..m {
                let av = a[r * k + i];
                let bs: &[f32; NRX] = (&b[r * n + j0..][..NRX]).try_into().unwrap();
                for (x, &bv) in acc.iter_mut().zip(bs) {
                    *x += av * bv;
                }
            }
            out[i * n + j0..][..NRX].copy_from_slice(&acc);
            j0 += NRX;
        }
        for j in n_main..n {
            let mut s = out[i * n + j];
            for r in 0..m {
                s += a[r * k + i] * b[r * n + j];
            }
            out[i * n + j] = s;
        }
    }
}

/// AVX2 instantiation of [`matmul_tile`] with the widened `4×16` tile.
/// `avx2` alone does not include the `fma` feature and rustc never
/// enables floating-point contraction, so the generated `vmulps` +
/// `vaddps` pairs round exactly like the scalar baseline — the widening
/// stays inside the bit-exactness contract.
///
/// # Safety
///
/// The caller must ensure the CPU supports AVX2 (checked at dispatch
/// via `is_x86_feature_detected!`); the slices themselves are bounds-
/// checked as in the generic body.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_tile_avx2(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    matmul_tile::<MR, NR_AVX2>(a, b, out, m, k, n);
}

/// AVX2 instantiation of [`matmul_at_b_tile`]; see
/// [`matmul_tile_avx2`] for the no-FMA bit-exactness argument.
///
/// # Safety
///
/// The caller must ensure the CPU supports AVX2 (checked at dispatch
/// via `is_x86_feature_detected!`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_at_b_tile_avx2(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    matmul_at_b_tile::<MR, NR_AVX2>(a, b, out, m, k, n);
}

/// Width-dispatched `out[m×n] += a[m×k] · b[k×n]`; see [`matmul_tile`].
pub(crate) fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    match simd_width() {
        SimdWidth::Sse2 => matmul_tile::<MR, NR>(a, b, out, m, k, n),
        SimdWidth::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `SimdWidth::Avx2` is only selectable when the CPU
            // reports AVX2 (`simd::set_simd_width` enforces it).
            unsafe {
                matmul_tile_avx2(a, b, out, m, k, n);
            }
            #[cfg(not(target_arch = "x86_64"))]
            matmul_tile::<MR, NR>(a, b, out, m, k, n);
        }
    }
}

/// Width-dispatched `out[k×n] += aᵀ · b`; see [`matmul_at_b_tile`].
pub(crate) fn matmul_at_b_into(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    match simd_width() {
        SimdWidth::Sse2 => matmul_at_b_tile::<MR, NR>(a, b, out, m, k, n),
        SimdWidth::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `SimdWidth::Avx2` is only selectable when the CPU
            // reports AVX2 (`simd::set_simd_width` enforces it).
            unsafe {
                matmul_at_b_tile_avx2(a, b, out, m, k, n);
            }
            #[cfg(not(target_arch = "x86_64"))]
            matmul_at_b_tile::<MR, NR>(a, b, out, m, k, n);
        }
    }
}

/// Blocked transpose into an arena-backed tensor: `TB×TB` tiles keep
/// both the read and write streams within a few cache lines, instead of
/// striding the whole destination once per source row.
fn transpose_blocked(t: &Tensor) -> Tensor {
    let (rows, cols) = t.shape();
    let len = rows * cols;
    let mut buf = arena::take(len);
    buf.resize(len, 0.0);
    let src = &t.data;
    let mut r0 = 0;
    while r0 < rows {
        let r1 = (r0 + TB).min(rows);
        let mut c0 = 0;
        while c0 < cols {
            let c1 = (c0 + TB).min(cols);
            for r in r0..r1 {
                for c in c0..c1 {
                    buf[c * rows + r] = src[r * cols + c];
                }
            }
            c0 = c1;
        }
        r0 = r1;
    }
    Tensor::from_vec(cols, rows, buf)
}

/// The pre-optimisation kernels, kept callable so benchmarks and
/// property tests can verify the blocked kernels are bit-identical
/// in-process ([`KernelMode::Naive`](crate::mode::KernelMode) routes
/// here).
pub mod reference {
    use super::Tensor;

    /// Naive triple-loop `a · b` (row-major axpy with a zero skip).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(a: &Tensor, other: &Tensor) -> Tensor {
        assert_eq!(
            a.cols,
            other.rows,
            "matmul shape mismatch: {:?} x {:?}",
            a.shape(),
            other.shape()
        );
        let mut out = Tensor::zeros(a.rows, other.cols);
        for i in 0..a.rows {
            for k in 0..a.cols {
                let av = a.get(i, k);
                if av == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += av * b;
                }
            }
        }
        out
    }

    /// Naive row·row dot-product `a · bᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if column counts differ.
    pub fn matmul_t(a: &Tensor, other: &Tensor) -> Tensor {
        assert_eq!(
            a.cols,
            other.cols,
            "matmul_t shape mismatch: {:?} x {:?}ᵀ",
            a.shape(),
            other.shape()
        );
        let mut out = Tensor::zeros(a.rows, other.rows);
        for i in 0..a.rows {
            let arow = a.row(i);
            for j in 0..other.rows {
                let brow = other.row(j);
                let mut acc = 0.0;
                for (&x, &y) in arow.iter().zip(brow) {
                    acc += x * y;
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Reference `aᵀ · b`, spelled exactly as the pre-optimisation
    /// backward pass computed it: materialise the transpose, then run
    /// the naive matmul. The direct blocked kernel must match this
    /// bitwise.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn matmul_at_b(a: &Tensor, other: &Tensor) -> Tensor {
        assert_eq!(
            a.rows,
            other.rows,
            "matmul_at_b shape mismatch: {:?}ᵀ x {:?}",
            a.shape(),
            other.shape()
        );
        matmul(&transposed(a), other)
    }

    /// Element-at-a-time transpose.
    pub fn transposed(t: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(t.cols, t.rows);
        for r in 0..t.rows {
            for c in 0..t.cols {
                out.set(c, r, t.get(r, c));
            }
        }
        out
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{:.4}, {:.4}, ...]", self.data[0], self.data[1])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Tensor::glorot(4, 5, &mut rng);
        let b = Tensor::glorot(3, 5, &mut rng);
        let direct = a.matmul_t(&b);
        let via_transpose = a.matmul(&b.transposed());
        for (x, y) in direct.as_slice().iter().zip(via_transpose.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_at_b_matches_transpose_then_matmul() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Tensor::glorot(5, 3, &mut rng);
        let b = Tensor::glorot(5, 4, &mut rng);
        let direct = a.matmul_at_b(&b);
        let via_transpose = a.transposed().matmul(&b);
        assert_eq!(direct.shape(), (3, 4));
        for (x, y) in direct.as_slice().iter().zip(via_transpose.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "matmul_at_b shape mismatch")]
    fn matmul_at_b_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(3, 3);
        let _ = a.matmul_at_b(&b);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::glorot(3, 7, &mut rng);
        assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn l1_distance() {
        assert_eq!(Tensor::l1_row_distance(&[1., 2.], &[3., 0.]), 4.0);
    }

    #[test]
    fn glorot_within_limits() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::glorot(10, 10, &mut rng);
        let limit = (6.0f32 / 20.0).sqrt();
        assert!(t.as_slice().iter().all(|&x| x.abs() <= limit));
        assert!(t.norm() > 0.0);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(2.5).item(), 2.5);
    }
}
