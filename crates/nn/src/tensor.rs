//! A minimal dense 2-D `f32` tensor.
//!
//! Everything in the reproduction's neural stack is a matrix: batches are
//! rows, features are columns, scalars are `1×1`. The type deliberately
//! supports only what the models need; it is not a general ndarray.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl Tensor {
    /// Creates a tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        Tensor { data: vec![0.0; rows * cols], rows, cols }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Tensor {
        Tensor { data: vec![value; rows * cols], rows, cols }
    }

    /// Creates a `1×1` scalar tensor.
    pub fn scalar(value: f32) -> Tensor {
        Tensor { data: vec![value], rows: 1, cols: 1 }
    }

    /// Creates a tensor from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Tensor {
        assert_eq!(data.len(), rows * cols, "tensor data length mismatch");
        Tensor { data, rows, cols }
    }

    /// Glorot/Xavier-uniform initialisation.
    pub fn glorot<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Tensor {
        let limit = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols).map(|_| rng.gen_range(-limit..limit)).collect();
        Tensor { data, rows, cols }
    }

    /// Uniform initialisation in `[-limit, limit]`.
    pub fn uniform<R: Rng>(rows: usize, cols: usize, limit: f32, rng: &mut R) -> Tensor {
        let data = (0..rows * cols).map(|_| rng.gen_range(-limit..limit)).collect();
        Tensor { data, rows, cols }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// The underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable access to one row.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single element of a `1×1` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not `1×1`.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() requires a scalar tensor");
        self.data[0]
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Tensor::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `self · otherᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if column counts differ.
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.cols,
            "matmul_t shape mismatch: {:?} x {:?}ᵀ",
            self.shape(),
            other.shape()
        );
        let mut out = Tensor::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            for j in 0..other.rows {
                let brow = other.row(j);
                let mut acc = 0.0;
                for (&a, &b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Transpose.
    pub fn transposed(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Elementwise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place multiplication by a scalar.
    pub fn scale_assign(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Elementwise map, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// L1 distance between two rows of (possibly different) tensors.
    ///
    /// # Panics
    ///
    /// Panics if the rows have different widths.
    pub fn l1_row_distance(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "row width mismatch");
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{:.4}, {:.4}, ...]", self.data[0], self.data[1])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Tensor::glorot(4, 5, &mut rng);
        let b = Tensor::glorot(3, 5, &mut rng);
        let direct = a.matmul_t(&b);
        let via_transpose = a.matmul(&b.transposed());
        for (x, y) in direct.as_slice().iter().zip(via_transpose.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::glorot(3, 7, &mut rng);
        assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn l1_distance() {
        assert_eq!(Tensor::l1_row_distance(&[1., 2.], &[3., 0.]), 4.0);
    }

    #[test]
    fn glorot_within_limits() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::glorot(10, 10, &mut rng);
        let limit = (6.0f32 / 20.0).sqrt();
        assert!(t.as_slice().iter().all(|&x| x.abs() <= limit));
        assert!(t.norm() > 0.0);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(2.5).item(), 2.5);
    }
}
