//! Persistent parameter storage.
//!
//! Tapes are rebuilt every training step (define-by-run), so trainable
//! parameters live outside the tape in a [`ParamSet`]. A tape references
//! them by [`ParamId`]; `backward` returns [`Gradients`] keyed the same
//! way, which an optimizer applies back onto the set.

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a parameter within one [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ParamId(pub usize);

/// A named collection of trainable tensors.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParamSet {
    tensors: Vec<Tensor>,
    names: Vec<String>,
}

impl ParamSet {
    /// Creates an empty parameter set.
    pub fn new() -> ParamSet {
        ParamSet::default()
    }

    /// Registers a parameter and returns its id.
    pub fn add(&mut self, name: impl Into<String>, tensor: Tensor) -> ParamId {
        let id = ParamId(self.tensors.len());
        self.tensors.push(tensor);
        self.names.push(name.into());
        id
    }

    /// The current value of a parameter.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this set.
    // lint: allow(S3) — a ParamId is only minted by add, which pushes tensors and names in lockstep
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.tensors[id.0]
    }

    /// Mutable access to a parameter (used by optimizers).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this set.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.tensors[id.0]
    }

    /// The registered name of a parameter.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this set.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total number of scalar weights.
    pub fn scalar_count(&self) -> usize {
        self.tensors.iter().map(Tensor::len).sum()
    }

    /// Iterates over `(id, name, tensor)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.tensors
            .iter()
            .zip(&self.names)
            .enumerate()
            .map(|(i, (t, n))| (ParamId(i), n.as_str(), t))
    }
}

/// Gradients of a scalar loss with respect to a [`ParamSet`].
/// Gradients are ordered by [`ParamId`] so that accumulation, norm
/// computation and optimizer updates are bit-deterministic across runs
/// (hash-map iteration order would reorder float summations).
#[derive(Debug, Clone, Default)]
pub struct Gradients {
    by_param: BTreeMap<ParamId, Tensor>,
}

impl Gradients {
    /// Creates an empty gradient map.
    pub fn new() -> Gradients {
        Gradients::default()
    }

    /// Accumulates a gradient for `id`.
    ///
    /// # Panics
    ///
    /// Panics if an existing gradient for `id` has a different shape.
    pub fn accumulate(&mut self, id: ParamId, grad: Tensor) {
        match self.by_param.get_mut(&id) {
            Some(existing) => {
                existing.add_assign(&grad);
                crate::arena::recycle(grad);
            }
            None => {
                self.by_param.insert(id, grad);
            }
        }
    }

    /// Returns every gradient buffer to the shared arena pool. Call
    /// this after the optimizer has consumed the gradients so the next
    /// step's backward pass reuses their storage. The buffers go to the
    /// shared pool rather than the calling thread's because under the
    /// persistent worker pool they were allocated on worker threads —
    /// recycling them locally would starve the workers' arenas.
    pub fn recycle(self) {
        for (_, g) in self.by_param {
            crate::arena::recycle_shared(g);
        }
    }

    /// The gradient for `id`, if any op touched it.
    pub fn get(&self, id: ParamId) -> Option<&Tensor> {
        self.by_param.get(&id)
    }

    /// Iterates over all (id, gradient) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Tensor)> {
        self.by_param.iter().map(|(&k, v)| (k, v))
    }

    /// Consumes the map, yielding owned `(id, gradient)` pairs in
    /// ascending [`ParamId`] order (the data-parallel optimizer detaches
    /// per-parameter update tasks this way).
    pub fn into_pairs(self) -> impl Iterator<Item = (ParamId, Tensor)> {
        self.by_param.into_iter()
    }

    /// Merges another gradient map into this one. Addends consumed by
    /// the merge are recycled into the shared arena pool: merging
    /// happens on the caller, but under the persistent worker pool the
    /// addends were allocated on worker threads, and the shared pool is
    /// how their buffers flow back to them.
    pub fn merge(&mut self, other: Gradients) {
        for (id, g) in other.by_param {
            match self.by_param.get_mut(&id) {
                Some(existing) => {
                    existing.add_assign(&g);
                    crate::arena::recycle_shared(g);
                }
                None => {
                    self.by_param.insert(id, g);
                }
            }
        }
    }

    /// Global L2 norm over all gradients (for clipping / logging).
    pub fn global_norm(&self) -> f32 {
        self.by_param
            .values()
            .map(|t| t.as_slice().iter().map(|x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Scales all gradients in place (gradient clipping).
    pub fn scale(&mut self, s: f32) {
        for t in self.by_param.values_mut() {
            t.scale_assign(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut p = ParamSet::new();
        let id = p.add("w", Tensor::zeros(2, 2));
        assert_eq!(p.name(id), "w");
        assert_eq!(p.get(id).shape(), (2, 2));
        assert_eq!(p.scalar_count(), 4);
    }

    #[test]
    fn gradient_accumulation() {
        let mut g = Gradients::new();
        let id = ParamId(0);
        g.accumulate(id, Tensor::full(1, 2, 1.0));
        g.accumulate(id, Tensor::full(1, 2, 2.0));
        assert_eq!(g.get(id).unwrap().as_slice(), &[3.0, 3.0]);
    }

    #[test]
    fn merge_and_norm() {
        let mut a = Gradients::new();
        a.accumulate(ParamId(0), Tensor::full(1, 1, 3.0));
        let mut b = Gradients::new();
        b.accumulate(ParamId(0), Tensor::full(1, 1, 1.0));
        b.accumulate(ParamId(1), Tensor::full(1, 1, 4.0));
        a.merge(b);
        assert_eq!(a.get(ParamId(0)).unwrap().item(), 4.0);
        assert!((a.global_norm() - (32.0f32).sqrt()).abs() < 1e-6);
    }
}
