//! # typilus-nn
//!
//! A small tape-based automatic-differentiation library: the neural
//! substrate of the Typilus reproduction (the original system uses
//! TensorFlow, which is unavailable here). It provides dense `f32`
//! tensors, reverse-mode autodiff with the segment operations graph
//! neural networks need (gather, segment sum/mean/max, pairwise L1),
//! GRU cells, embeddings and Adam.
//!
//! ```
//! use typilus_nn::{ParamSet, Tape, Tensor};
//!
//! let mut params = ParamSet::new();
//! let w = params.add("w", Tensor::scalar(2.0));
//! let mut tape = Tape::new(&params);
//! let wv = tape.param(w);
//! let sq = tape.mul(wv, wv); // loss = w^2
//! let loss = tape.sum_all(sq);
//! let grads = tape.backward(loss);
//! assert_eq!(grads.get(w).unwrap().item(), 4.0); // d(w^2)/dw = 2w
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod config;
pub mod layers;
pub mod log;
pub mod mode;
pub mod optim;
pub mod par;
pub mod params;
pub mod pool;
pub mod profile;
pub mod segment;
pub mod simd;
pub mod tape;
pub mod tensor;

pub use arena::{arena_stats, recycle_shared, reset_arena_stats, ArenaStats};
pub use layers::{Embedding, GruCell, Linear};
pub use log::{reset_warnings, warn_once, warning_count, warning_counts};
pub use mode::{kernel_mode, set_kernel_mode, KernelMode};
pub use optim::{Adam, Sgd};
pub use par::{
    par_map_ordered, parse_thread_spec, resolve_threads, try_resolve_threads, ThreadConfigError,
};
pub use params::{Gradients, ParamId, ParamSet};
pub use pool::{PoolCell, WorkerPool};
pub use profile::{
    profile_rows, profiling_enabled, report as profile_report, reset_profile, OpProfile,
};
pub use segment::SegmentPlan;
pub use simd::{available_widths, set_simd_width, simd_width, SimdWidth};
pub use tape::{Tape, Var};
pub use tensor::Tensor;
