//! Deterministic data-parallel execution helpers.
//!
//! Work is fanned across crossbeam scoped threads, but results are
//! always returned in input order and every reduction over them happens
//! sequentially in that order — so any float accumulation downstream is
//! bit-identical for every thread count, including 1.

/// Resolves the worker-thread count for data-parallel stages.
///
/// Priority: an explicit non-zero `requested` value, then the
/// `TYPILUS_THREADS` environment variable, then
/// [`std::thread::available_parallelism`], defaulting to 1.
pub fn resolve_threads(requested: Option<usize>) -> usize {
    if let Some(n) = requested {
        if n > 0 {
            return n;
        }
    }
    if let Ok(v) = std::env::var("TYPILUS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Applies `f` to every item, fanning across at most `threads` scoped
/// threads, and returns the results in input order.
///
/// Items are assigned to workers by striding (worker `t` takes items
/// `t, t + threads, …`); each result lands in its item's slot, so the
/// output order — and therefore any ordered reduction over it — does
/// not depend on the thread count or on scheduling.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn par_map_ordered<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    crossbeam::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move |_| {
                    let mut out = Vec::new();
                    let mut i = t;
                    while i < items.len() {
                        out.push((i, f(i, &items[i])));
                        i += threads;
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("worker thread panicked") {
                slots[i] = Some(r);
            }
        }
    })
    .expect("thread scope failed");
    slots.into_iter().map(|r| r.expect("every slot is filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_stay_in_input_order() {
        let items: Vec<usize> = (0..37).collect();
        for threads in [1, 2, 3, 8, 64] {
            let out = par_map_ordered(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = par_map_ordered(&[] as &[u32], 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn float_reduction_is_thread_count_invariant() {
        let items: Vec<f32> = (0..100).map(|i| (i as f32).sin() * 1e-3).collect();
        let reduce = |threads: usize| -> f32 {
            par_map_ordered(&items, threads, |_, &x| x * x + 0.1).iter().sum()
        };
        let one = reduce(1);
        for threads in [2, 4, 7] {
            assert_eq!(one.to_bits(), reduce(threads).to_bits());
        }
    }

    #[test]
    fn explicit_thread_request_wins() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert!(resolve_threads(None) >= 1);
        assert!(resolve_threads(Some(0)) >= 1);
    }
}
