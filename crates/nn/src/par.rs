//! Deterministic data-parallel execution helpers.
//!
//! [`par_map_ordered`] fans work across crossbeam scoped threads
//! spawned per call; the persistent engine that supersedes it for
//! steady-state training lives in [`crate::pool`]. Both share the same
//! contract: results are always returned in input order and every
//! reduction over them happens sequentially in that order — so any
//! float accumulation downstream is bit-identical for every thread
//! count, including 1.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::{Mutex, OnceLock};

/// An invalid thread-count specification (from `TYPILUS_THREADS`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadConfigError {
    /// The rejected value, as written.
    pub value: String,
}

impl std::fmt::Display for ThreadConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid TYPILUS_THREADS value {:?}: expected a positive integer",
            self.value
        )
    }
}

impl std::error::Error for ThreadConfigError {}

/// Parses a thread-count specification: a positive integer, with
/// surrounding whitespace allowed. `"0"`, `"-2"`, `"abc"` and `"4x"`
/// are all errors — a typo must not silently oversubscribe the box.
pub fn parse_thread_spec(spec: &str) -> Result<usize, ThreadConfigError> {
    match spec.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(ThreadConfigError {
            value: spec.trim().to_string(),
        }),
    }
}

/// `TYPILUS_THREADS`, read and parsed once per process. `Ok(None)`
/// means the variable is unset.
fn env_threads() -> &'static Result<Option<usize>, ThreadConfigError> {
    static CACHE: OnceLock<Result<Option<usize>, ThreadConfigError>> = OnceLock::new();
    CACHE.get_or_init(|| match std::env::var("TYPILUS_THREADS") {
        Ok(v) => parse_thread_spec(&v).map(Some),
        Err(_) => Ok(None),
    })
}

/// Resolves the worker-thread count for data-parallel stages, rejecting
/// a malformed `TYPILUS_THREADS`.
///
/// Priority: an explicit non-zero `requested` value, then the
/// `TYPILUS_THREADS` environment variable (read once per process), then
/// [`std::thread::available_parallelism`], defaulting to 1.
pub fn try_resolve_threads(requested: Option<usize>) -> Result<usize, ThreadConfigError> {
    if let Some(n) = requested {
        if n > 0 {
            return Ok(n);
        }
    }
    match env_threads() {
        Ok(Some(n)) => Ok(*n),
        Ok(None) => Ok(std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)),
        Err(e) => Err(e.clone()),
    }
}

/// Infallible [`try_resolve_threads`]: a malformed `TYPILUS_THREADS`
/// logs one loud warning and clamps to 1 thread (never to all cores —
/// a typo must fail toward less parallelism, not more).
pub fn resolve_threads(requested: Option<usize>) -> usize {
    match try_resolve_threads(requested) {
        Ok(n) => n,
        Err(e) => {
            static WARNED: AtomicBool = AtomicBool::new(false);
            if !WARNED.swap(true, SeqCst) {
                eprintln!("typilus: warning: {e}; running with 1 thread");
            }
            1
        }
    }
}

/// Applies `f` to every item, fanning across at most `threads` scoped
/// threads, and returns the results in input order.
///
/// Items are assigned to workers by striding (worker `t` takes items
/// `t, t + threads, …`); each result lands in its item's slot, so the
/// output order — and therefore any ordered reduction over it — does
/// not depend on the thread count or on scheduling.
///
/// # Panics
///
/// If `f` panics on any worker, the first panic payload is captured,
/// outstanding work is cancelled (remaining workers stop before their
/// next item), and the payload is re-raised on the caller via
/// [`std::panic::resume_unwind`] — the original assertion message
/// survives.
pub fn par_map_ordered<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let cancel = &AtomicBool::new(false);
    let first_panic: &Mutex<Option<Box<dyn std::any::Any + Send>>> = &Mutex::new(None);
    crossbeam::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move |_| {
                    let mut out = Vec::new();
                    let mut i = t;
                    while i < items.len() {
                        if cancel.load(SeqCst) {
                            break;
                        }
                        match catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))) {
                            Ok(r) => out.push((i, r)),
                            Err(payload) => {
                                cancel.store(true, SeqCst);
                                let mut slot = first_panic
                                    .lock()
                                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                                if slot.is_none() {
                                    *slot = Some(payload);
                                }
                                break;
                            }
                        }
                        i += threads;
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("worker panics are captured in-thread") {
                slots[i] = Some(r);
            }
        }
    })
    .expect("thread scope failed");
    if let Some(payload) = first_panic
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take()
    {
        resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every slot is filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_stay_in_input_order() {
        let items: Vec<usize> = (0..37).collect();
        for threads in [1, 2, 3, 8, 64] {
            let out = par_map_ordered(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = par_map_ordered(&[] as &[u32], 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn float_reduction_is_thread_count_invariant() {
        let items: Vec<f32> = (0..100).map(|i| (i as f32).sin() * 1e-3).collect();
        let reduce = |threads: usize| -> f32 {
            par_map_ordered(&items, threads, |_, &x| x * x + 0.1)
                .iter()
                .sum()
        };
        let one = reduce(1);
        for threads in [2, 4, 7] {
            assert_eq!(one.to_bits(), reduce(threads).to_bits());
        }
    }

    #[test]
    fn explicit_thread_request_wins() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert!(resolve_threads(None) >= 1);
        assert!(resolve_threads(Some(0)) >= 1);
        assert_eq!(try_resolve_threads(Some(5)), Ok(5));
    }

    #[test]
    fn thread_spec_parsing() {
        assert_eq!(parse_thread_spec("4"), Ok(4));
        assert_eq!(parse_thread_spec(" 16 "), Ok(16));
        for bad in ["abc", "0", "-2", "4x", "", "1.5"] {
            let err = parse_thread_spec(bad).expect_err(bad);
            assert_eq!(err.value, bad.trim());
            assert!(err.to_string().contains("TYPILUS_THREADS"));
        }
    }

    #[test]
    fn worker_panic_payload_survives() {
        let items: Vec<usize> = (0..64).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            par_map_ordered(&items, 4, |i, _| {
                assert!(i != 23, "item 23 exploded");
                i
            })
        }))
        .expect_err("panic must propagate");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("item 23 exploded"), "payload lost: {msg:?}");
    }
}
