//! Property-based gradient checking and op invariants for the autodiff
//! substrate: analytic gradients must agree with finite differences on
//! random programs, and structural ops must conserve mass.

use proptest::prelude::*;
use typilus_nn::{ParamSet, Tape, Tensor};

fn arb_tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-1.0f32..1.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(rows, cols, data))
}

/// Compares analytic and numeric gradients of `build` at `init`.
fn gradient_matches(
    build: impl Fn(&mut Tape<'_>, typilus_nn::Var) -> typilus_nn::Var,
    init: Tensor,
) -> Result<(), TestCaseError> {
    let mut params = ParamSet::new();
    let id = params.add("w", init);
    let analytic = {
        let mut tape = Tape::new(&params);
        let w = tape.param(id);
        let loss = build(&mut tape, w);
        tape.backward(loss).get(id).cloned()
    };
    let Some(analytic) = analytic else {
        return Ok(()); // parameter unused; nothing to check
    };
    let eps = 1e-2;
    let (rows, cols) = params.get(id).shape();
    for r in 0..rows {
        for c in 0..cols {
            let orig = params.get(id).get(r, c);
            let eval = |params: &ParamSet| -> f32 {
                let mut tape = Tape::new(params);
                let w = tape.param(id);
                let loss = build(&mut tape, w);
                tape.value(loss).item()
            };
            params.get_mut(id).set(r, c, orig + eps);
            let plus = eval(&params);
            params.get_mut(id).set(r, c, orig - eps);
            let minus = eval(&params);
            params.get_mut(id).set(r, c, orig);
            let numeric = (plus - minus) / (2.0 * eps);
            let got = analytic.get(r, c);
            prop_assert!(
                (numeric - got).abs() < 0.05 + 0.05 * numeric.abs().max(got.abs()),
                "grad mismatch at ({r},{c}): numeric {numeric} vs analytic {got}"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tanh_matmul_chain_gradients(w in arb_tensor(3, 2), x in arb_tensor(2, 3)) {
        gradient_matches(
            move |tape, wv| {
                let xin = tape.input(x.clone());
                let y = tape.matmul(xin, wv);
                let y = tape.tanh(y);
                tape.mean_all(y)
            },
            w,
        )?;
    }

    #[test]
    fn sigmoid_mul_gradients(w in arb_tensor(2, 4)) {
        gradient_matches(
            |tape, wv| {
                let s = tape.sigmoid(wv);
                let m = tape.mul(s, wv);
                tape.sum_all(m)
            },
            w,
        )?;
    }

    #[test]
    fn softmax_nll_gradients(w in arb_tensor(3, 4)) {
        gradient_matches(
            |tape, wv| {
                let lp = tape.log_softmax(wv);
                tape.nll_loss(lp, &[0, 2, 3])
            },
            w,
        )?;
    }

    #[test]
    fn segment_ops_conserve_mass(x in arb_tensor(6, 3), segs in prop::collection::vec(0usize..4, 6)) {
        let params = ParamSet::new();
        let mut tape = Tape::new(&params);
        let xin = tape.input(x.clone());
        let summed = tape.segment_sum(xin, &segs, 4);
        let total_in: f32 = x.sum();
        let total_out: f32 = tape.value(summed).sum();
        prop_assert!((total_in - total_out).abs() < 1e-4);
    }

    #[test]
    fn segment_max_dominates_mean(x in arb_tensor(5, 2), segs in prop::collection::vec(0usize..3, 5)) {
        let params = ParamSet::new();
        let mut tape = Tape::new(&params);
        let xin = tape.input(x);
        let maxed = tape.segment_max(xin, &segs, 3);
        let meaned = tape.segment_mean(xin, &segs, 3);
        for s in 0..3 {
            if !segs.contains(&s) {
                continue;
            }
            for c in 0..2 {
                prop_assert!(
                    tape.value(maxed).get(s, c) >= tape.value(meaned).get(s, c) - 1e-6
                );
            }
        }
    }

    #[test]
    fn pairwise_l1_is_symmetric_metric(x in arb_tensor(4, 3)) {
        let params = ParamSet::new();
        let mut tape = Tape::new(&params);
        let xin = tape.input(x);
        let d = tape.pairwise_l1(xin);
        let dv = tape.value(d);
        for i in 0..4 {
            prop_assert_eq!(dv.get(i, i), 0.0);
            for j in 0..4 {
                prop_assert_eq!(dv.get(i, j), dv.get(j, i));
                // Triangle inequality.
                for k in 0..4 {
                    prop_assert!(dv.get(i, j) <= dv.get(i, k) + dv.get(k, j) + 1e-4);
                }
            }
        }
    }

    #[test]
    fn gather_rows_match_source(x in arb_tensor(5, 2), idx in prop::collection::vec(0usize..5, 1..8)) {
        let params = ParamSet::new();
        let mut tape = Tape::new(&params);
        let xin = tape.input(x.clone());
        let g = tape.gather(xin, &idx);
        for (i, &src) in idx.iter().enumerate() {
            prop_assert_eq!(tape.value(g).row(i), x.row(src));
        }
    }

    #[test]
    fn concat_preserves_content(a in arb_tensor(2, 3), b in arb_tensor(4, 3)) {
        let params = ParamSet::new();
        let mut tape = Tape::new(&params);
        let av = tape.input(a.clone());
        let bv = tape.input(b.clone());
        let c = tape.concat_rows(&[av, bv]);
        prop_assert_eq!(tape.value(c).shape(), (6, 3));
        prop_assert_eq!(tape.value(c).row(0), a.row(0));
        prop_assert_eq!(tape.value(c).row(2), b.row(0));
    }

    #[test]
    fn log_softmax_rows_are_distributions(x in arb_tensor(3, 5)) {
        let params = ParamSet::new();
        let mut tape = Tape::new(&params);
        let xin = tape.input(x);
        let lp = tape.log_softmax(xin);
        for r in 0..3 {
            let total: f32 = tape.value(lp).row(r).iter().map(|&v| v.exp()).sum();
            prop_assert!((total - 1.0).abs() < 1e-4);
        }
    }
}
