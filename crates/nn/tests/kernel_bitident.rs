//! Property tests pinning the blocked/register-tiled kernels to the
//! naive reference kernels **bitwise**, not approximately: the blocked
//! matmul, matmul_t, fused `aᵀ·b` and transpose must produce the exact
//! same bits as the pre-optimisation triple loops for every shape
//! (including ragged remainders around the MR×NR register tile), for
//! signed zeros, and at **every selectable SIMD width** (the baseline
//! SSE2 tile and, where the CPU has it, the widened AVX2 tile — proving
//! the AVX2 instantiation never contracts to FMA). The blocked segment
//! kernels and their backward scatters are pinned to their references
//! the same way. Also pins `segment_max`'s documented NaN and tie
//! semantics against a straightforward oracle.
//!
//! Every test in this binary runs in [`KernelMode::Fast`]; the naive
//! side of each comparison calls the reference kernels directly, so no
//! test ever flips the process-global mode to Naive (which would race
//! with concurrently running tests).

use proptest::prelude::*;
use typilus_nn::segment::{self, SegmentPlan};
use typilus_nn::tensor::reference;
use typilus_nn::{
    available_widths, set_kernel_mode, set_simd_width, KernelMode, ParamSet, Tape, Tensor,
};

/// Runs `body` once at every SIMD width the dispatcher can select on
/// this CPU (`sse2` always; `avx2` where available), so each property
/// below proves bit-identity for every reachable kernel instantiation.
/// The width is process-global and tests run concurrently, but every
/// width must produce identical bits, so the races are harmless.
fn with_each_width(
    mut body: impl FnMut() -> Result<(), TestCaseError>,
) -> Result<(), TestCaseError> {
    for w in available_widths() {
        set_simd_width(w);
        body()?;
    }
    Ok(())
}

/// Elements that exercise rounding, cancellation and signed zero.
fn arb_elem() -> impl Strategy<Value = f32> {
    prop_oneof![
        -1e3f32..1e3,
        -1e3f32..1e3,
        -1e-3f32..1e-3,
        Just(0.0f32),
        Just(-0.0f32),
    ]
}

/// Shape pairs covering tile interiors and every remainder case around
/// the MR=4 / NR=8 register tile.
fn arb_mkn() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..20, 1usize..20, 1usize..20)
}

/// `(a[m×k], b[k×n])` with ragged shapes and signed-zero elements.
fn arb_matmul_pair() -> impl Strategy<Value = (Tensor, Tensor)> {
    (
        arb_mkn(),
        prop::collection::vec(arb_elem(), 20 * 20),
        prop::collection::vec(arb_elem(), 20 * 20),
    )
        .prop_map(|((m, k, n), da, db)| {
            (
                Tensor::from_vec(m, k, da[..m * k].to_vec()),
                Tensor::from_vec(k, n, db[..k * n].to_vec()),
            )
        })
}

/// `(a[m×k], b[m×n])` for the fused `aᵀ · b` kernel (shared leading
/// dimension — the backward pass's `gw = xᵀ·g` shape family).
fn arb_matmul_at_b_pair() -> impl Strategy<Value = (Tensor, Tensor)> {
    (
        arb_mkn(),
        prop::collection::vec(arb_elem(), 20 * 20),
        prop::collection::vec(arb_elem(), 20 * 20),
    )
        .prop_map(|((m, k, n), da, db)| {
            (
                Tensor::from_vec(m, k, da[..m * k].to_vec()),
                Tensor::from_vec(m, n, db[..m * n].to_vec()),
            )
        })
}

/// `(a[m×k], b[n×k])` for `a · bᵀ`.
fn arb_matmul_t_pair() -> impl Strategy<Value = (Tensor, Tensor)> {
    (
        arb_mkn(),
        prop::collection::vec(arb_elem(), 20 * 20),
        prop::collection::vec(arb_elem(), 20 * 20),
    )
        .prop_map(|((m, k, n), da, db)| {
            (
                Tensor::from_vec(m, k, da[..m * k].to_vec()),
                Tensor::from_vec(n, k, db[..n * k].to_vec()),
            )
        })
}

fn assert_bits_equal(fast: &Tensor, naive: &Tensor) -> Result<(), TestCaseError> {
    prop_assert_eq!(fast.shape(), naive.shape());
    for (i, (f, n)) in fast.as_slice().iter().zip(naive.as_slice()).enumerate() {
        prop_assert_eq!(
            f.to_bits(),
            n.to_bits(),
            "element {} differs: fast {} vs naive {}",
            i,
            f,
            n
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blocked_matmul_is_bitwise_naive((a, b) in arb_matmul_pair()) {
        set_kernel_mode(KernelMode::Fast);
        with_each_width(|| assert_bits_equal(&a.matmul(&b), &reference::matmul(&a, &b)))?;
    }

    #[test]
    fn blocked_matmul_t_is_bitwise_naive((a, b) in arb_matmul_t_pair()) {
        set_kernel_mode(KernelMode::Fast);
        with_each_width(|| assert_bits_equal(&a.matmul_t(&b), &reference::matmul_t(&a, &b)))?;
    }

    #[test]
    fn fused_at_b_matmul_is_bitwise_naive((a, b) in arb_matmul_at_b_pair()) {
        set_kernel_mode(KernelMode::Fast);
        with_each_width(|| {
            assert_bits_equal(&a.matmul_at_b(&b), &reference::matmul_at_b(&a, &b))
        })?;
    }

    #[test]
    fn blocked_transpose_is_bitwise_naive(
        (rows, cols) in (1usize..70, 1usize..70),
        seed_row in prop::collection::vec(arb_elem(), 70 * 70),
    ) {
        set_kernel_mode(KernelMode::Fast);
        let a = Tensor::from_vec(rows, cols, seed_row[..rows * cols].to_vec());
        assert_bits_equal(&a.transposed(), &reference::transposed(&a))?;
    }

    #[test]
    fn matmul_handles_signed_zero_rows((m, k, n) in arb_mkn()) {
        // All-zero inputs with mixed signs: the naive kernel's
        // `a == 0.0` skip must be invisible.
        set_kernel_mode(KernelMode::Fast);
        let a = Tensor::from_vec(
            m,
            k,
            (0..m * k).map(|i| if i % 2 == 0 { 0.0 } else { -0.0 }).collect(),
        );
        let b = Tensor::from_vec(
            k,
            n,
            (0..k * n).map(|i| if i % 3 == 0 { -0.0 } else { 1.5 }).collect(),
        );
        with_each_width(|| assert_bits_equal(&a.matmul(&b), &reference::matmul(&a, &b)))?;
    }

    #[test]
    fn blocked_segment_ops_are_bitwise_naive(
        (rows, cols, num_segments) in (1usize..12, 1usize..8, 1usize..6),
        data in prop::collection::vec(arb_elem(), 12 * 8),
        seg_seed in prop::collection::vec(0usize..6, 12),
    ) {
        set_kernel_mode(KernelMode::Fast);
        let a = Tensor::from_vec(rows, cols, data[..rows * cols].to_vec());
        let segments: Vec<usize> =
            seg_seed[..rows].iter().map(|&s| s % num_segments).collect();
        let g = Tensor::from_vec(
            num_segments,
            cols,
            data[..num_segments * cols].to_vec(),
        );
        with_each_width(|| {
            let plan = SegmentPlan::build(&segments, num_segments);
            assert_bits_equal(
                &segment::sum_blocked(&a, &plan),
                &segment::reference::sum(&a, &segments, num_segments),
            )?;
            assert_bits_equal(
                &segment::mean_blocked(&a, &plan),
                &segment::reference::mean(&a, &segments, num_segments),
            )?;
            let (max_fast, argmax_fast) = segment::max_blocked(&a, &plan);
            let (max_ref, argmax_ref) =
                segment::reference::max(&a, &segments, num_segments);
            assert_bits_equal(&max_fast, &max_ref)?;
            prop_assert_eq!(argmax_fast, argmax_ref);
            assert_bits_equal(
                &segment::sum_backward_blocked(&g, &plan, rows),
                &segment::reference::sum_backward(&g, &segments, rows),
            )?;
            assert_bits_equal(
                &segment::mean_backward_blocked(&g, &plan, rows),
                &segment::reference::mean_backward(&g, &segments, num_segments, rows),
            )?;
            Ok(())
        })?;
    }

    #[test]
    fn segment_max_matches_oracle(
        data in prop::collection::vec(
            prop_oneof![
                -100f32..100.0,
                -100f32..100.0,
                -100f32..100.0,
                Just(f32::NAN)
            ],
            18,
        ),
        segs in prop::collection::vec(0usize..4, 6),
    ) {
        set_kernel_mode(KernelMode::Fast);
        let x = Tensor::from_vec(6, 3, data.clone());
        let params = ParamSet::new();
        let mut tape = Tape::new(&params);
        let xin = tape.input(x);
        let m = tape.segment_max(xin, &segs, 4);
        let got = tape.value(m);
        // Oracle: strict `>` from -inf in row order; NaN never wins;
        // segments with no winner produce 0.0.
        for s in 0..4 {
            for c in 0..3 {
                let mut best = f32::NEG_INFINITY;
                let mut found = false;
                for (i, &si) in segs.iter().enumerate() {
                    if si == s && data[i * 3 + c] > best {
                        best = data[i * 3 + c];
                        found = true;
                    }
                }
                let expect = if found { best } else { 0.0 };
                prop_assert_eq!(
                    got.get(s, c).to_bits(),
                    expect.to_bits(),
                    "segment {} col {}",
                    s,
                    c
                );
            }
        }
    }
}

/// A tie must route the whole gradient to the earliest winning row.
#[test]
fn segment_max_tie_gradient_goes_to_earliest_row() {
    set_kernel_mode(KernelMode::Fast);
    let mut params = ParamSet::new();
    let id = params.add("x", Tensor::from_vec(3, 1, vec![7.0, 7.0, 3.0]));
    let mut tape = Tape::new(&params);
    let x = tape.param(id);
    let m = tape.segment_max(x, &[0, 0, 0], 1);
    let loss = tape.sum_all(m);
    let grads = tape.backward(loss);
    assert_eq!(grads.get(id).unwrap().as_slice(), &[1.0, 0.0, 0.0]);
}

/// An all-NaN column behaves like an empty segment: value 0, no grad.
#[test]
fn segment_max_all_nan_column_is_zero_with_no_gradient() {
    set_kernel_mode(KernelMode::Fast);
    let mut params = ParamSet::new();
    let id = params.add(
        "x",
        Tensor::from_vec(2, 2, vec![f32::NAN, 1.0, f32::NAN, -2.0]),
    );
    let mut tape = Tape::new(&params);
    let x = tape.param(id);
    let m = tape.segment_max(x, &[0, 0], 1);
    let loss = tape.sum_all(m);
    assert_eq!(tape.value(m).as_slice(), &[0.0, 1.0]);
    let grads = tape.backward(loss);
    assert_eq!(grads.get(id).unwrap().as_slice(), &[0.0, 1.0, 0.0, 0.0]);
}
