//! `TYPILUS_THREADS` invalid-value behavior.
//!
//! The variable is read and parsed once per process, so this file holds
//! a single test and sets the variable before the first resolution;
//! valid-value behavior lives in its own binary (`threads_env_valid`).

#[test]
fn invalid_env_value_errors_and_clamps_to_one() {
    std::env::set_var("TYPILUS_THREADS", "4x");

    // The checked API surfaces a config error naming the bad value.
    let err = typilus_nn::try_resolve_threads(None).expect_err("malformed spec must error");
    assert_eq!(err.value, "4x");
    assert!(err.to_string().contains("TYPILUS_THREADS"));

    // The infallible API clamps to 1 thread — never to all cores.
    assert_eq!(typilus_nn::resolve_threads(None), 1);

    // An explicit request bypasses the environment entirely.
    assert_eq!(typilus_nn::resolve_threads(Some(3)), 3);
    assert_eq!(typilus_nn::try_resolve_threads(Some(3)), Ok(3));

    // The variable is resolved once per process: fixing it afterwards
    // does not change the cached decision.
    std::env::set_var("TYPILUS_THREADS", "8");
    assert!(typilus_nn::try_resolve_threads(None).is_err());
    assert_eq!(typilus_nn::resolve_threads(None), 1);
}
