//! `TYPILUS_THREADS` valid-value behavior (one test per binary because
//! the variable is resolved once per process; the invalid-value case is
//! in `threads_env`).

#[test]
fn valid_env_value_is_used_and_resolved_once() {
    std::env::set_var("TYPILUS_THREADS", " 6 ");
    assert_eq!(
        typilus_nn::resolve_threads(None),
        6,
        "whitespace-trimmed value applies"
    );
    assert_eq!(typilus_nn::try_resolve_threads(None), Ok(6));

    // Resolved once per process: later changes are ignored.
    std::env::set_var("TYPILUS_THREADS", "2");
    assert_eq!(typilus_nn::resolve_threads(None), 6);
}
