//! Saving and loading trained systems.
//!
//! Artefacts are encoded with the project's binary serde format
//! (`typilus-serbin`) behind a small header with a magic string and a
//! format version, so stale files fail loudly instead of decoding into
//! garbage weights.

use crate::pipeline::TrainedSystem;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use typilus_space::{SpaceError, SpaceIndex};

/// Magic bytes at the start of every artefact file.
const MAGIC: &[u8; 8] = b"TYPILUS\0";
/// Bump when the on-disk layout of [`TrainedSystem`] changes.
/// v2: `TypilusConfig` gained `parallelism`; the type map stores
/// embeddings contiguously.
/// v3: `TypilusConfig` gained `space`; a sharded TypeSpace index is
/// persisted as a `<model>.space` sidecar, the model artifact records
/// only its identity.
const VERSION: u32 = 3;

/// Errors of artefact persistence.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file does not start with the Typilus magic.
    NotATypilusArtefact,
    /// The file was written by an incompatible version.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
    /// Encoding/decoding failure.
    Codec(typilus_serbin::Error),
    /// The file lacks the integrity footer every checksummed artifact
    /// ends with — a torn write lost the tail, or the file predates
    /// the footer.
    MissingFooter,
    /// The footer is intact but the payload is shorter or longer than
    /// the length it records — the file was truncated or spliced.
    Truncated {
        /// Payload length recorded in the footer.
        expected: u64,
        /// Payload length actually present.
        found: u64,
    },
    /// The payload fails its CRC-64 — bit rot or an in-place overwrite.
    ChecksumMismatch {
        /// Checksum recorded in the footer.
        expected: u64,
        /// Checksum of the bytes actually present.
        found: u64,
    },
    /// The TypeSpace index sidecar is malformed or does not belong to
    /// this model.
    Space(SpaceError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::NotATypilusArtefact => write!(f, "not a typilus artefact file"),
            PersistError::VersionMismatch { found, expected } => {
                write!(f, "artefact version {found}, this build expects {expected}")
            }
            PersistError::Codec(e) => write!(f, "codec error: {e}"),
            PersistError::MissingFooter => {
                write!(
                    f,
                    "missing integrity footer (torn write or pre-checksum file)"
                )
            }
            PersistError::Truncated { expected, found } => {
                write!(
                    f,
                    "truncated artefact: footer records {expected} payload bytes, found {found}"
                )
            }
            PersistError::ChecksumMismatch { expected, found } => {
                write!(
                    f,
                    "artefact checksum mismatch: footer records {expected:#018x}, computed {found:#018x}"
                )
            }
            PersistError::Space(e) => write!(f, "type-space index sidecar: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<typilus_serbin::Error> for PersistError {
    fn from(e: typilus_serbin::Error) -> Self {
        PersistError::Codec(e)
    }
}

impl From<SpaceError> for PersistError {
    fn from(e: SpaceError) -> Self {
        PersistError::Space(e)
    }
}

/// The sidecar file holding a model's sharded TypeSpace index payload:
/// `<model path>.space` next to the model.
pub fn space_sidecar_path(model: impl AsRef<Path>) -> PathBuf {
    let mut name = model.as_ref().as_os_str().to_os_string();
    name.push(".space");
    PathBuf::from(name)
}

/// Opens a TypeSpace index sidecar written by [`TrainedSystem::save`]
/// (or `typilus index`) as a zero-copy view.
///
/// The fast path memory-maps the file and validates only the atomic_io
/// footer's magic and length plus the index header — O(header), no
/// deserialization, no payload copy. Where mapping is unavailable the
/// file is read and verified through [`crate::atomic_io::read_artifact`]
/// instead. Either way the view is *not* yet integrity-swept; call
/// [`SpaceIndex::verify`] (as [`TrainedSystem::load`] does) to check
/// the payload's own checksums before trusting query results.
///
/// # Errors
///
/// Filesystem errors, footer errors, and [`PersistError::Space`] for a
/// malformed index header.
pub fn open_space_index(path: impl AsRef<Path>) -> Result<SpaceIndex, PersistError> {
    let path = path.as_ref();
    if let Some(map) = crate::mmap::Mmap::map(path)? {
        let payload_len = crate::atomic_io::framed_payload_len(map.as_ref())?;
        return Ok(SpaceIndex::from_provider(Arc::new(map), payload_len)?);
    }
    let payload = crate::atomic_io::read_artifact(path)?;
    Ok(SpaceIndex::from_payload_vec(payload)?)
}

impl TrainedSystem {
    /// Serialises the system (weights, type map, vocabularies, lattice,
    /// config) to bytes.
    ///
    /// # Errors
    ///
    /// Returns a codec error if encoding fails.
    pub fn to_bytes(&self) -> Result<Vec<u8>, PersistError> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&typilus_serbin::to_bytes(self)?);
        Ok(out)
    }

    /// Restores a system from bytes produced by [`TrainedSystem::to_bytes`].
    ///
    /// # Errors
    ///
    /// Fails on wrong magic, wrong version or corrupted payload.
    pub fn from_bytes(bytes: &[u8]) -> Result<TrainedSystem, PersistError> {
        if bytes.len() < MAGIC.len() + 4 || &bytes[..MAGIC.len()] != MAGIC {
            return Err(PersistError::NotATypilusArtefact);
        }
        let mut ver = [0u8; 4];
        ver.copy_from_slice(&bytes[MAGIC.len()..MAGIC.len() + 4]);
        let found = u32::from_le_bytes(ver);
        if found != VERSION {
            return Err(PersistError::VersionMismatch {
                found,
                expected: VERSION,
            });
        }
        Ok(typilus_serbin::from_bytes(&bytes[MAGIC.len() + 4..])?)
    }

    /// Saves the system to a file atomically (write-temp → fsync →
    /// rename) with an integrity footer; see [`crate::atomic_io`].
    ///
    /// When the type map carries a sharded TypeSpace index, the index
    /// payload is written first as a `<path>.space` sidecar (also
    /// atomic and footer-framed) and the model artifact records only
    /// its `file_id` — so loading the model never deserializes the
    /// index, and the artifact stays small. A crash between the two
    /// writes leaves a model paired with a mismatched sidecar, which
    /// [`TrainedSystem::load`] detects by id and degrades to exact
    /// search instead of serving a stale index.
    ///
    /// # Errors
    ///
    /// Propagates filesystem and codec errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let path = path.as_ref();
        if let Some(payload) = self.type_map.space_payload() {
            crate::atomic_io::write_artifact(space_sidecar_path(path), payload)?;
        }
        crate::atomic_io::write_artifact(path, &self.to_bytes()?)
    }

    /// Loads a system from a file saved with [`TrainedSystem::save`],
    /// verifying its integrity footer first.
    ///
    /// If the model references a sharded TypeSpace index, its sidecar
    /// is opened zero-copy (memory-mapped where supported), integrity-
    /// swept with [`SpaceIndex::verify`], and attached. A *missing* or
    /// *mismatched* sidecar is survivable — the map's markers all live
    /// in the model artifact, so the system warns and serves exact
    /// search. A sidecar that is present and paired but *corrupt* is a
    /// hard, typed error: silently dropping to exact search would mask
    /// bit rot.
    ///
    /// # Errors
    ///
    /// Propagates filesystem, corruption (truncation, checksum,
    /// missing footer, index section corruption), format and codec
    /// errors.
    pub fn load(path: impl AsRef<Path>) -> Result<TrainedSystem, PersistError> {
        let path = path.as_ref();
        let bytes = crate::atomic_io::read_artifact(path)?;
        let mut system = TrainedSystem::from_bytes(&bytes)?;
        if system.type_map.expected_file_id().is_some() {
            let sidecar = space_sidecar_path(path);
            match open_space_index(&sidecar) {
                Ok(index) => {
                    if index.file_id() == system.type_map.expected_file_id().unwrap_or(0) {
                        index.verify()?;
                        system.type_map.attach_space_index(index)?;
                    } else {
                        // Warn-once: a long-lived process reloading the
                        // same model must not repeat this on every load.
                        typilus_nn::warn_once(
                            "persist.sidecar-mismatch",
                            &format!(
                                "index sidecar {} belongs to a different build \
                                 of this model; using exact search",
                                sidecar.display()
                            ),
                        );
                    }
                }
                Err(PersistError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                    typilus_nn::warn_once(
                        "persist.sidecar-missing",
                        &format!(
                            "index sidecar {} is missing; using exact search",
                            sidecar.display()
                        ),
                    );
                }
                Err(e) => return Err(e),
            }
        }
        Ok(system)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::PreparedCorpus;
    use crate::pipeline::{train, TypilusConfig};
    use typilus_corpus::{generate, CorpusConfig};
    use typilus_models::ModelConfig;

    fn tiny_system() -> (TrainedSystem, PreparedCorpus) {
        let corpus = generate(&CorpusConfig {
            files: 8,
            seed: 2,
            ..CorpusConfig::default()
        });
        let data = PreparedCorpus::from_corpus(&corpus, &typilus_graph::GraphConfig::default(), 2);
        let config = TypilusConfig {
            model: ModelConfig {
                dim: 8,
                gnn_steps: 2,
                min_subtoken_count: 1,
                ..ModelConfig::default()
            },
            epochs: 2,
            ..TypilusConfig::default()
        };
        (train(&data, &config), data)
    }

    #[test]
    fn save_load_round_trip_preserves_predictions() {
        let (system, data) = tiny_system();
        let bytes = system.to_bytes().expect("encodes");
        let restored = TrainedSystem::from_bytes(&bytes).expect("decodes");
        // Identical predictions on every test file.
        for &idx in &data.split.test {
            let a = system.predict_file(&data, idx);
            let b = restored.predict_file(&data, idx);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.name, y.name);
                assert_eq!(
                    x.top().map(|t| t.ty.to_string()),
                    y.top().map(|t| t.ty.to_string())
                );
            }
        }
    }

    #[test]
    fn save_load_via_file() {
        let (system, _) = tiny_system();
        let dir = std::env::temp_dir().join("typilus_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.typilus");
        system.save(&path).expect("saves");
        let restored = TrainedSystem::load(&path).expect("loads");
        assert_eq!(restored.type_map.len(), system.type_map.len());
        assert_eq!(restored.config.epochs, system.config.epochs);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_rejected() {
        let err = TrainedSystem::from_bytes(b"NOTMAGIC....").unwrap_err();
        assert!(matches!(err, PersistError::NotATypilusArtefact));
    }

    #[test]
    fn wrong_version_rejected() {
        let (system, _) = tiny_system();
        let mut bytes = system.to_bytes().unwrap();
        bytes[8] = 99; // corrupt the version field
        let err = TrainedSystem::from_bytes(&bytes).unwrap_err();
        assert!(matches!(
            err,
            PersistError::VersionMismatch { found: 99, .. }
        ));
    }

    #[test]
    fn truncated_payload_rejected() {
        let (system, _) = tiny_system();
        let bytes = system.to_bytes().unwrap();
        let err = TrainedSystem::from_bytes(&bytes[..bytes.len() / 2]).unwrap_err();
        assert!(matches!(err, PersistError::Codec(_)));
    }
}
