//! Minimal read-only memory mapping, with no FFI dependency.
//!
//! The zero-copy TypeSpace loader wants the index sidecar mapped rather
//! than read: opening a mapped [`crate::pipeline::TrainedSystem`] then
//! costs O(header), and the kernel pages index data in on demand as
//! queries touch it. The workspace deliberately vendors no `libc`, so
//! on Linux/x86-64 the two syscalls involved (`mmap`, `munmap`) are
//! issued directly; everywhere else [`Mmap::map`] reports `Ok(None)`
//! and callers fall back to a buffered read. Mapping failure is never
//! an error for the same reason — the read path is always correct,
//! just not zero-copy.

use std::fs::File;
use std::io;
use std::path::Path;

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    use std::arch::asm;

    const SYS_MMAP: usize = 9;
    const SYS_MUNMAP: usize = 11;
    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    /// Raw syscalls return `-errno` in `[-4095, -1]` on failure.
    fn syscall_error(ret: isize) -> Option<i32> {
        if (-4095..0).contains(&ret) {
            Some(-ret as i32)
        } else {
            None
        }
    }

    /// Maps `len` bytes of `fd` read-only and private.
    ///
    /// # Safety
    ///
    /// `fd` must be a valid open file descriptor and `len` non-zero.
    /// The returned pages stay valid until `munmap`.
    pub unsafe fn mmap(len: usize, fd: i32) -> Result<*const u8, i32> {
        let ret: isize;
        // SAFETY (lint D5): the raw `syscall` instruction with the
        // x86-64 Linux convention — number in rax, arguments in
        // rdi/rsi/rdx/r10/r8/r9, rcx/r11 clobbered by the kernel. A
        // NULL hint address and offset 0 are always valid; the kernel
        // validates fd/len and reports -errno instead of faulting.
        asm!(
            "syscall",
            inlateout("rax") SYS_MMAP as isize => ret,
            in("rdi") 0usize,
            in("rsi") len,
            in("rdx") PROT_READ,
            in("r10") MAP_PRIVATE,
            in("r8") fd as isize,
            in("r9") 0usize,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        match syscall_error(ret) {
            Some(errno) => Err(errno),
            None => Ok(ret as *const u8),
        }
    }

    /// Unmaps a region returned by [`mmap`].
    ///
    /// # Safety
    ///
    /// `(ptr, len)` must be exactly a live mapping from [`mmap`]; no
    /// references into it may outlive this call.
    pub unsafe fn munmap(ptr: *const u8, len: usize) {
        let ret: isize;
        // SAFETY (lint D5): same calling convention as above; munmap
        // only touches the page tables of this process.
        asm!(
            "syscall",
            inlateout("rax") SYS_MUNMAP as isize => ret,
            in("rdi") ptr,
            in("rsi") len,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        // Unmapping a region we mapped cannot fail except by misuse;
        // there is no recovery at drop time anyway.
        debug_assert!(syscall_error(ret).is_none());
    }
}

/// A read-only memory-mapped file. Obtained from [`Mmap::map`]; the
/// mapping lives until drop, independent of the originating `File`.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub struct Mmap {
    ptr: *const u8,
    len: usize,
}

/// On targets without the raw-syscall mapping this type is
/// uninhabited — [`Mmap::map`] always answers `Ok(None)` there.
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
pub struct Mmap {
    never: std::convert::Infallible,
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
// SAFETY: the mapping is read-only (PROT_READ) and private, so shared
// references to its bytes are valid from any thread.
unsafe impl Send for Mmap {}
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
// SAFETY: as above — immutable pages, no interior mutability.
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `path` read-only. `Ok(None)` means mapping is unavailable
    /// (unsupported target, empty file, or the kernel refused) and the
    /// caller should fall back to reading the file; errors are real
    /// filesystem failures like a missing file.
    ///
    /// # Errors
    ///
    /// Propagates `open`/`stat` failures only — never mapping failures.
    pub fn map(path: impl AsRef<Path>) -> io::Result<Option<Mmap>> {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        {
            use std::os::unix::io::AsRawFd;
            let file = File::open(path)?;
            let len = file.metadata()?.len();
            if len == 0 || len > usize::MAX as u64 {
                return Ok(None);
            }
            // SAFETY: the fd is open for the duration of the call and
            // len is non-zero; the mapping outlives the closed fd by
            // POSIX mmap semantics.
            match unsafe { sys::mmap(len as usize, file.as_raw_fd()) } {
                Ok(ptr) => Ok(Some(Mmap {
                    ptr,
                    len: len as usize,
                })),
                Err(_errno) => Ok(None),
            }
        }
        #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
        {
            // Still distinguish "no file" from "no mapping support".
            File::open(path)?;
            Ok(None)
        }
    }

    /// Length of the mapped file in bytes.
    pub fn len(&self) -> usize {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        {
            self.len
        }
        #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
        match self.never {}
    }

    /// Whether the mapping is empty (never: empty files are not mapped).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
        // bytes, unmapped only in drop, after which no `&self` exists.
        unsafe {
            std::slice::from_raw_parts(self.ptr, self.len)
        }
        #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
        match self.never {}
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
impl Drop for Mmap {
    fn drop(&mut self) {
        // SAFETY: `(ptr, len)` is the exact region mmap returned, and
        // drop runs after every borrow of the slice has ended.
        unsafe { sys::munmap(self.ptr, self.len) }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_file_contents_or_falls_back() {
        let dir = std::env::temp_dir().join(format!("typilus_mmap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mapped.bin");
        let content: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        crate::atomic_io::write_atomic(&path, &content).unwrap();
        match Mmap::map(&path).unwrap() {
            Some(m) => {
                assert_eq!(m.len(), content.len());
                assert!(!m.is_empty());
                assert_eq!(m.as_ref(), &content[..]);
                // Page-aligned, hence 8-aligned — what the zero-copy
                // index view requires.
                assert_eq!(m.as_ref().as_ptr() as usize % 4096, 0);
            }
            None => {
                // Acceptable only where the fast path does not exist.
                #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
                panic!("mmap must map a small regular file on linux/x86-64");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_an_error_empty_file_is_none() {
        let dir = std::env::temp_dir().join(format!("typilus_mmap_none_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(Mmap::map(dir.join("absent.bin")).is_err());
        let empty = dir.join("empty.bin");
        crate::atomic_io::write_atomic(&empty, b"").unwrap();
        assert!(Mmap::map(&empty).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
