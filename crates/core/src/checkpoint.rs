//! Epoch-boundary training checkpoints.
//!
//! After each epoch, [`crate::pipeline::train_with_options`] can
//! persist everything the loop needs to continue — model parameters,
//! Adam moments, the epoch cursor and the per-epoch stats so far —
//! through [`crate::atomic_io`], one file per epoch
//! (`epoch-0003.ckpt`). Because batching and reduction order are
//! deterministic at any thread count, a run killed after any epoch and
//! resumed from its checkpoint produces byte-identical artifacts to an
//! uninterrupted run.
//!
//! [`scan`] finds the newest checkpoint whose integrity footer,
//! header and payload all verify; corrupt or partial files are
//! reported and skipped, so resume falls back to the latest valid one.

use crate::atomic_io;
use crate::persist::PersistError;
use crate::pipeline::{EpochStats, TypilusConfig};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use typilus_models::TypeModel;
use typilus_nn::Adam;

/// Magic bytes at the start of every checkpoint payload.
const MAGIC: &[u8; 8] = b"TYPCKPT\0";
/// Bump when the checkpoint layout changes.
const VERSION: u32 = 1;

/// A training checkpoint: the full state of the epoch loop after
/// `epochs_done` epochs.
#[derive(Debug, Clone, Deserialize)]
pub struct Checkpoint {
    /// Number of completed epochs (the resume cursor).
    pub epochs_done: usize,
    /// The config of the run that wrote the checkpoint. Resume refuses
    /// to continue under a different config.
    pub config: TypilusConfig,
    /// Model weights and vocabularies after `epochs_done` epochs.
    pub model: TypeModel,
    /// Optimizer state (Adam moments and step counter).
    pub optimizer: Adam,
    /// Stats of the completed epochs.
    pub stats: Vec<EpochStats>,
}

/// Borrowed view with the same serbin layout as [`Checkpoint`], so the
/// training loop can write a checkpoint without cloning the model.
/// (Manual impl: the vendored serde_derive does not handle lifetimes.)
struct CheckpointRef<'a> {
    epochs_done: usize,
    config: &'a TypilusConfig,
    model: &'a TypeModel,
    optimizer: &'a Adam,
    stats: &'a [EpochStats],
}

impl Serialize for CheckpointRef<'_> {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        // Field order and count MUST match the derived Deserialize of
        // [`Checkpoint`]: serbin structs are bare field concatenation.
        let mut st = serializer.serialize_struct("Checkpoint", 5)?;
        st.serialize_field("epochs_done", &self.epochs_done)?;
        st.serialize_field("config", self.config)?;
        st.serialize_field("model", self.model)?;
        st.serialize_field("optimizer", self.optimizer)?;
        st.serialize_field("stats", self.stats)?;
        st.end()
    }
}

/// File name of the checkpoint written after `epochs_done` epochs.
pub fn file_name(epochs_done: usize) -> String {
    format!("epoch-{epochs_done:04}.ckpt")
}

/// Parses `epochs_done` back out of a checkpoint file name.
fn parse_file_name(name: &str) -> Option<usize> {
    name.strip_prefix("epoch-")?
        .strip_suffix(".ckpt")?
        .parse()
        .ok()
}

/// Writes the checkpoint for `epochs_done` completed epochs into `dir`
/// (created if missing), atomically and checksummed. Returns the path
/// written.
///
/// # Errors
///
/// Propagates filesystem and codec errors.
pub fn write(
    dir: &Path,
    epochs_done: usize,
    config: &TypilusConfig,
    model: &TypeModel,
    optimizer: &Adam,
    stats: &[EpochStats],
) -> Result<PathBuf, PersistError> {
    std::fs::create_dir_all(dir)?;
    let mut payload = Vec::new();
    payload.extend_from_slice(MAGIC);
    payload.extend_from_slice(&VERSION.to_le_bytes());
    payload.extend_from_slice(&typilus_serbin::to_bytes(&CheckpointRef {
        epochs_done,
        config,
        model,
        optimizer,
        stats,
    })?);
    let path = dir.join(file_name(epochs_done));
    atomic_io::write_artifact(&path, &payload)?;
    Ok(path)
}

/// Loads and fully validates one checkpoint file.
///
/// # Errors
///
/// Filesystem errors, the typed corruption errors of
/// [`atomic_io::read_artifact`], wrong magic/version, and codec errors.
pub fn load(path: &Path) -> Result<Checkpoint, PersistError> {
    let payload = atomic_io::read_artifact(path)?;
    if payload.len() < MAGIC.len() + 4 || &payload[..MAGIC.len()] != MAGIC {
        return Err(PersistError::NotATypilusArtefact);
    }
    let mut ver = [0u8; 4];
    ver.copy_from_slice(&payload[MAGIC.len()..MAGIC.len() + 4]);
    let found = u32::from_le_bytes(ver);
    if found != VERSION {
        return Err(PersistError::VersionMismatch {
            found,
            expected: VERSION,
        });
    }
    Ok(typilus_serbin::from_bytes(&payload[MAGIC.len() + 4..])?)
}

/// Result of scanning a checkpoint directory.
#[derive(Debug)]
pub struct Scan {
    /// The newest checkpoint that loaded and verified, if any.
    pub latest: Option<(PathBuf, Checkpoint)>,
    /// Checkpoint files that were rejected (corrupt, truncated, wrong
    /// version), newest first — resume skipped past these.
    pub skipped: Vec<(PathBuf, PersistError)>,
}

/// Finds the latest valid checkpoint in `dir`, skipping corrupt or
/// partial ones. A missing directory scans as empty. Files that do not
/// match the `epoch-NNNN.ckpt` naming (e.g. orphaned `.*.tmp` files
/// from an interrupted atomic write) are ignored entirely.
///
/// # Errors
///
/// Only directory-listing failures; per-file problems land in
/// [`Scan::skipped`].
pub fn scan(dir: &Path) -> Result<Scan, PersistError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(Scan {
                latest: None,
                skipped: Vec::new(),
            })
        }
        Err(e) => return Err(e.into()),
    };
    let mut candidates: Vec<(usize, PathBuf)> = Vec::new();
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        if let Some(epochs_done) = parse_file_name(&name.to_string_lossy()) {
            candidates.push((epochs_done, entry.path()));
        }
    }
    // Newest first; the name embeds the epoch cursor, so this is a
    // deterministic order whatever read_dir returned.
    candidates.sort_by(|a, b| b.cmp(a));
    let mut skipped = Vec::new();
    for (_, path) in candidates {
        match load(&path) {
            Ok(checkpoint) => {
                return Ok(Scan {
                    latest: Some((path, checkpoint)),
                    skipped,
                })
            }
            Err(e) => skipped.push((path, e)),
        }
    }
    Ok(Scan {
        latest: None,
        skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_names_round_trip_and_sort() {
        assert_eq!(file_name(3), "epoch-0003.ckpt");
        assert_eq!(parse_file_name("epoch-0003.ckpt"), Some(3));
        assert_eq!(parse_file_name("epoch-12345.ckpt"), Some(12345));
        assert_eq!(parse_file_name(".epoch-0003.ckpt.tmp"), None);
        assert_eq!(parse_file_name("model.typilus"), None);
        assert!(file_name(2) < file_name(10));
    }

    #[test]
    fn scan_of_missing_dir_is_empty() {
        let scan = scan(Path::new("/nonexistent/typilus_ckpt_dir")).unwrap();
        assert!(scan.latest.is_none());
        assert!(scan.skipped.is_empty());
    }
}
