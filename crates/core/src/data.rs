//! Corpus preparation: parse, deduplicate, build graphs, split.

use std::collections::BTreeMap;
use std::fmt;
use typilus_corpus::{deduplicate, split_with, Corpus, Split, DEFAULT_THRESHOLD};
use typilus_graph::{build_graph, GraphConfig, ProgramGraph};
use typilus_pyast::{parse, Parsed, StmtKind, SymbolTable};
use typilus_types::TypeHierarchy;

/// One source file with everything derived from it.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Pseudo-path.
    pub name: String,
    /// Raw source text.
    pub source: String,
    /// Parse result (AST + tokens).
    pub parsed: Parsed,
    /// Symbol table.
    pub table: SymbolTable,
    /// Program graph (annotations erased per the config).
    pub graph: ProgramGraph,
}

/// Why a source file was excluded from the prepared corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SkipReason {
    /// The file is not valid Python; carries the parse error text.
    ParseError(String),
    /// The file parsed but produced an empty program graph (nothing to
    /// train or predict on).
    EmptyGraph,
}

impl fmt::Display for SkipReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkipReason::ParseError(e) => write!(f, "parse error: {e}"),
            SkipReason::EmptyGraph => write!(f, "empty program graph"),
        }
    }
}

/// Files excluded during corpus preparation, keyed by file name
/// (`BTreeMap`, so every report over it is deterministic). The
/// pipeline degrades gracefully — one unparseable file never aborts
/// ingestion — but what was skipped is named, never hidden.
#[derive(Debug, Clone, Default)]
pub struct Quarantine {
    /// Skipped file name → why it was skipped.
    pub skipped: BTreeMap<String, SkipReason>,
}

impl Quarantine {
    /// Number of quarantined files.
    pub fn len(&self) -> usize {
        self.skipped.len()
    }

    /// Whether every file survived preparation.
    pub fn is_empty(&self) -> bool {
        self.skipped.is_empty()
    }

    /// Number of files skipped for parse errors.
    pub fn parse_errors(&self) -> usize {
        self.skipped
            .values()
            .filter(|r| matches!(r, SkipReason::ParseError(_)))
            .count()
    }

    /// Number of files skipped for empty graphs.
    pub fn empty_graphs(&self) -> usize {
        self.skipped
            .values()
            .filter(|r| matches!(r, SkipReason::EmptyGraph))
            .count()
    }

    /// One-line summary, e.g. `"2 files quarantined (1 parse error, 1
    /// empty graph)"`.
    pub fn summary(&self) -> String {
        format!(
            "{} files quarantined ({} parse errors, {} empty graphs)",
            self.len(),
            self.parse_errors(),
            self.empty_graphs()
        )
    }
}

/// A corpus parsed, deduplicated and split, ready for training.
#[derive(Debug, Clone)]
pub struct PreparedCorpus {
    /// Files that survived parsing and dedup.
    pub files: Vec<SourceFile>,
    /// Train/valid/test indices into `files`.
    pub split: Split,
    /// Files dropped during preparation, with typed reasons.
    pub quarantine: Quarantine,
}

impl PreparedCorpus {
    /// Builds graphs for every parseable, non-duplicate file and splits
    /// 70-10-20 (paper proportions). Extraction is embarrassingly
    /// parallel and fans out across available cores (the paper extracts
    /// graphs for 118k files, so this is the pipeline's batch stage).
    pub fn from_corpus(corpus: &Corpus, graph_config: &GraphConfig, seed: u64) -> PreparedCorpus {
        let named: Vec<(&str, &str)> = corpus
            .files
            .iter()
            .map(|f| (f.name.as_str(), f.source.as_str()))
            .collect();
        PreparedCorpus::from_sources(&named, graph_config, seed)
    }

    /// Builds a prepared corpus from arbitrary named sources (e.g. `.py`
    /// files read from disk), with the same dedup / parallel extraction /
    /// split pipeline as [`PreparedCorpus::from_corpus`].
    pub fn from_sources(
        named_sources: &[(&str, &str)],
        graph_config: &GraphConfig,
        seed: u64,
    ) -> PreparedCorpus {
        let sources: Vec<&str> = named_sources.iter().map(|(_, s)| *s).collect();
        let kept = deduplicate(&sources, DEFAULT_THRESHOLD);
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let chunk_size = kept.len().div_ceil(threads).max(1);
        // Each extraction result is either a usable file or a typed
        // skip reason: a broken file degrades to a quarantine entry
        // instead of silently vanishing (or killing the worker).
        type Extracted = Result<SourceFile, (String, SkipReason)>;
        let mut per_chunk: Vec<Vec<Extracted>> = Vec::new();
        crossbeam::scope(|scope| {
            let handles: Vec<_> = kept
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move |_| {
                        chunk
                            .iter()
                            .map(|&idx| {
                                let (name, source) = named_sources[idx];
                                let parsed = match parse(source) {
                                    Ok(parsed) => parsed,
                                    Err(e) => {
                                        return Err((
                                            name.to_string(),
                                            SkipReason::ParseError(e.to_string()),
                                        ))
                                    }
                                };
                                let table = SymbolTable::build(&parsed.module);
                                let graph = build_graph(&parsed, &table, graph_config, name);
                                // An empty or comment-only file builds just the
                                // module-root node: nothing to train on.
                                if graph.node_count() <= 1 {
                                    return Err((name.to_string(), SkipReason::EmptyGraph));
                                }
                                Ok(SourceFile {
                                    name: name.to_string(),
                                    source: source.to_string(),
                                    parsed,
                                    table,
                                    graph,
                                })
                            })
                            .collect::<Vec<Extracted>>()
                    })
                })
                .collect();
            for h in handles {
                per_chunk.push(h.join().expect("extraction worker panicked"));
            }
        })
        .expect("extraction scope panicked");
        let mut files = Vec::new();
        let mut quarantine = Quarantine::default();
        for extracted in per_chunk.into_iter().flatten() {
            match extracted {
                Ok(file) => files.push(file),
                Err((name, reason)) => {
                    quarantine.skipped.insert(name, reason);
                }
            }
        }
        let split = split_with(files.len(), seed, 0.7, 0.1);
        PreparedCorpus {
            files,
            split,
            quarantine,
        }
    }

    /// Graphs of the given file indices.
    pub fn graphs_of(&self, indices: &[usize]) -> Vec<ProgramGraph> {
        indices
            .iter()
            .map(|&i| self.files[i].graph.clone())
            .collect()
    }

    /// Registers every class defined anywhere in the corpus into a type
    /// hierarchy (the evaluation lattice must know user-defined types).
    pub fn register_classes(&self, hierarchy: &mut TypeHierarchy) {
        fn walk(stmts: &[typilus_pyast::Stmt], hierarchy: &mut TypeHierarchy) {
            for stmt in stmts {
                match &stmt.kind {
                    StmtKind::ClassDef(c) => {
                        let bases: Vec<String> = c
                            .bases
                            .iter()
                            .filter_map(typilus_pyast::Expr::annotation_text)
                            .collect();
                        let refs: Vec<&str> = bases.iter().map(String::as_str).collect();
                        hierarchy.register_class(&c.name, &refs);
                        walk(&c.body, hierarchy);
                    }
                    StmtKind::FunctionDef(f) => walk(&f.body, hierarchy),
                    _ => {}
                }
            }
        }
        for f in &self.files {
            walk(&f.parsed.module.body, hierarchy);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typilus_corpus::{generate, CorpusConfig};

    #[test]
    fn prepares_and_splits() {
        let corpus = generate(&CorpusConfig {
            files: 12,
            seed: 1,
            ..CorpusConfig::default()
        });
        let prepared = PreparedCorpus::from_corpus(&corpus, &GraphConfig::default(), 0);
        // Duplicates removed; everything else parses.
        assert!(prepared.files.len() >= 10);
        assert!(prepared.files.len() <= 12);
        let n = prepared.files.len();
        assert_eq!(
            prepared.split.train.len() + prepared.split.valid.len() + prepared.split.test.len(),
            n
        );
        for f in &prepared.files {
            assert!(f.graph.node_count() > 0, "{} has an empty graph", f.name);
        }
    }

    #[test]
    fn broken_files_are_quarantined_with_typed_reasons() {
        let named = [
            ("good.py", "def f(x: int) -> int:\n    return x\n"),
            ("broken.py", "def f(:\n"),
            ("empty.py", ""),
        ];
        let prepared = PreparedCorpus::from_sources(&named, &GraphConfig::default(), 0);
        assert_eq!(prepared.files.len(), 1);
        assert_eq!(prepared.files[0].name, "good.py");
        assert_eq!(prepared.quarantine.len(), 2);
        assert!(matches!(
            prepared.quarantine.skipped.get("broken.py"),
            Some(SkipReason::ParseError(_))
        ));
        assert_eq!(
            prepared.quarantine.skipped.get("empty.py"),
            Some(&SkipReason::EmptyGraph)
        );
        assert_eq!(prepared.quarantine.parse_errors(), 1);
        assert_eq!(prepared.quarantine.empty_graphs(), 1);
        assert_eq!(
            prepared.quarantine.summary(),
            "2 files quarantined (1 parse errors, 1 empty graphs)"
        );
    }

    #[test]
    fn clean_corpus_has_empty_quarantine() {
        let corpus = generate(&CorpusConfig {
            files: 8,
            seed: 2,
            ..CorpusConfig::default()
        });
        let prepared = PreparedCorpus::from_corpus(&corpus, &GraphConfig::default(), 0);
        assert!(prepared.quarantine.is_empty());
    }

    #[test]
    fn classes_registered() {
        let corpus = generate(&CorpusConfig {
            files: 12,
            seed: 1,
            ..CorpusConfig::default()
        });
        let prepared = PreparedCorpus::from_corpus(&corpus, &GraphConfig::default(), 0);
        let mut h = TypeHierarchy::new();
        prepared.register_classes(&mut h);
        let classes = corpus.universe.user_classes();
        let known = classes.iter().filter(|c| h.contains(c)).count();
        assert!(known > 0, "at least some user classes registered");
    }
}
