//! Fault-injection harness (failpoint registry), behind the `faults`
//! feature.
//!
//! Production code marks crash-relevant sites with
//! [`check`]`("site.name")`. Without the feature the call is a no-op
//! that compiles to nothing; with `--features faults` the test suite
//! arms sites via [`arm`]/[`arm_at`] to inject I/O errors, short
//! (torn) writes and panics, proving the crash-safety layer end to
//! end: atomic writes leave no torn artifacts, corrupted checkpoints
//! are skipped, and a killed-and-resumed training run is byte-identical
//! to an uninterrupted one.
//!
//! Registered sites:
//!
//! | site               | effect of each [`Fault`]                       |
//! |--------------------|------------------------------------------------|
//! | `atomic_io.create` | `IoError`: temp-file creation fails            |
//! | `atomic_io.write`  | `IoError`: payload write fails; `ShortWrite(n)`: only `n` bytes land (torn write) |
//! | `atomic_io.sync`   | `IoError`: fsync fails                         |
//! | `atomic_io.rename` | `IoError`: rename fails, destination untouched |
//! | `train.batch`      | any: panic mid-epoch (crash between checkpoints) |
//! | `serve.engine.batch` | any: engine panic mid-batch — the serve supervisor must recover |
//! | `serve.reply.write`  | `IoError`: reply write fails; `ShortWrite(n)`: torn reply frame; `Panic`: conn thread dies |
//! | `serve.add_marker`   | any: the marker is not bound and the client gets a typed `space` error |
//! | `serve.reindex`      | any: the index is left unchanged and the client gets a typed `space` error |
//!
//! The registry is process-global; tests that arm faults must
//! serialize themselves (e.g. behind a shared `Mutex`) and disarm in
//! all exit paths.

/// An injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The site fails with an `std::io::Error` ("injected fault at
    /// \<site\>").
    IoError,
    /// A write-site writes only the first `n` bytes and then reports
    /// success — a torn write the integrity footer must catch at load.
    ShortWrite(usize),
    /// The site panics, simulating a crash at that point.
    Panic,
}

impl Fault {
    /// Panics with a recognizable payload. Used by sites where the only
    /// meaningful injection is a crash (and as the fallback for fault
    /// kinds a site cannot express).
    // lint: allow(S) — fault injection exists to crash; a no-op without the faults feature
    pub fn trigger_panic(&self, site: &str) -> ! {
        panic!("injected fault at {site}: {self:?}")
    }
}

#[cfg(feature = "faults")]
mod registry {
    use super::Fault;
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    struct Plan {
        fault: Fault,
        /// Hits to let pass before firing.
        skip: usize,
    }

    struct Registry {
        plans: BTreeMap<String, Plan>,
        hits: BTreeMap<String, usize>,
    }

    static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

    fn with<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
        let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
        f(guard.get_or_insert_with(|| Registry {
            plans: BTreeMap::new(),
            hits: BTreeMap::new(),
        }))
    }

    /// Arms `site` to inject `fault` on every subsequent hit.
    pub fn arm(site: &str, fault: Fault) {
        arm_at(site, fault, 0);
    }

    /// Arms `site` to let `skip` hits pass and inject `fault` on every
    /// hit after that (e.g. to crash in the middle of a later epoch).
    pub fn arm_at(site: &str, fault: Fault, skip: usize) {
        with(|r| {
            r.plans.insert(site.to_string(), Plan { fault, skip });
        });
    }

    /// Disarms every site and clears hit counters.
    pub fn disarm_all() {
        with(|r| {
            r.plans.clear();
            r.hits.clear();
        });
    }

    /// How many times `site` has been reached since the last
    /// [`disarm_all`].
    pub fn hits(site: &str) -> usize {
        with(|r| r.hits.get(site).copied().unwrap_or(0))
    }

    /// Called by instrumented sites: counts the hit and returns the
    /// fault to inject, if the site is armed and past its skip count.
    pub fn check(site: &str) -> Option<Fault> {
        with(|r| {
            let hit = r.hits.entry(site.to_string()).or_insert(0);
            let seen = *hit;
            *hit += 1;
            let plan = r.plans.get(site)?;
            if seen >= plan.skip {
                Some(plan.fault)
            } else {
                None
            }
        })
    }
}

#[cfg(feature = "faults")]
pub use registry::{arm, arm_at, check, disarm_all, hits};

/// Fault check at `_site`: always clean without the `faults` feature.
#[cfg(not(feature = "faults"))]
#[inline(always)]
pub fn check(_site: &str) -> Option<Fault> {
    None
}

#[cfg(all(test, feature = "faults"))]
mod tests {
    use super::*;

    // These unit tests share the process-global registry with any other
    // faults-enabled test in this binary; keep them self-contained by
    // using site names nothing else arms.
    #[test]
    fn armed_site_fires_after_skip() {
        arm_at("unit.skip", Fault::IoError, 2);
        assert_eq!(check("unit.skip"), None);
        assert_eq!(check("unit.skip"), None);
        assert_eq!(check("unit.skip"), Some(Fault::IoError));
        assert_eq!(check("unit.skip"), Some(Fault::IoError));
        assert_eq!(hits("unit.skip"), 4);
        arm_at("unit.skip", Fault::Panic, usize::MAX);
    }

    #[test]
    fn unarmed_site_is_clean() {
        assert_eq!(check("unit.unarmed"), None);
    }
}
