//! # typilus
//!
//! A Rust reproduction of *Typilus: Neural Type Hints* (Allamanis,
//! Barr, Ducousso & Gao, PLDI 2020): graph-neural type prediction for
//! Python with a deep-similarity-learned **TypeSpace**, adaptive kNN
//! prediction over an open type vocabulary, and type-checker filtering.
//!
//! This crate is the public face of the system; the substrates live in
//! sibling crates (`typilus-pyast`, `typilus-graph`, `typilus-nn`,
//! `typilus-models`, `typilus-space`, `typilus-check`,
//! `typilus-corpus`). The pipeline is:
//!
//! 1. [`PreparedCorpus::from_corpus`] — parse, deduplicate, build
//!    program graphs, split 70-10-20.
//! 2. [`train`] — train the encoder with the configured loss
//!    (classification / space / Typilus) and build the type map.
//! 3. [`TrainedSystem::predict_file`] / `predict_source` — kNN type
//!    predictions with confidences.
//! 4. [`metrics`] and [`typecheck_eval`] — every table and figure of
//!    the paper's evaluation.
//!
//! ```no_run
//! use typilus::{train, PreparedCorpus, TypilusConfig};
//! use typilus_corpus::{generate, CorpusConfig};
//!
//! let corpus = generate(&CorpusConfig::default());
//! let data = PreparedCorpus::from_corpus(
//!     &corpus,
//!     &typilus_graph::GraphConfig::default(),
//!     0,
//! );
//! let system = train(&data, &TypilusConfig::default());
//! let preds = system.predict_file(&data, data.split.test[0]);
//! for p in preds.iter().take(5) {
//!     println!("{}: {:?}", p.name, p.top().map(|t| t.ty.to_string()));
//! }
//! ```

#![warn(missing_docs)]

pub mod atomic_io;
pub mod checkpoint;
pub mod data;
pub mod faults;
pub mod metrics;
pub mod mmap;
pub mod persist;
pub mod pipeline;
pub mod suggest;
pub mod typecheck_eval;

pub use data::{PreparedCorpus, Quarantine, SkipReason, SourceFile};
pub use metrics::{
    by_annotation_count, by_kind, default_thresholds, evaluate_files, pr_curve, table2_row,
    Criterion, EvalExample, KindBreakdown, MatchRates, PrPoint, Table2Row,
};
pub use persist::{open_space_index, space_sidecar_path, PersistError};
pub use pipeline::{
    train, train_with_options, AddMarkerError, EpochStats, Parallelism, SymbolPrediction,
    TrainError, TrainOptions, TrainedSystem, TypilusConfig,
};
pub use suggest::{SuggestOptions, Suggestion};
pub use typecheck_eval::{
    check_pr_curve, check_predictions, Category, CategoryStats, CheckPrPoint, CheckedPrediction,
    Table5,
};

// Re-export the substrate types users need at the API boundary.
pub use typilus_check::CheckerProfile;
pub use typilus_graph::{EdgeLabel, EdgeSet, GraphConfig};
pub use typilus_models::{Aggregation, EncoderKind, LossKind, ModelConfig, NodeInit};
pub use typilus_space::{
    KnnConfig, RpForestConfig, SpaceConfig, SpaceError, SpaceIndex, TypePrediction,
};
pub use typilus_types::{PyType, TypeHierarchy};
