//! Correctness modulo a type checker (paper Sec. 6.3, Table 5, Fig. 7).
//!
//! For every top prediction over the test files: substitute it as the
//! symbol's annotation (adding one for unannotated symbols, replacing
//! the existing one otherwise), run the optional type checker, and count
//! the prediction *incorrect* if the substitution introduces a type
//! error. Files that fail to type check before any substitution are
//! discarded, exactly as in the paper.

use crate::data::PreparedCorpus;
use crate::pipeline::TrainedSystem;
use typilus_check::{CheckerProfile, TypeChecker};
use typilus_types::PyType;

/// The paper's three substitution categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// `ϵ → τ`: the symbol had no annotation.
    FreshAnnotation,
    /// `τ → τ'`: the prediction differs from the original annotation.
    ChangedAnnotation,
    /// `τ → τ`: the prediction equals the original annotation.
    SameAnnotation,
}

/// Outcome of one substituted prediction.
#[derive(Debug, Clone)]
pub struct CheckedPrediction {
    /// Which substitution category this was.
    pub category: Category,
    /// Whether the program still type checks after substitution.
    pub passes: bool,
    /// The model's confidence in the prediction.
    pub confidence: f32,
    /// The predicted type.
    pub predicted: PyType,
    /// File index of the substitution.
    pub file_idx: usize,
    /// Symbol name.
    pub symbol_name: String,
}

/// Aggregate results per category (one column pair of Table 5).
#[derive(Debug, Clone, Copy, Default)]
pub struct CategoryStats {
    /// Number of assessed predictions in the category.
    pub total: usize,
    /// Number that type check after substitution.
    pub passing: usize,
}

impl CategoryStats {
    /// Accuracy (% passing), 100 when empty.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            100.0
        } else {
            100.0 * self.passing as f64 / self.total as f64
        }
    }
}

/// Full Table 5 numbers for one checker profile.
#[derive(Debug, Clone, Default)]
pub struct Table5 {
    /// `ϵ → τ` row.
    pub fresh: CategoryStats,
    /// `τ → τ'` row.
    pub changed: CategoryStats,
    /// `τ → τ` row.
    pub same: CategoryStats,
    /// Files discarded because they fail checking before substitution.
    pub discarded_files: usize,
    /// Files assessed.
    pub assessed_files: usize,
}

impl Table5 {
    /// Overall totals across categories.
    pub fn overall(&self) -> CategoryStats {
        CategoryStats {
            total: self.fresh.total + self.changed.total + self.same.total,
            passing: self.fresh.passing + self.changed.passing + self.same.passing,
        }
    }

    /// Proportion of assessed predictions in a category (%).
    pub fn proportion(&self, category: Category) -> f64 {
        let total = self.overall().total;
        if total == 0 {
            return 0.0;
        }
        let c = match category {
            Category::FreshAnnotation => self.fresh.total,
            Category::ChangedAnnotation => self.changed.total,
            Category::SameAnnotation => self.same.total,
        };
        100.0 * c as f64 / total as f64
    }
}

/// Runs the substitution experiment over `indices` with one checker
/// profile, returning per-prediction outcomes and the aggregate table.
pub fn check_predictions(
    system: &TrainedSystem,
    data: &PreparedCorpus,
    indices: &[usize],
    profile: CheckerProfile,
    min_confidence: f32,
) -> (Vec<CheckedPrediction>, Table5) {
    let checker = TypeChecker::new(profile);
    let mut outcomes = Vec::new();
    let mut table = Table5::default();
    for &idx in indices {
        let file = &data.files[idx];
        // Discard files that fail before substitution (paper protocol).
        if !checker.check(&file.parsed, &file.table).is_empty() {
            table.discarded_files += 1;
            continue;
        }
        table.assessed_files += 1;
        for prediction in system.predict_file(data, idx) {
            let Some(top) = prediction.top() else {
                continue;
            };
            // The paper skips Any predictions.
            if top.ty.is_top() {
                continue;
            }
            if prediction.confidence() < min_confidence {
                continue;
            }
            let category = match &prediction.ground_truth {
                None => Category::FreshAnnotation,
                Some(orig) if *orig == top.ty => Category::SameAnnotation,
                Some(_) => Category::ChangedAnnotation,
            };
            let issues = checker.check_with_override(
                &file.parsed,
                &file.table,
                prediction.symbol,
                top.ty.clone(),
            );
            let passes = issues.is_empty();
            let stats = match category {
                Category::FreshAnnotation => &mut table.fresh,
                Category::ChangedAnnotation => &mut table.changed,
                Category::SameAnnotation => &mut table.same,
            };
            stats.total += 1;
            if passes {
                stats.passing += 1;
            }
            outcomes.push(CheckedPrediction {
                category,
                passes,
                confidence: prediction.confidence(),
                predicted: top.ty.clone(),
                file_idx: idx,
                symbol_name: prediction.name.clone(),
            });
        }
    }
    (outcomes, table)
}

/// One point of the Fig. 7 precision–recall curve: precision = fraction
/// type-checking among predictions above the threshold; recall =
/// fraction of all assessed predictions above the threshold.
#[derive(Debug, Clone, Copy)]
pub struct CheckPrPoint {
    /// Confidence threshold.
    pub threshold: f32,
    /// Recall at this threshold.
    pub recall: f64,
    /// Precision at this threshold.
    pub precision: f64,
}

/// Sweeps the confidence threshold over checked predictions (Fig. 7).
pub fn check_pr_curve(outcomes: &[CheckedPrediction], thresholds: &[f32]) -> Vec<CheckPrPoint> {
    let total = outcomes.len();
    thresholds
        .iter()
        .map(|&th| {
            let kept: Vec<&CheckedPrediction> =
                outcomes.iter().filter(|o| o.confidence >= th).collect();
            let passing = kept.iter().filter(|o| o.passes).count();
            CheckPrPoint {
                threshold: th,
                recall: if total == 0 {
                    0.0
                } else {
                    kept.len() as f64 / total as f64
                },
                precision: if kept.is_empty() {
                    1.0
                } else {
                    passing as f64 / kept.len() as f64
                },
            }
        })
        .collect()
}
