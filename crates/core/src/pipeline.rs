//! The end-to-end Typilus pipeline (paper Fig. 1): train the encoder
//! with the chosen loss, build the type map from known annotations,
//! predict by kNN in the TypeSpace, optionally filter through the type
//! checker.

use crate::data::{PreparedCorpus, SourceFile};
use crate::persist::PersistError;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use std::path::PathBuf;
use typilus_graph::GraphConfig;
use typilus_models::{LossKind, ModelConfig, PreparedFile, TypeModel};
use typilus_nn::{
    resolve_threads, try_resolve_threads, Adam, PoolCell, ThreadConfigError, WorkerPool,
};
use typilus_pyast::symtable::{SymbolId, SymbolKind};
use typilus_space::{KnnConfig, SpaceConfig, TypeMap, TypePrediction};
use typilus_types::{PyType, TypeHierarchy};

/// Thread-count policy for the data-parallel pipeline stages (minibatch
/// training, corpus preparation, τmap construction, batch prediction).
///
/// Results are bit-identical for every thread count: parallel stages
/// only fan out independent per-file work, and every reduction over
/// their results happens in fixed file-index order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Deserialize)]
pub struct Parallelism {
    /// Worker threads; `0` means auto-detect (the `TYPILUS_THREADS`
    /// environment variable if set, otherwise
    /// [`std::thread::available_parallelism`]).
    pub threads: usize,
}

impl Serialize for Parallelism {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut st = serializer.serialize_struct("Parallelism", 1)?;
        // The thread count is a machine-local execution policy, not a
        // model property: a saved system always records auto-detect, so
        // the artifact is byte-identical whatever `--threads` trained it
        // and the loading machine picks its own worker count.
        st.serialize_field("threads", &0usize)?;
        st.end()
    }
}

impl Parallelism {
    /// A fixed thread count (`0` keeps auto-detection).
    pub fn fixed(threads: usize) -> Parallelism {
        Parallelism { threads }
    }

    /// The concrete worker count to use. A malformed `TYPILUS_THREADS`
    /// warns once and clamps to 1; use [`Parallelism::try_resolve`] to
    /// surface the error instead.
    pub fn resolve(self) -> usize {
        resolve_threads(if self.threads == 0 {
            None
        } else {
            Some(self.threads)
        })
    }

    /// Like [`Parallelism::resolve`], but a malformed `TYPILUS_THREADS`
    /// is a configuration error.
    ///
    /// # Errors
    ///
    /// Returns [`ThreadConfigError`] when auto-detection is in effect
    /// and `TYPILUS_THREADS` is set to anything but a positive integer.
    pub fn try_resolve(self) -> Result<usize, ThreadConfigError> {
        try_resolve_threads(if self.threads == 0 {
            None
        } else {
            Some(self.threads)
        })
    }
}

/// Pipeline hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TypilusConfig {
    /// Model architecture and loss.
    pub model: ModelConfig,
    /// Graph construction (annotation erasure, edge ablations).
    pub graph: GraphConfig,
    /// Training epochs.
    pub epochs: usize,
    /// Files per minibatch.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// kNN prediction parameters (Eq. 5).
    pub knn: KnnConfig,
    /// Whether to build the approximate (Annoy-like) index over the
    /// type map; small maps use exact search.
    pub approximate_index: bool,
    /// Sharded TypeSpace index parameters (shard count, per-tree
    /// forest knobs, overlay rebuild threshold). With more than one
    /// shard the approximate index is built sharded — in parallel,
    /// persisted as an mmap-able sidecar; one shard keeps the
    /// in-memory forest.
    pub space: SpaceConfig,
    /// Types seen at least this many times in training count as
    /// *common* in the evaluation breakdown (paper: 100 at full scale).
    pub common_threshold: usize,
    /// Pipeline RNG seed (batch shuffling).
    pub seed: u64,
    /// Worker-thread policy for the data-parallel stages.
    pub parallelism: Parallelism,
}

impl Default for TypilusConfig {
    fn default() -> Self {
        TypilusConfig {
            model: ModelConfig::default(),
            graph: GraphConfig::default(),
            epochs: 12,
            batch_size: 8,
            lr: 0.01,
            knn: KnnConfig::default(),
            approximate_index: false,
            space: SpaceConfig::default(),
            common_threshold: 20,
            seed: 0,
            parallelism: Parallelism::default(),
        }
    }
}

/// Progress of one training epoch.
#[derive(Debug, Clone, Copy, Deserialize)]
pub struct EpochStats {
    /// Epoch number, from 0.
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub mean_loss: f32,
    /// Wall-clock seconds spent. Display-only: serialization writes it
    /// as `0.0` (see the manual [`Serialize`] impl below) so a saved
    /// system is bit-identical across runs and thread counts.
    pub seconds: f64,
}

impl Serialize for EpochStats {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut st = serializer.serialize_struct("EpochStats", 3)?;
        st.serialize_field("epoch", &self.epoch)?;
        st.serialize_field("mean_loss", &self.mean_loss)?;
        // Timing is wall-clock noise; zero it in the artifact.
        st.serialize_field("seconds", &0.0f64)?;
        st.end()
    }
}

/// A prediction for one symbol of a file.
#[derive(Debug, Clone)]
pub struct SymbolPrediction {
    /// Index of the file in the corpus.
    pub file_idx: usize,
    /// The symbol in that file's symbol table.
    pub symbol: SymbolId,
    /// Symbol name.
    pub name: String,
    /// Symbol kind (variable / parameter / return).
    pub kind: SymbolKind,
    /// Ground-truth type, when the source was annotated.
    pub ground_truth: Option<PyType>,
    /// Ranked candidate types with probabilities.
    pub candidates: Vec<TypePrediction>,
}

impl SymbolPrediction {
    /// The top candidate, if any.
    pub fn top(&self) -> Option<&TypePrediction> {
        self.candidates.first()
    }

    /// Confidence of the top candidate (0 when there is none).
    pub fn confidence(&self) -> f32 {
        self.top().map(|t| t.probability).unwrap_or(0.0)
    }
}

/// A trained Typilus system: encoder + type map + evaluation lattice.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedSystem {
    /// The trained model.
    pub model: TypeModel,
    /// The adaptive type map (empty for pure classification models).
    pub type_map: TypeMap,
    /// Lattice with the corpus' user classes registered.
    pub hierarchy: TypeHierarchy,
    /// Count of each ground-truth type in the training annotations,
    /// for common/rare breakdowns. Ordered so a saved system is
    /// byte-for-byte reproducible.
    pub train_type_counts: BTreeMap<String, usize>,
    /// Configuration used.
    pub config: TypilusConfig,
    /// Per-epoch statistics of the training run.
    pub epochs: Vec<EpochStats>,
    /// The system's worker pool: created once (training hands over the
    /// pool it trained with), reused by every batch-prediction call so
    /// worker arenas stay warm. Never persisted — a loaded system
    /// re-creates it lazily from `config.parallelism`.
    pub pool: PoolCell,
}

/// Crash-safety options of a training run; see
/// [`train_with_options`].
#[derive(Debug, Clone, Default)]
pub struct TrainOptions {
    /// Where to persist a checkpoint after every epoch (created if
    /// missing). `None` disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Restart from the latest valid checkpoint in `checkpoint_dir`
    /// instead of from scratch. Corrupt or partial checkpoints are
    /// skipped; if none is valid the run starts fresh with a warning.
    pub resume: bool,
    /// Fault injection: stop with [`TrainError::Killed`] right after
    /// the checkpoint of this epoch (0-based) is written, simulating a
    /// crash at an epoch boundary.
    pub kill_after_epoch: Option<usize>,
}

/// Errors of a checkpointed training run.
#[derive(Debug)]
pub enum TrainError {
    /// Reading or writing a checkpoint failed.
    Checkpoint(PersistError),
    /// `resume` was requested without a `checkpoint_dir`.
    ResumeWithoutDir,
    /// The latest valid checkpoint was written under a different
    /// config; resuming would silently train a different model.
    ConfigMismatch {
        /// The offending checkpoint.
        path: PathBuf,
    },
    /// The injected kill fired after this epoch's checkpoint was
    /// written (see [`TrainOptions::kill_after_epoch`]).
    Killed {
        /// The completed epoch the run was killed after.
        epoch: usize,
    },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            TrainError::ResumeWithoutDir => {
                write!(f, "--resume requires a checkpoint directory")
            }
            TrainError::ConfigMismatch { path } => write!(
                f,
                "checkpoint {} was written with a different training config",
                path.display()
            ),
            TrainError::Killed { epoch } => {
                write!(f, "training killed by injected fault after epoch {epoch}")
            }
        }
    }
}

impl std::error::Error for TrainError {}

impl From<PersistError> for TrainError {
    fn from(e: PersistError) -> Self {
        TrainError::Checkpoint(e)
    }
}

/// Errors of one-shot open-vocabulary adaptation
/// ([`TrainedSystem::add_marker`]). Every variant is survivable by a
/// long-lived caller: the system is left exactly as it was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddMarkerError {
    /// The binding snippet is not valid Python.
    Parse(typilus_pyast::ParseError),
    /// The snippet parsed but contains no occurrence of the named
    /// symbol among its annotatable targets.
    SymbolNotFound {
        /// The symbol that was asked for.
        symbol: String,
    },
    /// The snippet has no embeddable targets (e.g. an empty module),
    /// so no embedding could be produced for the symbol.
    NoEmbedding,
    /// The type map rejected the marker (embedding-width mismatch).
    Space(typilus_space::SpaceError),
}

impl std::fmt::Display for AddMarkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AddMarkerError::Parse(e) => write!(f, "binding snippet does not parse: {e}"),
            AddMarkerError::SymbolNotFound { symbol } => {
                write!(f, "symbol {symbol:?} not found in the binding snippet")
            }
            AddMarkerError::NoEmbedding => {
                write!(f, "binding snippet produced no symbol embeddings")
            }
            AddMarkerError::Space(e) => write!(f, "type map rejected the marker: {e}"),
        }
    }
}

impl std::error::Error for AddMarkerError {}

impl From<typilus_space::SpaceError> for AddMarkerError {
    fn from(e: typilus_space::SpaceError) -> Self {
        AddMarkerError::Space(e)
    }
}

/// Trains a system on the prepared corpus' training split.
pub fn train(data: &PreparedCorpus, config: &TypilusConfig) -> TrainedSystem {
    match train_with_options(data, config, &TrainOptions::default()) {
        Ok(system) => system,
        // Without checkpointing or fault injection no error path is
        // reachable.
        Err(e) => unreachable!("train without checkpointing cannot fail: {e}"),
    }
}

/// Trains a system with crash-safety options: per-epoch checkpoints,
/// resume from the latest valid checkpoint, and an injectable
/// epoch-boundary kill.
///
/// A resumed run is **byte-identical** to an uninterrupted one:
/// batching and reduction order are deterministic at any thread count,
/// the RNG replays the shuffles of completed epochs, and optimizer
/// state round-trips exactly (fixed-width little-endian float bits).
///
/// # Errors
///
/// Checkpoint I/O and validation errors, plus [`TrainError::Killed`]
/// when the injected kill fires.
pub fn train_with_options(
    data: &PreparedCorpus,
    config: &TypilusConfig,
    opts: &TrainOptions,
) -> Result<TrainedSystem, TrainError> {
    // Resume: find the newest checkpoint that verifies, skipping (and
    // reporting) corrupt or partial ones.
    let mut resumed = None;
    if opts.resume {
        let dir = opts
            .checkpoint_dir
            .as_deref()
            .ok_or(TrainError::ResumeWithoutDir)?;
        let scan = crate::checkpoint::scan(dir)?;
        for (path, err) in &scan.skipped {
            eprintln!(
                "warning: skipping invalid checkpoint {}: {err}",
                path.display()
            );
        }
        match scan.latest {
            Some((path, checkpoint)) => {
                // Machine-local execution policy (thread counts) is
                // serialized as auto-detect, so this comparison only
                // sees model-relevant config.
                let ours = typilus_serbin::to_bytes(config).map_err(PersistError::from)?;
                let theirs =
                    typilus_serbin::to_bytes(&checkpoint.config).map_err(PersistError::from)?;
                if ours != theirs {
                    return Err(TrainError::ConfigMismatch { path });
                }
                eprintln!(
                    "resuming from {} ({}/{} epochs done)",
                    path.display(),
                    checkpoint.epochs_done,
                    config.epochs
                );
                resumed = Some(checkpoint);
            }
            None => eprintln!(
                "warning: --resume found no valid checkpoint in {}; training from scratch",
                dir.display()
            ),
        }
    }

    // One pool for the whole run: its workers — and their thread-local
    // buffer arenas — survive across batches and epochs, and are handed
    // to the returned system for batch prediction.
    let pool = WorkerPool::new(config.parallelism.resolve());
    let (mut model, mut optimizer, mut epoch_stats, start_epoch) = match resumed {
        Some(checkpoint) => (
            checkpoint.model,
            checkpoint.optimizer,
            checkpoint.stats,
            checkpoint.epochs_done,
        ),
        None => {
            let train_graphs = data.graphs_of(&data.split.train);
            (
                TypeModel::new(config.model, &train_graphs),
                Adam::new(config.lr),
                Vec::with_capacity(config.epochs),
                0,
            )
        }
    };

    // Prepare every file once, fanning the per-file work across the pool.
    let prepared: Vec<PreparedFile> = pool.map_ordered(&data.files, |_, f| model.prepare(&f.graph));

    let mut rng = StdRng::seed_from_u64(config.seed);
    // Replay the shuffles of already-completed epochs so the resumed
    // run sees exactly the batch order the uninterrupted run would.
    for _ in 0..start_epoch {
        let mut order = data.split.train.clone();
        order.shuffle(&mut rng);
    }
    for epoch in start_epoch..config.epochs {
        // lint: allow(D6) — per-epoch wall-clock is operator feedback
        // only; EpochStats::serialize zeroes it out of the artifact
        let start = std::time::Instant::now();
        let mut order = data.split.train.clone();
        order.shuffle(&mut rng);
        let mut losses = Vec::new();
        for chunk in order.chunks(config.batch_size.max(1)) {
            // Failpoint: a crash between epoch boundaries, for the
            // fault-injection suite (no-op without `--features faults`).
            if let Some(fault) = crate::faults::check("train.batch") {
                fault.trigger_panic("train.batch");
            }
            let batch: Vec<&PreparedFile> = chunk.iter().map(|&i| &prepared[i]).collect();
            if let Some((loss, grads)) = model.train_step_parallel(&batch, &pool) {
                if loss.is_finite() {
                    losses.push(loss);
                    optimizer.step_pooled(&mut model.params, grads, &pool);
                }
            }
        }
        let mean_loss = if losses.is_empty() {
            0.0
        } else {
            losses.iter().sum::<f32>() / losses.len() as f32
        };
        epoch_stats.push(EpochStats {
            epoch,
            mean_loss,
            seconds: start.elapsed().as_secs_f64(),
        });
        if let Some(dir) = opts.checkpoint_dir.as_deref() {
            crate::checkpoint::write(dir, epoch + 1, config, &model, &optimizer, &epoch_stats)?;
        }
        if opts.kill_after_epoch == Some(epoch) {
            return Err(TrainError::Killed { epoch });
        }
    }

    // Type map over the training + validation annotations (as in the
    // paper's qualitative setup: "we built the type map over the
    // training and the validation sets").
    let mut type_map = TypeMap::new(config.model.dim);
    let mut train_type_counts: BTreeMap<String, usize> = BTreeMap::new();
    let tau_files: Vec<&PreparedFile> = data
        .split
        .train
        .iter()
        .chain(&data.split.valid)
        .map(|&idx| &prepared[idx])
        .collect();
    let tau_indices: Vec<usize> = data
        .split
        .train
        .iter()
        .chain(&data.split.valid)
        .copied()
        .collect();
    // Embed every train/valid file in parallel; markers are inserted
    // sequentially in file order below, so the map is deterministic.
    let embedded = model.embed_inference_batch(&tau_files, &pool);
    let train_set: HashSet<usize> = data.split.train.iter().copied().collect();
    for (&idx, embeddings) in tau_indices.iter().zip(&embedded) {
        let Some(embeddings) = embeddings else {
            continue;
        };
        for (t, target) in prepared[idx].targets.iter().enumerate() {
            let Some(ty) = &target.ty else { continue };
            type_map
                .add(embeddings.row(t).to_vec(), ty.clone())
                .expect("train-time embedding width always equals the map dimension");
            if train_set.contains(&idx) {
                *train_type_counts.entry(ty.to_string()).or_insert(0) += 1;
            }
        }
    }
    if config.approximate_index && type_map.len() > 64 {
        if config.space.shards > 1 {
            // Sharded build on the training pool: byte-identical at any
            // thread count, and the index persists as an mmap-able
            // sidecar on save.
            if let Err(e) = type_map.build_sharded_index(&config.space, config.seed, Some(&pool)) {
                eprintln!("typilus: sharded index build failed ({e}); using in-memory forest");
                type_map.build_index(config.space.forest, config.seed);
            }
        } else {
            type_map.build_index(config.space.forest, config.seed);
        }
    }

    let mut hierarchy = TypeHierarchy::new();
    data.register_classes(&mut hierarchy);

    Ok(TrainedSystem {
        model,
        type_map,
        hierarchy,
        train_type_counts,
        config: *config,
        epochs: epoch_stats,
        pool: PoolCell::with(pool),
    })
}

impl TrainedSystem {
    /// Predicts types for every annotatable symbol of one corpus file.
    pub fn predict_file(&self, data: &PreparedCorpus, file_idx: usize) -> Vec<SymbolPrediction> {
        let file = &data.files[file_idx];
        let prepared = self.model.prepare(&file.graph);
        self.predict_prepared(&prepared, file_idx)
    }

    /// The system's worker pool, created from `config.parallelism` on
    /// first use (training pre-populates it with the pool it trained
    /// with).
    pub fn worker_pool(&self) -> &WorkerPool {
        self.pool
            .get_or_create(|| self.config.parallelism.resolve())
    }

    /// Predicts over many corpus files at once, fanning the per-file
    /// work across the system's worker pool. Results keep the
    /// order of `indices` and match per-file [`TrainedSystem::predict_file`]
    /// calls exactly.
    pub fn predict_files(
        &self,
        data: &PreparedCorpus,
        indices: &[usize],
    ) -> Vec<Vec<SymbolPrediction>> {
        self.worker_pool()
            .map_ordered(indices, |_, &idx| self.predict_file(data, idx))
    }

    /// Predicts over many out-of-corpus source strings at once, fanning
    /// the per-source work (parse, graph build, prepare, embed, kNN)
    /// across the system's worker pool. Results keep the order of
    /// `sources`, and each entry is exactly what a lone
    /// [`TrainedSystem::predict_source`] call on that source returns —
    /// batching never changes a reply, whatever the pool size. The
    /// serve daemon's batched predict path runs through here.
    pub fn predict_sources(
        &self,
        sources: &[String],
    ) -> Vec<Result<Vec<SymbolPrediction>, typilus_pyast::ParseError>> {
        self.worker_pool()
            .map_ordered(sources, |_, src| self.predict_source(src))
    }

    /// Predicts types for an out-of-corpus source string.
    ///
    /// # Errors
    ///
    /// Returns the parse error if the source is not valid Python.
    pub fn predict_source(
        &self,
        source: &str,
    ) -> Result<Vec<SymbolPrediction>, typilus_pyast::ParseError> {
        let parsed = typilus_pyast::parse(source)?;
        let table = typilus_pyast::SymbolTable::build(&parsed.module);
        let graph = typilus_graph::build_graph(&parsed, &table, &self.config.graph, "<input>");
        let prepared = self.model.prepare(&graph);
        Ok(self.predict_prepared(&prepared, usize::MAX))
    }

    /// Predicts over an already-prepared file.
    pub fn predict_prepared(
        &self,
        prepared: &PreparedFile,
        file_idx: usize,
    ) -> Vec<SymbolPrediction> {
        if prepared.targets.is_empty() {
            return Vec::new();
        }
        let class_predictions = if self.model.config.loss == LossKind::Class {
            self.model.predict_class(prepared)
        } else {
            None
        };
        let embeddings = self.model.embed_inference(prepared);
        let mut out = Vec::with_capacity(prepared.targets.len());
        for (t, target) in prepared.targets.iter().enumerate() {
            let candidates = match (&class_predictions, &embeddings) {
                // The class head emits one prediction per target; a
                // shorter vector would be a model bug — degrade to "no
                // candidates" rather than panic (lint rule S3).
                (Some(preds), _) => match preds.get(t) {
                    Some((ty, p)) => vec![TypePrediction {
                        ty: ty.clone(),
                        probability: *p,
                    }],
                    None => Vec::new(),
                },
                (None, Some(emb)) => self.type_map.predict(emb.row(t), self.config.knn),
                (None, None) => Vec::new(),
            };
            out.push(SymbolPrediction {
                file_idx,
                symbol: target.symbol,
                name: target.name.clone(),
                kind: target.kind,
                ground_truth: target.ty.clone(),
                candidates,
            });
        }
        out
    }

    /// One-shot open-vocabulary adaptation with typed failure reasons:
    /// embeds the named symbol from `source` and binds its embedding to
    /// `ty` in the type map, without any retraining (paper Sec. 4.2).
    /// This is the serve daemon's `add-marker` path, so every failure
    /// is a typed, survivable error and the system is left unchanged.
    ///
    /// Returns the map's marker count after the insertion.
    ///
    /// # Errors
    ///
    /// [`AddMarkerError`] naming what went wrong: unparseable snippet,
    /// symbol absent from it, no embeddable targets, or a type-map
    /// rejection.
    pub fn add_marker(
        &mut self,
        source: &str,
        symbol_name: &str,
        ty: PyType,
    ) -> Result<usize, AddMarkerError> {
        let parsed = typilus_pyast::parse(source).map_err(AddMarkerError::Parse)?;
        let table = typilus_pyast::SymbolTable::build(&parsed.module);
        let graph = typilus_graph::build_graph(&parsed, &table, &self.config.graph, "<binding>");
        let prepared = self.model.prepare(&graph);
        let idx = prepared
            .targets
            .iter()
            .position(|t| t.name == symbol_name)
            .ok_or_else(|| AddMarkerError::SymbolNotFound {
                symbol: symbol_name.to_string(),
            })?;
        let embeddings = self
            .model
            .embed_inference(&prepared)
            .ok_or(AddMarkerError::NoEmbedding)?;
        self.type_map.add(embeddings.row(idx).to_vec(), ty)?;
        Ok(self.type_map.len())
    }

    /// One-shot open-vocabulary adaptation; `true` on success. Thin
    /// boolean wrapper over [`TrainedSystem::add_marker`] for callers
    /// that do not care why a binding failed.
    pub fn bind_type_example(&mut self, source: &str, symbol_name: &str, ty: PyType) -> bool {
        self.add_marker(source, symbol_name, ty).is_ok()
    }

    /// Number of training annotations of a type (0 if unseen).
    pub fn train_count(&self, ty: &PyType) -> usize {
        self.train_type_counts
            .get(&ty.to_string())
            .copied()
            .unwrap_or(0)
    }

    /// Whether a type counts as *common* under the configured threshold.
    pub fn is_common(&self, ty: &PyType) -> bool {
        self.train_count(ty) >= self.config.common_threshold
    }

    /// Access to the evaluation source file.
    pub fn file<'d>(&self, data: &'d PreparedCorpus, idx: usize) -> &'d SourceFile {
        &data.files[idx]
    }
}
