//! Atomic, checksummed artifact I/O.
//!
//! Every artifact the system persists (models, training checkpoints,
//! prediction reports, generated corpora) is written through this
//! module, which provides two guarantees:
//!
//! 1. **Atomicity** — bytes go to a same-directory temporary file,
//!    which is fsynced and then renamed over the destination (and the
//!    directory entry is fsynced too). A crash mid-write leaves either
//!    the old artifact or the new one at the destination, never a torn
//!    hybrid; at worst an orphaned `.*.tmp` file remains, which readers
//!    never look at.
//! 2. **Integrity** — checksummed artifacts carry a 24-byte footer
//!    (payload length, CRC-64 of the payload, footer magic) appended
//!    outside the payload. [`read_artifact`] verifies all three before
//!    handing the payload back, so truncation, torn writes that slipped
//!    past the filesystem, and bit-flips surface as typed
//!    [`PersistError`] variants instead of panics or silently wrong
//!    weights.
//!
//! The `typilus-lint` rule **D7** enforces the routing: artifact writes
//! via `std::fs::write`/`File::create` anywhere outside this module are
//! diagnostics.
//!
//! Under the `faults` feature the protocol is instrumented with
//! failpoints (`atomic_io.create`, `atomic_io.write`, `atomic_io.sync`,
//! `atomic_io.rename`) so the test suite can inject I/O errors and
//! short writes at every step; see [`crate::faults`].

use crate::faults::{self, Fault};
use crate::persist::PersistError;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Marks the end of a checksummed artifact file.
const FOOTER_MAGIC: &[u8; 8] = b"TYPCRC64";
/// Footer layout: `payload_len: u64 LE | crc64: u64 LE | FOOTER_MAGIC`.
pub const FOOTER_LEN: usize = 24;

/// CRC-64/XZ (reflected ECMA-182 polynomial) lookup table, built at
/// compile time.
const CRC64_POLY: u64 = 0xC96C_5795_D787_0F42;

const fn crc64_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ CRC64_POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC64_TABLE: [u64; 256] = crc64_table();

/// CRC-64/XZ checksum of `bytes`. Detects every single-bit and
/// single-byte error and every burst error up to 64 bits.
// lint: allow(S3) — 256-entry table indexed by a `& 0xFF`-masked byte, always in bounds
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = !0u64;
    for &b in bytes {
        crc = CRC64_TABLE[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// The payload framed with its integrity footer.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut framed = Vec::with_capacity(payload.len() + FOOTER_LEN);
    framed.extend_from_slice(payload);
    framed.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    framed.extend_from_slice(&crc64(payload).to_le_bytes());
    framed.extend_from_slice(FOOTER_MAGIC);
    framed
}

/// Verifies and strips the integrity footer of a checksummed artifact.
///
/// # Errors
///
/// [`PersistError::MissingFooter`] when the file is too short or does
/// not end with the footer magic (torn write that lost the tail, or a
/// pre-footer legacy file); [`PersistError::Truncated`] when the stored
/// payload length disagrees with the actual one;
/// [`PersistError::ChecksumMismatch`] when the payload fails its CRC.
pub fn verify_framed(mut bytes: Vec<u8>) -> Result<Vec<u8>, PersistError> {
    let n = framed_payload_len(&bytes)?;
    let mut word = [0u8; 8];
    word.copy_from_slice(&bytes[n + 8..n + 16]);
    let stored_crc = u64::from_le_bytes(word);
    let actual = crc64(&bytes[..n]);
    if stored_crc != actual {
        return Err(PersistError::ChecksumMismatch {
            expected: stored_crc,
            found: actual,
        });
    }
    bytes.truncate(n);
    Ok(bytes)
}

/// O(1) footer inspection of a framed artifact: checks the footer
/// magic and the recorded payload length against the actual one, and
/// returns that length — without touching (or checksumming) the
/// payload bytes themselves. This is what lets a memory-mapped
/// artifact open in O(header): the caller locates the payload here
/// and defers integrity to the payload's own internal checksums (the
/// TypeSpace index is fully self-checksummed).
///
/// # Errors
///
/// [`PersistError::MissingFooter`] and [`PersistError::Truncated`], as
/// in [`verify_framed`]; checksum failures are *not* detected here.
pub fn framed_payload_len(bytes: &[u8]) -> Result<usize, PersistError> {
    if bytes.len() < FOOTER_LEN || &bytes[bytes.len() - 8..] != FOOTER_MAGIC {
        return Err(PersistError::MissingFooter);
    }
    let n = bytes.len() - FOOTER_LEN;
    let mut word = [0u8; 8];
    word.copy_from_slice(&bytes[n..n + 8]);
    let stored_len = u64::from_le_bytes(word);
    if stored_len != n as u64 {
        return Err(PersistError::Truncated {
            expected: stored_len,
            found: n as u64,
        });
    }
    Ok(n)
}

/// Writes `payload` to `path` atomically with an integrity footer.
/// Read it back with [`read_artifact`].
///
/// # Errors
///
/// Propagates filesystem errors from any step of the protocol.
pub fn write_artifact(path: impl AsRef<Path>, payload: &[u8]) -> Result<(), PersistError> {
    write_atomic(path.as_ref(), &frame(payload))?;
    Ok(())
}

/// Reads an artifact written by [`write_artifact`], verifying its
/// integrity footer and returning the bare payload.
///
/// # Errors
///
/// Filesystem errors, plus the typed corruption errors of
/// [`verify_framed`].
pub fn read_artifact(path: impl AsRef<Path>) -> Result<Vec<u8>, PersistError> {
    verify_framed(std::fs::read(path)?)
}

/// Sibling temporary path for the atomic write: `.{name}.tmp` in the
/// same directory (rename is only atomic within a filesystem).
fn tmp_path(path: &Path) -> std::io::Result<PathBuf> {
    let name = path.file_name().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("artifact path {} has no file name", path.display()),
        )
    })?;
    Ok(path.with_file_name(format!(".{}.tmp", name.to_string_lossy())))
}

fn injected(site: &str) -> std::io::Error {
    std::io::Error::other(format!("injected fault at {site}"))
}

/// Writes raw `bytes` to `path` atomically (write-temp → fsync →
/// rename → directory fsync), without an integrity footer. Use for
/// plain-text outputs (generated corpus files, prediction reports)
/// where partial files must never appear but readers expect the bare
/// content.
///
/// # Errors
///
/// Propagates filesystem errors; the destination is left untouched on
/// failure (an orphaned `.{name}.tmp` may remain after a crash).
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> std::io::Result<()> {
    let path = path.as_ref();
    let tmp = tmp_path(path)?;
    let result = write_via_tmp(path, &tmp, bytes);
    if result.is_err() {
        // Best-effort cleanup; the destination was never touched.
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

fn write_via_tmp(path: &Path, tmp: &Path, bytes: &[u8]) -> std::io::Result<()> {
    if matches!(faults::check("atomic_io.create"), Some(Fault::IoError)) {
        return Err(injected("atomic_io.create"));
    }
    let mut file = File::create(tmp)?;
    match faults::check("atomic_io.write") {
        // A short write simulates a torn write the filesystem reported
        // as successful: the protocol completes, and the reader's
        // footer check must catch it.
        Some(Fault::ShortWrite(n)) => file.write_all(&bytes[..n.min(bytes.len())])?,
        Some(Fault::IoError) => return Err(injected("atomic_io.write")),
        Some(other) => other.trigger_panic("atomic_io.write"),
        None => file.write_all(bytes)?,
    }
    if matches!(faults::check("atomic_io.sync"), Some(Fault::IoError)) {
        return Err(injected("atomic_io.sync"));
    }
    file.sync_all()?;
    drop(file);
    if matches!(faults::check("atomic_io.rename"), Some(Fault::IoError)) {
        return Err(injected("atomic_io.rename"));
    }
    std::fs::rename(tmp, path)?;
    // Persist the directory entry so the rename survives a crash. Some
    // filesystems refuse to open directories; that only weakens
    // durability of the *name*, never integrity, so it is best-effort.
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Ok(dir) = File::open(parent) {
            dir.sync_all()?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc64_known_vector() {
        // CRC-64/XZ of "123456789" is 0x995DC9BBDF1939FA.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn frame_round_trip() {
        let payload = b"hello artifact".to_vec();
        let framed = frame(&payload);
        assert_eq!(framed.len(), payload.len() + FOOTER_LEN);
        assert_eq!(verify_framed(framed).unwrap(), payload);
    }

    #[test]
    fn missing_footer_detected() {
        assert!(matches!(
            verify_framed(b"short".to_vec()),
            Err(PersistError::MissingFooter)
        ));
        // Long enough, but no footer magic.
        assert!(matches!(
            verify_framed(vec![7u8; 64]),
            Err(PersistError::MissingFooter)
        ));
    }

    #[test]
    fn truncation_detected() {
        let framed = frame(b"0123456789");
        // Remove payload bytes but keep a well-formed tail by splicing
        // the footer onto a shorter payload.
        let mut torn = framed[..5].to_vec();
        torn.extend_from_slice(&framed[10..]);
        assert!(matches!(
            verify_framed(torn),
            Err(PersistError::Truncated {
                expected: 10,
                found: 5
            })
        ));
    }

    #[test]
    fn bit_flip_detected() {
        let mut framed = frame(b"stable payload bytes");
        framed[3] ^= 0x40;
        assert!(matches!(
            verify_framed(framed),
            Err(PersistError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let framed = frame(b"integrity");
        for i in 0..framed.len() {
            let mut corrupt = framed.clone();
            corrupt[i] ^= 0xA5;
            assert!(
                verify_framed(corrupt).is_err(),
                "flip at offset {i} went undetected"
            );
        }
    }

    #[test]
    fn write_read_file_round_trip() {
        let dir = std::env::temp_dir().join(format!("typilus_atomic_io_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.bin");
        write_artifact(&path, b"payload").unwrap();
        assert_eq!(read_artifact(&path).unwrap(), b"payload");
        // Overwrite is atomic too: the new content fully replaces the old.
        write_artifact(&path, b"second payload").unwrap();
        assert_eq!(read_artifact(&path).unwrap(), b"second payload");
        // No temporary file is left behind.
        assert!(!dir.join(".artifact.bin.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
