//! The complete inference path of paper Fig. 1 (right): predict with the
//! TypeSpace, then let the optional type checker discard candidates that
//! provably break the program, returning only verified suggestions.

use crate::data::PreparedCorpus;
use crate::pipeline::TrainedSystem;
use typilus_check::{CheckerProfile, TypeChecker};
use typilus_pyast::symtable::{SymbolId, SymbolKind};
use typilus_pyast::{Parsed, SymbolTable};
use typilus_types::PyType;

/// A checker-verified type suggestion for one symbol.
#[derive(Debug, Clone)]
pub struct Suggestion {
    /// The symbol's id in its file's symbol table.
    pub symbol: SymbolId,
    /// Symbol name.
    pub name: String,
    /// Symbol kind.
    pub kind: SymbolKind,
    /// The suggested type (the highest-confidence candidate that passed
    /// the checker).
    pub ty: PyType,
    /// Model confidence of the suggested candidate.
    pub confidence: f32,
    /// The symbol's existing annotation, if any (a differing suggestion
    /// then flags a potential annotation error, paper Sec. 7).
    pub existing: Option<PyType>,
    /// How many higher-ranked candidates the checker rejected first.
    pub rejected_above: usize,
}

/// Options for suggestion generation.
#[derive(Debug, Clone, Copy)]
pub struct SuggestOptions {
    /// Checker profile used for verification.
    pub profile: CheckerProfile,
    /// Candidates below this confidence are not considered.
    pub min_confidence: f32,
    /// How many ranked candidates to try per symbol before giving up.
    pub max_candidates: usize,
    /// Also suggest for symbols that already have an annotation
    /// (surfacing disagreements instead of only filling gaps).
    pub include_annotated: bool,
}

impl Default for SuggestOptions {
    fn default() -> Self {
        SuggestOptions {
            profile: CheckerProfile::Mypy,
            min_confidence: 0.2,
            max_candidates: 3,
            include_annotated: false,
        }
    }
}

impl TrainedSystem {
    /// Verified suggestions for a source string.
    ///
    /// # Errors
    ///
    /// Returns the parse error for invalid source.
    pub fn suggest_source(
        &self,
        source: &str,
        options: &SuggestOptions,
    ) -> Result<Vec<Suggestion>, typilus_pyast::ParseError> {
        let parsed = typilus_pyast::parse(source)?;
        let table = typilus_pyast::SymbolTable::build(&parsed.module);
        let predictions = self.predict_source(source)?;
        Ok(self.verify_candidates(&parsed, &table, predictions, options))
    }

    /// Verified suggestions for a corpus file.
    pub fn suggest_file(
        &self,
        data: &PreparedCorpus,
        file_idx: usize,
        options: &SuggestOptions,
    ) -> Vec<Suggestion> {
        let file = &data.files[file_idx];
        let predictions = self.predict_file(data, file_idx);
        self.verify_candidates(&file.parsed, &file.table, predictions, options)
    }

    fn verify_candidates(
        &self,
        parsed: &Parsed,
        table: &SymbolTable,
        predictions: Vec<crate::pipeline::SymbolPrediction>,
        options: &SuggestOptions,
    ) -> Vec<Suggestion> {
        let checker = TypeChecker::new(options.profile);
        // A file that already fails cannot attribute new errors to the
        // substitution; skip verification-by-checker and suggest nothing,
        // as in the paper's protocol.
        if !checker.check(parsed, table).is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for p in predictions {
            if p.ground_truth.is_some() && !options.include_annotated {
                continue;
            }
            let mut rejected = 0usize;
            for candidate in p.candidates.iter().take(options.max_candidates) {
                if candidate.probability < options.min_confidence {
                    break; // candidates are sorted; the rest are weaker
                }
                if candidate.ty.is_top() {
                    continue;
                }
                let issues =
                    checker.check_with_override(parsed, table, p.symbol, candidate.ty.clone());
                if issues.is_empty() {
                    out.push(Suggestion {
                        symbol: p.symbol,
                        name: p.name.clone(),
                        kind: p.kind,
                        ty: candidate.ty.clone(),
                        confidence: candidate.probability,
                        existing: p.ground_truth.clone(),
                        rejected_above: rejected,
                    });
                    break;
                }
                rejected += 1;
            }
        }
        out.sort_by(|a, b| b.confidence.total_cmp(&a.confidence));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{train, TypilusConfig};
    use typilus_corpus::{generate, CorpusConfig};
    use typilus_models::ModelConfig;

    fn tiny_system() -> (TrainedSystem, PreparedCorpus) {
        let corpus = generate(&CorpusConfig {
            files: 25,
            seed: 6,
            ..CorpusConfig::default()
        });
        let data = PreparedCorpus::from_corpus(&corpus, &typilus_graph::GraphConfig::default(), 6);
        let config = TypilusConfig {
            model: ModelConfig {
                dim: 16,
                gnn_steps: 3,
                min_subtoken_count: 1,
                ..ModelConfig::default()
            },
            epochs: 5,
            lr: 0.02,
            ..TypilusConfig::default()
        };
        (train(&data, &config), data)
    }

    #[test]
    fn suggestions_are_verified_and_sorted() {
        let (system, data) = tiny_system();
        let options = SuggestOptions::default();
        let checker = TypeChecker::new(options.profile);
        let mut any = false;
        for &idx in &data.split.test {
            let file = &data.files[idx];
            let suggestions = system.suggest_file(&data, idx, &options);
            let mut last = f32::INFINITY;
            for s in &suggestions {
                any = true;
                assert!(s.confidence <= last + 1e-6, "sorted by confidence");
                last = s.confidence;
                assert!(
                    s.existing.is_none(),
                    "default options skip annotated symbols"
                );
                // Re-verify: the suggestion must type check.
                let issues =
                    checker.check_with_override(&file.parsed, &file.table, s.symbol, s.ty.clone());
                assert!(issues.is_empty(), "suggestion {s:?} fails its own check");
            }
        }
        assert!(
            any,
            "expected at least one suggestion across the test split"
        );
    }

    #[test]
    fn include_annotated_surfaces_disagreements() {
        let (system, data) = tiny_system();
        let options = SuggestOptions {
            include_annotated: true,
            min_confidence: 0.0,
            ..SuggestOptions::default()
        };
        let mut annotated_seen = false;
        for &idx in &data.split.test {
            for s in system.suggest_file(&data, idx, &options) {
                if s.existing.is_some() {
                    annotated_seen = true;
                }
            }
        }
        assert!(
            annotated_seen,
            "annotated symbols should appear when requested"
        );
    }

    #[test]
    fn suggest_source_round_trip() {
        let (system, _) = tiny_system();
        let suggestions = system
            .suggest_source(
                "def scale(count):\n    total = count * 2\n    return total\n",
                &SuggestOptions {
                    min_confidence: 0.0,
                    ..SuggestOptions::default()
                },
            )
            .expect("parses");
        assert!(!suggestions.is_empty());
    }
}
