//! Evaluation metrics: the three match criteria of paper Sec. 6.1
//! (exact match, match up to parametric type, type neutrality), the
//! common/rare breakdown of Table 2, the per-kind breakdown of Table 3,
//! the annotation-count buckets of Fig. 5 and the precision–recall
//! machinery of Fig. 4.

use crate::data::PreparedCorpus;
use crate::pipeline::{SymbolPrediction, TrainedSystem};
use typilus_pyast::SymbolKind;
use typilus_types::{PyType, TypeHierarchy};

/// One evaluated prediction: a symbol with ground truth and candidates.
#[derive(Debug, Clone)]
pub struct EvalExample {
    /// The prediction.
    pub prediction: SymbolPrediction,
    /// Ground truth (always present for evaluation examples).
    pub truth: PyType,
    /// How often the ground-truth type occurred in training annotations.
    pub truth_train_count: usize,
}

impl EvalExample {
    /// Top predicted type, if any.
    pub fn top(&self) -> Option<&PyType> {
        self.prediction.top().map(|t| &t.ty)
    }

    /// Confidence of the top prediction.
    pub fn confidence(&self) -> f32 {
        self.prediction.confidence()
    }
}

/// Collects evaluation examples over a set of file indices (typically the
/// test split): every annotated symbol becomes one example. Per-file
/// prediction fans across the system's configured worker threads;
/// examples keep file order.
pub fn evaluate_files(
    system: &TrainedSystem,
    data: &PreparedCorpus,
    indices: &[usize],
) -> Vec<EvalExample> {
    let mut out = Vec::new();
    for predictions in system.predict_files(data, indices) {
        for prediction in predictions {
            let Some(truth) = prediction.ground_truth.clone() else {
                continue;
            };
            let truth_train_count = system.train_count(&truth);
            out.push(EvalExample {
                prediction,
                truth,
                truth_train_count,
            });
        }
    }
    out
}

/// The three match criteria evaluated over a set of examples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchRates {
    /// % of predictions matching the ground truth exactly.
    pub exact: f64,
    /// % matching when type parameters are ignored.
    pub up_to_parametric: f64,
    /// % type-neutral with the ground truth.
    pub neutral: f64,
    /// Number of examples measured.
    pub count: usize,
}

impl MatchRates {
    /// Rates over examples passing `filter`. Examples without any
    /// prediction count as misses.
    pub fn compute(
        examples: &[EvalExample],
        hierarchy: &TypeHierarchy,
        filter: impl Fn(&EvalExample) -> bool,
    ) -> MatchRates {
        let mut exact = 0usize;
        let mut para = 0usize;
        let mut neutral = 0usize;
        let mut count = 0usize;
        for e in examples.iter().filter(|e| filter(e)) {
            count += 1;
            let Some(top) = e.top() else { continue };
            if top.matches_exactly(&e.truth) {
                exact += 1;
            }
            if top.matches_up_to_parametric(&e.truth) {
                para += 1;
            }
            if hierarchy.is_neutral(top, &e.truth) {
                neutral += 1;
            }
        }
        MatchRates {
            exact: pct(exact, count),
            up_to_parametric: pct(para, count),
            neutral: pct(neutral, count),
            count,
        }
    }
}

fn pct(a: usize, b: usize) -> f64 {
    if b == 0 {
        0.0
    } else {
        100.0 * a as f64 / b as f64
    }
}

/// One row of paper Table 2: all/common/rare breakdowns of exact match
/// and match-up-to-parametric, plus overall type neutrality.
#[derive(Debug, Clone, Copy)]
pub struct Table2Row {
    /// Exact match over all examples (%).
    pub exact_all: f64,
    /// Exact match over common types (%).
    pub exact_common: f64,
    /// Exact match over rare types (%).
    pub exact_rare: f64,
    /// Up-to-parametric over all examples (%).
    pub para_all: f64,
    /// Up-to-parametric over common types (%).
    pub para_common: f64,
    /// Up-to-parametric over rare types (%).
    pub para_rare: f64,
    /// Type neutrality over all examples (%).
    pub neutral: f64,
    /// Example counts: (all, common, rare).
    pub counts: (usize, usize, usize),
}

/// Computes a Table 2 row. `common_threshold` is the "seen ≥ N times in
/// training" cut (paper: 100 at full corpus scale).
pub fn table2_row(
    examples: &[EvalExample],
    hierarchy: &TypeHierarchy,
    common_threshold: usize,
) -> Table2Row {
    let all = MatchRates::compute(examples, hierarchy, |_| true);
    let common = MatchRates::compute(examples, hierarchy, |e| {
        e.truth_train_count >= common_threshold
    });
    let rare = MatchRates::compute(examples, hierarchy, |e| {
        e.truth_train_count < common_threshold
    });
    Table2Row {
        exact_all: all.exact,
        exact_common: common.exact,
        exact_rare: rare.exact,
        para_all: all.up_to_parametric,
        para_common: common.up_to_parametric,
        para_rare: rare.up_to_parametric,
        neutral: all.neutral,
        counts: (all.count, common.count, rare.count),
    }
}

/// Paper Table 3: performance by symbol kind.
#[derive(Debug, Clone)]
pub struct KindBreakdown {
    /// Rates for variables (including `self.x` members).
    pub variables: MatchRates,
    /// Rates for function parameters.
    pub parameters: MatchRates,
    /// Rates for function returns.
    pub returns: MatchRates,
}

/// Computes the Table 3 breakdown.
pub fn by_kind(examples: &[EvalExample], hierarchy: &TypeHierarchy) -> KindBreakdown {
    let kind_of = |e: &EvalExample| e.prediction.kind;
    KindBreakdown {
        variables: MatchRates::compute(examples, hierarchy, |e| {
            matches!(kind_of(e), SymbolKind::Variable | SymbolKind::ClassMember)
        }),
        parameters: MatchRates::compute(examples, hierarchy, |e| {
            kind_of(e) == SymbolKind::Parameter
        }),
        returns: MatchRates::compute(examples, hierarchy, |e| kind_of(e) == SymbolKind::Return),
    }
}

/// Fig. 5: rates bucketed by how often the ground-truth type was
/// annotated in training. Returns `(bucket upper bound, rates)` rows.
pub fn by_annotation_count(
    examples: &[EvalExample],
    hierarchy: &TypeHierarchy,
    bucket_bounds: &[usize],
) -> Vec<(usize, MatchRates)> {
    let mut out = Vec::new();
    let mut lower = 0usize;
    for &upper in bucket_bounds {
        let rates = MatchRates::compute(examples, hierarchy, |e| {
            e.truth_train_count >= lower && e.truth_train_count < upper
        });
        out.push((upper, rates));
        lower = upper;
    }
    let last = MatchRates::compute(examples, hierarchy, |e| e.truth_train_count >= lower);
    out.push((usize::MAX, last));
    out
}

/// A match criterion selector for precision–recall curves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Criterion {
    /// Exact type match.
    Exact,
    /// Match ignoring type parameters.
    UpToParametric,
    /// Type neutrality.
    Neutral,
}

/// One point of a precision–recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Confidence threshold producing this point.
    pub threshold: f32,
    /// Fraction of symbols with a prediction above the threshold.
    pub recall: f64,
    /// Fraction correct among those predicted.
    pub precision: f64,
}

/// Fig. 4: sweeps the confidence threshold and reports precision/recall
/// under the chosen criterion. Points are ordered by increasing
/// threshold (decreasing recall).
pub fn pr_curve(
    examples: &[EvalExample],
    hierarchy: &TypeHierarchy,
    criterion: Criterion,
    thresholds: &[f32],
) -> Vec<PrPoint> {
    let correct = |e: &EvalExample| -> bool {
        match (criterion, e.top()) {
            (_, None) => false,
            (Criterion::Exact, Some(t)) => t.matches_exactly(&e.truth),
            (Criterion::UpToParametric, Some(t)) => t.matches_up_to_parametric(&e.truth),
            (Criterion::Neutral, Some(t)) => hierarchy.is_neutral(t, &e.truth),
        }
    };
    let total = examples.len();
    thresholds
        .iter()
        .map(|&th| {
            let predicted: Vec<&EvalExample> =
                examples.iter().filter(|e| e.confidence() >= th).collect();
            let correct_count = predicted.iter().filter(|e| correct(e)).count();
            PrPoint {
                threshold: th,
                recall: if total == 0 {
                    0.0
                } else {
                    predicted.len() as f64 / total as f64
                },
                precision: if predicted.is_empty() {
                    1.0
                } else {
                    correct_count as f64 / predicted.len() as f64
                },
            }
        })
        .collect()
}

/// The default threshold sweep used by the figure harnesses.
pub fn default_thresholds() -> Vec<f32> {
    (0..=20).map(|i| i as f32 / 20.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::SymbolPrediction;
    use typilus_pyast::symtable::SymbolId;
    use typilus_space::TypePrediction;

    fn example(truth: &str, predicted: Option<(&str, f32)>, count: usize) -> EvalExample {
        EvalExample {
            prediction: SymbolPrediction {
                file_idx: 0,
                symbol: SymbolId(0),
                name: "x".into(),
                kind: SymbolKind::Variable,
                ground_truth: Some(truth.parse().unwrap()),
                candidates: predicted
                    .map(|(ty, p)| {
                        vec![TypePrediction {
                            ty: ty.parse().unwrap(),
                            probability: p,
                        }]
                    })
                    .unwrap_or_default(),
            },
            truth: truth.parse().unwrap(),
            truth_train_count: count,
        }
    }

    #[test]
    fn match_rates_cover_criteria() {
        let h = TypeHierarchy::new();
        let examples = vec![
            example("int", Some(("int", 0.9)), 100),           // exact
            example("List[int]", Some(("List[str]", 0.8)), 5), // para only
            example("List[int]", Some(("Sequence[int]", 0.7)), 5), // neutral only
            example("str", Some(("bytes", 0.6)), 100),         // none
            example("str", None, 100),                         // no prediction
        ];
        let r = MatchRates::compute(&examples, &h, |_| true);
        assert_eq!(r.count, 5);
        assert!((r.exact - 20.0).abs() < 1e-9);
        assert!((r.up_to_parametric - 40.0).abs() < 1e-9);
        assert!(
            (r.neutral - 40.0).abs() < 1e-9,
            "exact + supertype are neutral: {r:?}"
        );
    }

    #[test]
    fn table2_rare_common_split() {
        let h = TypeHierarchy::new();
        let examples = vec![
            example("int", Some(("int", 0.9)), 100),
            example("FooBar", Some(("FooBar", 0.9)), 1),
            example("BazQux", Some(("int", 0.9)), 1),
        ];
        let row = table2_row(&examples, &h, 10);
        assert_eq!(row.counts, (3, 1, 2));
        assert!((row.exact_common - 100.0).abs() < 1e-9);
        assert!((row.exact_rare - 50.0).abs() < 1e-9);
    }

    #[test]
    fn pr_curve_monotone_recall() {
        let h = TypeHierarchy::new();
        let examples = vec![
            example("int", Some(("int", 0.9)), 10),
            example("str", Some(("bytes", 0.5)), 10),
            example("bool", Some(("bool", 0.2)), 10),
        ];
        let curve = pr_curve(&examples, &h, Criterion::Exact, &[0.0, 0.4, 0.8]);
        assert!(curve[0].recall >= curve[1].recall);
        assert!(curve[1].recall >= curve[2].recall);
        // High threshold keeps only the confident correct prediction.
        assert!((curve[2].precision - 1.0).abs() < 1e-9);
        // Low threshold includes the wrong one.
        assert!(curve[0].precision < 1.0);
    }

    #[test]
    fn annotation_count_buckets() {
        let h = TypeHierarchy::new();
        let examples = vec![
            example("int", Some(("int", 0.9)), 3),
            example("str", Some(("str", 0.9)), 50),
        ];
        let buckets = by_annotation_count(&examples, &h, &[10, 100]);
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].1.count, 1);
        assert_eq!(buckets[1].1.count, 1);
        assert_eq!(buckets[2].1.count, 0);
    }

    #[test]
    fn kind_breakdown_partitions() {
        let h = TypeHierarchy::new();
        let mut e1 = example("int", Some(("int", 0.9)), 10);
        e1.prediction.kind = SymbolKind::Parameter;
        let mut e2 = example("str", Some(("str", 0.9)), 10);
        e2.prediction.kind = SymbolKind::Return;
        let e3 = example("bool", Some(("bool", 0.9)), 10);
        let b = by_kind(&[e1, e2, e3], &h);
        assert_eq!(b.parameters.count, 1);
        assert_eq!(b.returns.count, 1);
        assert_eq!(b.variables.count, 1);
    }
}
