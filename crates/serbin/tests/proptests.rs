//! Property-based round-trip tests of the binary format.

use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use typilus_serbin::{from_bytes, to_bytes};

#[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
enum Leaf {
    Int(i64),
    Float(f64),
    Text(String),
    Flag(bool),
    Nothing,
}

fn arb_leaf() -> impl Strategy<Value = Leaf> {
    prop_oneof![
        any::<i64>().prop_map(Leaf::Int),
        (-1e9f64..1e9).prop_map(Leaf::Float),
        ".{0,24}".prop_map(Leaf::Text),
        any::<bool>().prop_map(Leaf::Flag),
        Just(Leaf::Nothing),
    ]
}

#[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
struct Doc {
    id: u64,
    leaves: Vec<Leaf>,
    index: BTreeMap<String, u32>,
    blob: Vec<u8>,
    maybe: Option<Box<Doc>>,
}

fn arb_base_doc() -> impl Strategy<Value = Doc> {
    (
        any::<u64>(),
        prop::collection::vec(arb_leaf(), 0..6),
        prop::collection::btree_map("[a-z]{1,6}", any::<u32>(), 0..5),
        prop::collection::vec(any::<u8>(), 0..32),
    )
        .prop_map(|(id, leaves, index, blob)| Doc {
            id,
            leaves,
            index,
            blob,
            maybe: None,
        })
}

fn arb_doc() -> impl Strategy<Value = Doc> {
    arb_base_doc().prop_recursive(2, 8, 2, |inner| {
        (arb_base_doc(), prop::option::of(inner)).prop_map(|(mut d, m)| {
            d.maybe = m.map(Box::new);
            d
        })
    })
}

proptest! {
    #[test]
    fn round_trip_arbitrary_documents(doc in arb_doc()) {
        let bytes = to_bytes(&doc).expect("serializes");
        let back: Doc = from_bytes(&bytes).expect("deserializes");
        prop_assert_eq!(back, doc);
    }

    #[test]
    fn round_trip_primitives(
        a in any::<i32>(),
        b in any::<u64>(),
        c in any::<f32>(),
        s in ".{0,64}",
    ) {
        let value = (a, b, c, s);
        let bytes = to_bytes(&value).expect("serializes");
        let back: (i32, u64, f32, String) = from_bytes(&bytes).expect("deserializes");
        prop_assert_eq!(back.0, value.0);
        prop_assert_eq!(back.1, value.1);
        // NaN-safe float comparison.
        prop_assert_eq!(back.2.to_bits(), value.2.to_bits());
        prop_assert_eq!(back.3, value.3);
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        // Decoding garbage may fail but must not panic.
        let _: Result<Doc, _> = from_bytes(&bytes);
        let _: Result<Vec<String>, _> = from_bytes(&bytes);
        let _: Result<(u64, bool), _> = from_bytes(&bytes);
    }
}
