//! Errors of the binary format.

use std::fmt;

/// Serialization / deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Input ended before the value was complete.
    UnexpectedEof,
    /// A length prefix or enum tag exceeded sane bounds.
    InvalidLength(u64),
    /// A boolean byte was neither 0 nor 1; an option tag likewise.
    InvalidTag(u8),
    /// Bytes are not valid UTF-8 where a string was expected.
    InvalidUtf8,
    /// The format is not self-describing; `deserialize_any` and
    /// `deserialize_ignored_any` are unsupported.
    NotSelfDescribing,
    /// Message from serde (custom error paths).
    Message(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnexpectedEof => write!(f, "unexpected end of input"),
            Error::InvalidLength(n) => write!(f, "invalid length prefix {n}"),
            Error::InvalidTag(b) => write!(f, "invalid tag byte {b}"),
            Error::InvalidUtf8 => write!(f, "invalid utf-8 in string"),
            Error::NotSelfDescribing => {
                write!(
                    f,
                    "format is not self-describing; deserialize_any unsupported"
                )
            }
            Error::Message(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::Message(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::Message(msg.to_string())
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;
