//! # typilus-serbin
//!
//! A minimal, dependency-free binary serde format used to persist
//! trained Typilus artefacts (model weights, type maps, corpora). The
//! offline environment provides `serde` but no format crate, so this
//! crate supplies a compact, schema-driven little-endian encoding —
//! fixed-width numbers, length-prefixed strings/sequences/maps,
//! `u32` enum tags — with full `Serializer`/`Deserializer`
//! implementations.
//!
//! The format is *not* self-describing: values must be decoded with the
//! same type they were encoded with.
//!
//! ```
//! use serde::{Deserialize, Serialize};
//!
//! #[derive(Serialize, Deserialize, PartialEq, Debug)]
//! struct Model { name: String, weights: Vec<f32> }
//!
//! # fn main() -> Result<(), typilus_serbin::Error> {
//! let model = Model { name: "typilus".into(), weights: vec![0.25, -1.0] };
//! let bytes = typilus_serbin::to_bytes(&model)?;
//! let back: Model = typilus_serbin::from_bytes(&bytes)?;
//! assert_eq!(back, model);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod de;
mod error;
mod ser;

pub use de::from_bytes;
pub use error::{Error, Result};
pub use ser::to_bytes;

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::HashMap;

    fn round_trip<T: Serialize + serde::de::DeserializeOwned + PartialEq + std::fmt::Debug>(
        value: T,
    ) {
        let bytes = to_bytes(&value).expect("serializes");
        let back: T = from_bytes(&bytes).expect("deserializes");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives() {
        round_trip(0u8);
        round_trip(-42i64);
        round_trip(3.5f32);
        round_trip(f64::NEG_INFINITY);
        round_trip(true);
        round_trip('λ');
        round_trip("hello".to_string());
        round_trip(Vec::<u8>::new());
    }

    #[test]
    fn options_and_results() {
        round_trip(Option::<u32>::None);
        round_trip(Some("x".to_string()));
        round_trip(std::result::Result::<u8, String>::Ok(3));
        round_trip(std::result::Result::<u8, String>::Err("bad".into()));
    }

    #[test]
    fn collections() {
        round_trip(vec![1u32, 2, 3]);
        round_trip(vec![vec![1.0f32], vec![], vec![2.0, 3.0]]);
        let mut m = HashMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2);
        round_trip(m);
        round_trip((1u8, "two".to_string(), 3.0f64));
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    enum Shape {
        Unit,
        Newtype(u32),
        Tuple(u8, u8),
        Struct { a: String, b: Option<f32> },
    }

    #[test]
    fn enums() {
        round_trip(Shape::Unit);
        round_trip(Shape::Newtype(7));
        round_trip(Shape::Tuple(1, 2));
        round_trip(Shape::Struct {
            a: "x".into(),
            b: Some(0.5),
        });
        round_trip(vec![Shape::Unit, Shape::Newtype(1)]);
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Nested {
        id: u64,
        tags: Vec<String>,
        children: Vec<Nested>,
    }

    #[test]
    fn recursive_structs() {
        round_trip(Nested {
            id: 1,
            tags: vec!["root".into()],
            children: vec![
                Nested {
                    id: 2,
                    tags: vec![],
                    children: vec![],
                },
                Nested {
                    id: 3,
                    tags: vec!["leaf".into()],
                    children: vec![],
                },
            ],
        });
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = to_bytes(&12345u64).unwrap();
        let r: Result<u64> = from_bytes(&bytes[..4]);
        assert!(r.is_err());
    }

    #[test]
    fn trailing_bytes_error() {
        let mut bytes = to_bytes(&1u8).unwrap();
        bytes.push(0);
        let r: Result<u8> = from_bytes(&bytes);
        assert!(r.is_err());
    }

    #[test]
    fn invalid_bool_tag() {
        let r: Result<bool> = from_bytes(&[7]);
        assert_eq!(r, Err(Error::InvalidTag(7)));
    }

    #[test]
    fn project_types_round_trip() {
        // The artefacts this crate exists to persist.
        use typilus_types::PyType;
        let ty: PyType = "Dict[str, List[Optional[int]]]".parse().unwrap();
        round_trip(ty);

        let t = typilus_nn::Tensor::from_vec(2, 3, vec![1.0, -2.0, 0.5, 0.0, 9.0, -0.25]);
        let bytes = to_bytes(&t).unwrap();
        let back: typilus_nn::Tensor = from_bytes(&bytes).unwrap();
        assert_eq!(back, t);
    }
}
