//! The deserializer, mirror of [`crate::ser`].

use crate::error::{Error, Result};
use serde::de::{self, DeserializeOwned, IntoDeserializer, Visitor};

/// Deserializes a value from bytes produced by [`crate::to_bytes`].
///
/// # Errors
///
/// Returns an error on truncated input, invalid tags, invalid UTF-8, or
/// trailing bytes.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let mut de = BinDeserializer { input: bytes };
    let value = T::deserialize(&mut de)?;
    if !de.input.is_empty() {
        return Err(Error::Message(format!("{} trailing bytes", de.input.len())));
    }
    Ok(value)
}

struct BinDeserializer<'de> {
    input: &'de [u8],
}

impl<'de> BinDeserializer<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8]> {
        if self.input.len() < n {
            return Err(Error::UnexpectedEof);
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn get_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn get_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn get_len(&mut self) -> Result<usize> {
        let len = self.get_u64()?;
        if len > self.input.len() as u64 && len > (1 << 40) {
            return Err(Error::InvalidLength(len));
        }
        Ok(len as usize)
    }
}

macro_rules! de_int {
    ($method:ident, $visit:ident, $ty:ty, $n:expr) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
            let b = self.take($n)?;
            let mut arr = [0u8; $n];
            arr.copy_from_slice(b);
            visitor.$visit(<$ty>::from_le_bytes(arr))
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut BinDeserializer<'de> {
    type Error = Error;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(Error::NotSelfDescribing)
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(Error::NotSelfDescribing)
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.get_u8()? {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            b => Err(Error::InvalidTag(b)),
        }
    }

    de_int!(deserialize_i8, visit_i8, i8, 1);
    de_int!(deserialize_i16, visit_i16, i16, 2);
    de_int!(deserialize_i32, visit_i32, i32, 4);
    de_int!(deserialize_i64, visit_i64, i64, 8);
    de_int!(deserialize_u16, visit_u16, u16, 2);
    de_int!(deserialize_u32, visit_u32, u32, 4);
    de_int!(deserialize_u64, visit_u64, u64, 8);
    de_int!(deserialize_f32, visit_f32, f32, 4);
    de_int!(deserialize_f64, visit_f64, f64, 8);

    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_u8(self.get_u8()?)
    }

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let v = self.get_u32()?;
        visitor.visit_char(char::from_u32(v).ok_or(Error::InvalidTag(0))?)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.get_len()?;
        let bytes = self.take(len)?;
        visitor.visit_borrowed_str(std::str::from_utf8(bytes).map_err(|_| Error::InvalidUtf8)?)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.get_len()?;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.get_u8()? {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            b => Err(Error::InvalidTag(b)),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.get_len()?;
        visitor.visit_seq(CountedAccess {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        visitor.visit_seq(CountedAccess {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.get_len()?;
        visitor.visit_map(CountedAccess {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_enum(self)
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(Error::NotSelfDescribing)
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct CountedAccess<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
    remaining: usize,
}

impl<'de> de::SeqAccess<'de> for CountedAccess<'_, 'de> {
    type Error = Error;

    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'de> de::MapAccess<'de> for CountedAccess<'_, 'de> {
    type Error = Error;

    fn next_key_seed<K: de::DeserializeSeed<'de>>(&mut self, seed: K) -> Result<Option<K::Value>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: de::DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'de> de::EnumAccess<'de> for &mut BinDeserializer<'de> {
    type Error = Error;
    type Variant = Self;

    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant)> {
        let index = self.get_u32()?;
        let value = seed.deserialize(index.into_deserializer())?;
        Ok((value, self))
    }
}

impl<'de> de::VariantAccess<'de> for &mut BinDeserializer<'de> {
    type Error = Error;

    fn unit_variant(self) -> Result<()> {
        Ok(())
    }

    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value> {
        seed.deserialize(self)
    }

    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        de::Deserializer::deserialize_tuple(self, len, visitor)
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        de::Deserializer::deserialize_tuple(self, fields.len(), visitor)
    }
}
