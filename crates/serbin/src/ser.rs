//! The serializer: a compact, schema-driven (non-self-describing)
//! little-endian binary encoding.
//!
//! Encoding rules: fixed-width little-endian integers and floats;
//! `bool`/`Option` as one tag byte; strings and byte strings as a
//! `u64` length followed by the raw bytes; sequences and maps as a `u64`
//! element count followed by the elements; enum variants as a `u32`
//! variant index followed by the payload; structs and tuples as their
//! fields in order with no framing.

use crate::error::{Error, Result};
use serde::ser::{self, Serialize};

/// Serializes a value into a byte vector.
///
/// # Errors
///
/// Returns an error if the value's `Serialize` impl fails (e.g. a map
/// with an unknown length).
pub fn to_bytes<T: Serialize>(value: &T) -> Result<Vec<u8>> {
    let mut serializer = BinSerializer { out: Vec::new() };
    value.serialize(&mut serializer)?;
    Ok(serializer.out)
}

struct BinSerializer {
    out: Vec<u8>,
}

impl BinSerializer {
    fn put_len(&mut self, len: usize) {
        self.out.extend_from_slice(&(len as u64).to_le_bytes());
    }
}

impl ser::Serializer for &mut BinSerializer {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<()> {
        self.out.push(v as u8);
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_i16(self, v: i16) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_i32(self, v: i32) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_u8(self, v: u8) -> Result<()> {
        self.out.push(v);
        Ok(())
    }

    fn serialize_u16(self, v: u16) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_u32(self, v: u32) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<()> {
        self.serialize_u32(v as u32)
    }

    fn serialize_str(self, v: &str) -> Result<()> {
        self.put_len(v.len());
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<()> {
        self.put_len(v.len());
        self.out.extend_from_slice(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<()> {
        self.out.push(0);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<()> {
        self.out.push(1);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<()> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<()> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<()> {
        self.serialize_u32(variant_index)
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<()> {
        self.serialize_u32(variant_index)?;
        value.serialize(&mut *self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq> {
        let len =
            len.ok_or_else(|| Error::Message("sequences must have a known length".to_string()))?;
        self.put_len(len);
        Ok(self)
    }

    fn serialize_tuple(self, _len: usize) -> Result<Self::SerializeTuple> {
        Ok(self)
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleStruct> {
        Ok(self)
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap> {
        let len = len.ok_or_else(|| Error::Message("maps must have a known length".to_string()))?;
        self.put_len(len);
        Ok(self)
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self::SerializeStruct> {
        Ok(self)
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }
}

impl ser::SerializeSeq for &mut BinSerializer {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeTuple for &mut BinSerializer {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeTupleStruct for &mut BinSerializer {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeTupleVariant for &mut BinSerializer {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeMap for &mut BinSerializer {
    type Ok = ();
    type Error = Error;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<()> {
        key.serialize(&mut **self)
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeStruct for &mut BinSerializer {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for &mut BinSerializer {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}
