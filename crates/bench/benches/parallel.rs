//! Data-parallel engine benchmarks: one training epoch at 1 vs N worker
//! threads (bit-identical results, wall-clock scaling with cores), and
//! the old full-scan/full-sort L1 top-k vs the contiguous pruned kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use typilus::GraphConfig;
use typilus_bench::{prepare, Scale};
use typilus_models::{PreparedFile, TypeModel};
use typilus_nn::resolve_threads;
use typilus_space::{l1, ExactIndex, Hit};

fn bench_epoch_by_threads(c: &mut Criterion) {
    let scale = Scale {
        files: 24,
        epochs: 1,
        dim: 16,
        gnn_steps: 3,
        seed: 0,
        common_threshold: 8,
    };
    let graph = GraphConfig::default();
    let (_, data) = prepare(&scale, &graph);
    let config = typilus_bench::config_for(
        &scale,
        typilus::EncoderKind::Graph,
        typilus::LossKind::Typilus,
        graph,
    );
    let train_graphs = data.graphs_of(&data.split.train);
    let model = TypeModel::new(config.model, &train_graphs);
    let prepared: Vec<PreparedFile> = data.files.iter().map(|f| model.prepare(&f.graph)).collect();
    let batch: Vec<&PreparedFile> = prepared.iter().collect();

    let auto = resolve_threads(None);
    let mut group = c.benchmark_group("train_step");
    group.sample_size(10);
    let mut counts = vec![1usize];
    if auto > 1 {
        counts.push(auto);
    }
    for threads in counts {
        let pool = typilus_nn::WorkerPool::new(threads);
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| criterion::black_box(model.train_step_parallel(&batch, &pool)));
        });
    }
    group.finish();
}

fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect()
}

/// The pre-optimisation kernel: full scan, full sort, truncate.
fn naive_query(points: &[Vec<f32>], query: &[f32], k: usize) -> Vec<Hit> {
    let mut hits: Vec<Hit> = points
        .iter()
        .enumerate()
        .map(|(i, p)| Hit {
            index: i,
            distance: l1(query, p),
        })
        .collect();
    hits.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then(a.index.cmp(&b.index))
    });
    hits.truncate(k);
    hits
}

fn bench_l1_kernel(c: &mut Criterion) {
    let dim = 32;
    let mut group = c.benchmark_group("l1_top10");
    for &n in &[1_000usize, 20_000] {
        let points = random_points(n, dim, 1);
        let query: Vec<f32> = random_points(1, dim, 2).pop().expect("one point");
        let index = ExactIndex::new(points.clone());
        group.bench_with_input(BenchmarkId::new("naive_sort", n), &n, |b, _| {
            b.iter(|| criterion::black_box(naive_query(&points, &query, 10)));
        });
        group.bench_with_input(BenchmarkId::new("pruned_heap", n), &n, |b, _| {
            b.iter(|| criterion::black_box(index.query(&query, 10)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_epoch_by_threads, bench_l1_kernel);
criterion_main!(benches);
