//! Front-end throughput: lexing, parsing, symbol tables and program-graph
//! extraction over generated corpus files (the paper extracts graphs for
//! 118k files, so extraction cost matters).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use typilus_corpus::{generate, CorpusConfig};
use typilus_graph::{build_graph, GraphConfig};
use typilus_pyast::{parse, tokenize, SymbolTable};

fn bench_frontend(c: &mut Criterion) {
    let corpus = generate(&CorpusConfig {
        files: 30,
        seed: 11,
        ..CorpusConfig::default()
    });
    let sources: Vec<String> = corpus.files.iter().map(|f| f.source.clone()).collect();
    let total_bytes: u64 = sources.iter().map(|s| s.len() as u64).sum();

    let mut group = c.benchmark_group("frontend");
    group.throughput(Throughput::Bytes(total_bytes));
    group.bench_function("tokenize", |b| {
        b.iter(|| {
            for s in &sources {
                criterion::black_box(tokenize(s).expect("lexes"));
            }
        });
    });
    group.bench_function("parse", |b| {
        b.iter(|| {
            for s in &sources {
                criterion::black_box(parse(s).expect("parses"));
            }
        });
    });
    group.bench_function("parse_symbols_graph", |b| {
        b.iter(|| {
            for s in &sources {
                let parsed = parse(s).expect("parses");
                let table = SymbolTable::build(&parsed.module);
                criterion::black_box(build_graph(
                    &parsed,
                    &table,
                    &GraphConfig::default(),
                    "bench.py",
                ));
            }
        });
    });
    group.finish();
}

fn bench_dedup(c: &mut Criterion) {
    let corpus = generate(&CorpusConfig {
        files: 60,
        duplicate_rate: 0.2,
        seed: 12,
        ..CorpusConfig::default()
    });
    let sources: Vec<&str> = corpus.files.iter().map(|f| f.source.as_str()).collect();
    c.bench_function("dedup_72_files", |b| {
        b.iter(|| {
            criterion::black_box(typilus_corpus::deduplicate(
                &sources,
                typilus_corpus::DEFAULT_THRESHOLD,
            ))
        });
    });
}

criterion_group!(benches, bench_frontend, bench_dedup);
criterion_main!(benches);
