//! TypeSpace query benchmarks: exact brute-force kNN vs the Annoy-style
//! random-projection forest (the paper uses Annoy to make τmap queries
//! sub-linear), plus the end-to-end Eq. 5 prediction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use typilus_space::{ExactIndex, KnnConfig, RpForest, RpForestConfig, TypeMap};
use typilus_types::PyType;

fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect()
}

fn bench_index_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn_query_k10");
    let dim = 32;
    for &n in &[1_000usize, 10_000, 50_000] {
        let points = random_points(n, dim, 1);
        let query: Vec<f32> = random_points(1, dim, 2).pop().expect("one point");
        let exact = ExactIndex::new(points.clone());
        let forest = RpForest::build(points, RpForestConfig::default(), 3);
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            b.iter(|| criterion::black_box(exact.query(&query, 10)));
        });
        group.bench_with_input(BenchmarkId::new("rp_forest", n), &n, |b, _| {
            b.iter(|| criterion::black_box(forest.query(&query, 10)));
        });
    }
    group.finish();
}

fn bench_typemap_predict(c: &mut Criterion) {
    let dim = 32;
    let types: Vec<PyType> = ["int", "str", "bool", "List[int]", "Dict[str, int]"]
        .iter()
        .map(|s| s.parse().expect("valid type"))
        .collect();
    let points = random_points(20_000, dim, 7);
    let mut map = TypeMap::new(dim);
    for (i, p) in points.into_iter().enumerate() {
        map.add(p, types[i % types.len()].clone())
            .expect("fresh map accepts matching-dim points");
    }
    let query: Vec<f32> = random_points(1, dim, 8).pop().expect("one point");

    let mut group = c.benchmark_group("typemap_predict_eq5");
    group.bench_function("exact_20k", |b| {
        b.iter(|| criterion::black_box(map.predict(&query, KnnConfig::default())));
    });
    map.build_index(RpForestConfig::default(), 9);
    group.bench_function("forest_20k", |b| {
        b.iter(|| criterion::black_box(map.predict(&query, KnnConfig::default())));
    });
    group.finish();
}

criterion_group!(benches, bench_index_query, bench_typemap_predict);
criterion_main!(benches);
