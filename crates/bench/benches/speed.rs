//! The paper's "Computational Speed" comparison (Sec. 6.1): one training
//! epoch and inference over the same data for the GNN vs the biRNN
//! (and the path model), where the paper reports the GNN ~60× faster to
//! train and ~29× faster at inference than the biRNN.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use typilus::{EncoderKind, GraphConfig, LossKind, ModelConfig};
use typilus_corpus::{generate, CorpusConfig};
use typilus_models::{PreparedFile, TypeModel};
use typilus_nn::Adam;

struct Fixture {
    model: TypeModel,
    prepared: Vec<PreparedFile>,
}

fn fixture(encoder: EncoderKind) -> Fixture {
    let corpus = generate(&CorpusConfig {
        files: 12,
        seed: 5,
        ..CorpusConfig::default()
    });
    let data = typilus::PreparedCorpus::from_corpus(&corpus, &GraphConfig::default(), 5);
    let config = ModelConfig {
        encoder,
        loss: LossKind::Typilus,
        dim: 32,
        gnn_steps: 8,
        min_subtoken_count: 1,
        ..ModelConfig::default()
    };
    let graphs = data.graphs_of(&data.split.train);
    let model = TypeModel::new(config, &graphs);
    let prepared: Vec<PreparedFile> = data.files.iter().map(|f| model.prepare(&f.graph)).collect();
    Fixture { model, prepared }
}

fn bench_training_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_epoch");
    group.sample_size(10);
    for encoder in [EncoderKind::Graph, EncoderKind::Seq, EncoderKind::Path] {
        let mut fx = fixture(encoder);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{encoder:?}")),
            &encoder,
            |b, _| {
                b.iter(|| {
                    let mut adam = Adam::new(0.01);
                    for chunk in fx.prepared.chunks(8) {
                        let batch: Vec<&PreparedFile> = chunk.iter().collect();
                        if let Some((_, grads)) = fx.model.train_step(&batch) {
                            adam.step(&mut fx.model.params, grads);
                        }
                    }
                });
            },
        );
    }
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference_per_file");
    group.sample_size(20);
    for encoder in [EncoderKind::Graph, EncoderKind::Seq, EncoderKind::Path] {
        let fx = fixture(encoder);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{encoder:?}")),
            &encoder,
            |b, _| {
                b.iter(|| {
                    for file in &fx.prepared {
                        if !file.targets.is_empty() {
                            criterion::black_box(fx.model.embed_inference(file));
                        }
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_training_epoch, bench_inference);
criterion_main!(benches);
