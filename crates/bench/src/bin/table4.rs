//! Regenerates paper **Table 4**: ablations of the graph construction
//! (edge-label removals) and of the initial node representation
//! (token / character / subtoken), plus the max-vs-sum aggregation
//! ablation called out in DESIGN.md.
//!
//! ```sh
//! cargo run --release -p typilus-bench --bin table4
//! ```

use typilus::{
    evaluate_files, Aggregation, EdgeLabel, EdgeSet, EncoderKind, GraphConfig, LossKind,
    MatchRates, NodeInit,
};
use typilus_bench::{config_for, prepare, train_logged, Scale};

struct Ablation {
    name: &'static str,
    edges: EdgeSet,
    node_init: NodeInit,
    aggregation: Aggregation,
}

fn main() {
    let scale = Scale::from_env();
    let ablations = vec![
        Ablation {
            name: "Only Names (No GNN edges)",
            edges: EdgeSet::only_names(),
            node_init: NodeInit::Subtoken,
            aggregation: Aggregation::Max,
        },
        Ablation {
            name: "No Syntactic Edges",
            edges: EdgeSet::without_syntactic(),
            node_init: NodeInit::Subtoken,
            aggregation: Aggregation::Max,
        },
        Ablation {
            name: "No NEXT_TOKEN",
            edges: EdgeSet::all().without(EdgeLabel::NextToken),
            node_init: NodeInit::Subtoken,
            aggregation: Aggregation::Max,
        },
        Ablation {
            name: "No CHILD",
            edges: EdgeSet::all().without(EdgeLabel::Child),
            node_init: NodeInit::Subtoken,
            aggregation: Aggregation::Max,
        },
        Ablation {
            name: "No NEXT_*USE",
            edges: EdgeSet::without_use_edges(),
            node_init: NodeInit::Subtoken,
            aggregation: Aggregation::Max,
        },
        Ablation {
            name: "Full Model - Tokens",
            edges: EdgeSet::all(),
            node_init: NodeInit::Token,
            aggregation: Aggregation::Max,
        },
        Ablation {
            name: "Full Model - Character",
            edges: EdgeSet::all(),
            node_init: NodeInit::Char,
            aggregation: Aggregation::Max,
        },
        Ablation {
            name: "Full Model - Subtokens",
            edges: EdgeSet::all(),
            node_init: NodeInit::Subtoken,
            aggregation: Aggregation::Max,
        },
        Ablation {
            name: "Full Model - Sum Aggregation",
            edges: EdgeSet::all(),
            node_init: NodeInit::Subtoken,
            aggregation: Aggregation::Sum,
        },
    ];

    println!("Table 4: ablations of Typilus (graph encoder, Eq. 4 loss)");
    println!(
        "{:<30} {:>12} {:>13}",
        "Ablation", "Exact Match", "Type Neutral"
    );
    for ab in ablations {
        let graph = GraphConfig {
            edges: ab.edges,
            ..GraphConfig::default()
        };
        // Each ablation re-extracts graphs and retrains from scratch,
        // exactly as the paper does.
        let (_, data) = prepare(&scale, &graph);
        let mut config = config_for(&scale, EncoderKind::Graph, LossKind::Typilus, graph);
        config.model.node_init = ab.node_init;
        config.model.aggregation = ab.aggregation;
        let system = train_logged(ab.name, &data, &config);
        let examples = evaluate_files(&system, &data, &data.split.test);
        let rates = MatchRates::compute(&examples, &system.hierarchy, |_| true);
        println!(
            "{:<30} {:>11.1}% {:>12.1}%",
            ab.name, rates.exact, rates.neutral
        );
    }
    println!("\nExpected shape (paper): only-names drops hard but stays well above");
    println!("zero; removing CHILD hurts more than removing NEXT_TOKEN; removing");
    println!("NEXT_*USE is a near no-op; subtokens edge out tokens and characters.");
}
