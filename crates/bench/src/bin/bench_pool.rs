//! Measures the persistent worker pool against the spawn-per-call
//! engine it replaced, and writes the numbers to `BENCH_pool.json`
//! (override the path with `TYPILUS_BENCH_OUT`).
//!
//! Two quantities, both in steady state (after warm-up):
//!   * median seconds per training step at `threads` workers (default
//!     4, override with `TYPILUS_BENCH_THREADS`) for `train_step_spawning`
//!     (OS threads spawned per call) vs `train_step_parallel` through
//!     one long-lived [`WorkerPool`];
//!   * fresh arena allocations per step for each engine. The pooled
//!     engine keeps its workers' thread-local arenas warm, so its
//!     steady-state count must be zero; the spawning engine discards
//!     every worker arena when the call's threads exit.

use std::time::Instant;
use typilus::{EncoderKind, GraphConfig, LossKind};
use typilus_bench::{config_for, prepare, Scale};
use typilus_models::{PreparedFile, TypeModel};
use typilus_nn::WorkerPool;

/// Runs `f` `reps` times and returns the median wall-clock seconds.
fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// Steady-state (median step seconds, fresh allocations per step) of a
/// step function, after `warmup` unmeasured steps.
fn steady_state(warmup: usize, reps: usize, mut step: impl FnMut()) -> (f64, f64) {
    for _ in 0..warmup {
        step();
    }
    let before = typilus_nn::arena_stats();
    let secs = median_secs(reps, &mut step);
    let fresh = typilus_nn::arena_stats().since(&before).fresh;
    (secs, fresh as f64 / reps as f64)
}

fn main() {
    typilus_nn::set_kernel_mode(typilus_nn::KernelMode::Fast);
    let threads: usize = typilus_bench::bench_threads(4);
    let scale = Scale {
        files: 24,
        epochs: 1,
        dim: 16,
        gnn_steps: 3,
        seed: 0,
        common_threshold: 8,
    };
    let graph = GraphConfig::default();
    let (_, data) = prepare(&scale, &graph);
    let config = config_for(&scale, EncoderKind::Graph, LossKind::Typilus, graph);
    let train_graphs = data.graphs_of(&data.split.train);
    let model = TypeModel::new(config.model, &train_graphs);
    let pool = WorkerPool::new(threads);
    let graphs: Vec<_> = data.files.iter().map(|f| f.graph.clone()).collect();
    let prepared = model.prepare_batch(&graphs, &pool);
    let batch: Vec<&PreparedFile> = data.split.train.iter().map(|&i| &prepared[i]).collect();

    let reps = 31;
    eprintln!("timing one training step at {threads} threads, {reps} reps...");
    // Gradients are recycled after each step, as the training loop does
    // through the optimizer — dropping them would leak their buffers
    // out of the arena economy.
    let (spawn_secs, spawn_fresh) = steady_state(5, reps, || {
        if let Some((_, grads)) = std::hint::black_box(model.train_step_spawning(&batch, threads)) {
            grads.recycle();
        }
    });
    let (pool_secs, pool_fresh) = steady_state(5, reps, || {
        if let Some((_, grads)) = std::hint::black_box(model.train_step_parallel(&batch, &pool)) {
            grads.recycle();
        }
    });

    let json = format!(
        "{{\n  \"threads\": {threads},\n  \"batch_files\": {},\n  \
         \"spawn_step_secs\": {spawn_secs:.6},\n  \"pool_step_secs\": {pool_secs:.6},\n  \
         \"pool_speedup\": {:.3},\n  \"spawn_fresh_allocs_per_step\": {spawn_fresh:.1},\n  \
         \"pool_fresh_allocs_per_step\": {pool_fresh:.1}\n}}\n",
        batch.len(),
        spawn_secs / pool_secs.max(1e-12),
    );
    let out = typilus_bench::bench_out("BENCH_pool.json");
    std::fs::write(&out, &json).expect("write benchmark json");
    print!("{json}");
    eprintln!("wrote {out}");
}
