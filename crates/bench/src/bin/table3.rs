//! Regenerates paper **Table 3**: Typilus' performance broken down by
//! symbol kind (variables, parameters, function returns).
//!
//! ```sh
//! cargo run --release -p typilus-bench --bin table3
//! ```

use typilus::{by_kind, evaluate_files, EncoderKind, GraphConfig, LossKind};
use typilus_bench::{config_for, prepare, train_logged, Scale};

fn main() {
    let scale = Scale::from_env();
    let graph = GraphConfig::default();
    let (_, data) = prepare(&scale, &graph);
    let config = config_for(&scale, EncoderKind::Graph, LossKind::Typilus, graph);
    let system = train_logged("Typilus", &data, &config);
    let examples = evaluate_files(&system, &data, &data.split.test);
    let b = by_kind(&examples, &system.hierarchy);

    let total = (b.variables.count + b.parameters.count + b.returns.count).max(1);
    println!("Table 3: Typilus performance by kind of symbol");
    println!("{:<28} {:>10} {:>10} {:>10}", "", "Var", "FuncPara", "Ret");
    println!(
        "{:<28} {:>9.1}% {:>9.1}% {:>9.1}%",
        "% Exact Match", b.variables.exact, b.parameters.exact, b.returns.exact
    );
    println!(
        "{:<28} {:>9.1}% {:>9.1}% {:>9.1}%",
        "% Match up to Parametric",
        b.variables.up_to_parametric,
        b.parameters.up_to_parametric,
        b.returns.up_to_parametric
    );
    println!(
        "{:<28} {:>9.1}% {:>9.1}% {:>9.1}%",
        "% Type Neutral", b.variables.neutral, b.parameters.neutral, b.returns.neutral
    );
    println!(
        "{:<28} {:>9.1}% {:>9.1}% {:>9.1}%",
        "Proportion of testset",
        100.0 * b.variables.count as f64 / total as f64,
        100.0 * b.parameters.count as f64 / total as f64,
        100.0 * b.returns.count as f64 / total as f64
    );
}
