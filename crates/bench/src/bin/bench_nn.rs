//! Measures the blocked/fused NN kernels and the arena-backed tape, and
//! writes the numbers to `BENCH_nn.json` (override the path with
//! `TYPILUS_BENCH_OUT`).
//!
//! Three comparisons, each Fast (blocked kernels + arena + fused ops)
//! vs Naive (the pre-arena reference kernels, selected at runtime with
//! `set_kernel_mode`):
//!   * one full training step (forward + backward + Adam) of the GGNN
//!     model at hidden dims 64 and 128 — losses are asserted bitwise
//!     identical between the two modes before timing;
//!   * steady-state arena allocations per training step (fresh heap
//!     allocations after the pool is warm vs one allocation per tensor);
//!   * raw matmul / matmul_t / fused aᵀ·b / transpose kernels on
//!     square matrices.
//!
//! The JSON also records which SIMD tile width the dispatcher selected
//! (`sse2` baseline or the widened `avx2` tile).
//!
//! Built with `--features nn-profile` it also prints the per-op time
//! table for the Fast training steps to stderr.

use std::time::Instant;
use typilus::{EncoderKind, GraphConfig, LossKind};
use typilus_bench::{config_for, prepare, Scale};
use typilus_models::{PreparedFile, TypeModel};
use typilus_nn::{arena_stats, set_kernel_mode, Adam, KernelMode, Tensor};

/// Runs `f` `reps` times and returns the median wall-clock seconds.
fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// One training step: forward + backward over `batch`, then Adam.
fn step(model: &mut TypeModel, adam: &mut Adam, batch: &[&PreparedFile]) -> f32 {
    let (loss, grads) = model
        .train_step(batch)
        .expect("batch has annotated targets");
    adam.step(&mut model.params, grads);
    loss
}

struct DimReport {
    dim: usize,
    step_secs_fast: f64,
    step_secs_naive: f64,
    fresh_per_step_fast: u64,
    fresh_per_step_naive: u64,
    reused_per_step_fast: u64,
}

fn bench_dim(dim: usize) -> DimReport {
    let scale = Scale {
        files: 16,
        epochs: 1,
        dim,
        gnn_steps: 3,
        seed: 0,
        common_threshold: 8,
    };
    let graph = GraphConfig::default();
    let (_, data) = prepare(&scale, &graph);
    let config = config_for(&scale, EncoderKind::Graph, LossKind::Typilus, graph);
    let train_graphs = data.graphs_of(&data.split.train);
    let model = TypeModel::new(config.model, &train_graphs);
    let prepared: Vec<PreparedFile> = data.files.iter().map(|f| model.prepare(&f.graph)).collect();
    let batch: Vec<&PreparedFile> = data
        .split
        .train
        .iter()
        .take(config.batch_size)
        .map(|&i| &prepared[i])
        .collect();

    // Determinism gate: the blocked/fused/arena path must produce the
    // same loss, to the bit, as the reference kernels.
    set_kernel_mode(KernelMode::Fast);
    let (loss_fast, _) = model.train_step(&batch).expect("annotated batch");
    set_kernel_mode(KernelMode::Naive);
    let (loss_naive, _) = model.train_step(&batch).expect("annotated batch");
    assert_eq!(
        loss_fast.to_bits(),
        loss_naive.to_bits(),
        "dim {dim}: fast loss {loss_fast} != naive loss {loss_naive}"
    );

    // Timed steps include the optimizer update, matching the pipeline's
    // per-batch work. Each mode gets its own model/optimizer clone so
    // both time the same parameter trajectory. Naive runs first so the
    // per-op profile table printed at the end covers only Fast steps.
    set_kernel_mode(KernelMode::Naive);
    let mut naive_model = model.clone();
    let mut naive_adam = Adam::new(config.lr);
    for _ in 0..3 {
        step(&mut naive_model, &mut naive_adam, &batch);
    }
    let before = arena_stats();
    step(&mut naive_model, &mut naive_adam, &batch);
    let naive_allocs = arena_stats().since(&before);
    let step_secs_naive = median_secs(5, || {
        std::hint::black_box(step(&mut naive_model, &mut naive_adam, &batch));
    });

    set_kernel_mode(KernelMode::Fast);
    typilus_nn::reset_profile();
    let mut fast_model = model.clone();
    let mut fast_adam = Adam::new(config.lr);
    for _ in 0..3 {
        step(&mut fast_model, &mut fast_adam, &batch); // warm the arena pool
    }
    let before = arena_stats();
    step(&mut fast_model, &mut fast_adam, &batch);
    let fast_allocs = arena_stats().since(&before);
    let step_secs_fast = median_secs(5, || {
        std::hint::black_box(step(&mut fast_model, &mut fast_adam, &batch));
    });
    DimReport {
        dim,
        step_secs_fast,
        step_secs_naive,
        fresh_per_step_fast: fast_allocs.fresh,
        fresh_per_step_naive: naive_allocs.fresh,
        reused_per_step_fast: fast_allocs.reused,
    }
}

/// Deterministic pseudo-random matrix (xorshift; no rand dependency
/// needed for a timing fixture).
fn fixture(rows: usize, cols: usize, mut state: u64) -> Tensor {
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        data.push((state >> 40) as f32 / (1 << 24) as f32 - 0.5);
    }
    Tensor::from_vec(rows, cols, data)
}

struct KernelReport {
    n: usize,
    matmul_fast: f64,
    matmul_naive: f64,
    matmul_t_fast: f64,
    matmul_t_naive: f64,
    matmul_at_b_fast: f64,
    matmul_at_b_naive: f64,
    transpose_fast: f64,
    transpose_naive: f64,
}

fn bench_kernels(n: usize) -> KernelReport {
    let a = fixture(n, n, 1);
    let b = fixture(n, n, 2);
    set_kernel_mode(KernelMode::Fast);
    let fast = a.matmul(&b);
    let fast_at_b = a.matmul_at_b(&b);
    set_kernel_mode(KernelMode::Naive);
    let naive = a.matmul(&b);
    let naive_at_b = a.matmul_at_b(&b);
    assert_eq!(
        fast.as_slice(),
        naive.as_slice(),
        "blocked matmul differs from reference"
    );
    assert_eq!(
        fast_at_b.as_slice(),
        naive_at_b.as_slice(),
        "fused a^T*b differs from reference"
    );

    let time = |mode: KernelMode, f: &dyn Fn() -> Tensor| {
        set_kernel_mode(mode);
        median_secs(7, || {
            std::hint::black_box(f());
        })
    };
    let report = KernelReport {
        n,
        matmul_fast: time(KernelMode::Fast, &|| a.matmul(&b)),
        matmul_naive: time(KernelMode::Naive, &|| a.matmul(&b)),
        matmul_t_fast: time(KernelMode::Fast, &|| a.matmul_t(&b)),
        matmul_t_naive: time(KernelMode::Naive, &|| a.matmul_t(&b)),
        matmul_at_b_fast: time(KernelMode::Fast, &|| a.matmul_at_b(&b)),
        matmul_at_b_naive: time(KernelMode::Naive, &|| a.matmul_at_b(&b)),
        transpose_fast: time(KernelMode::Fast, &|| a.transposed()),
        transpose_naive: time(KernelMode::Naive, &|| a.transposed()),
    };
    set_kernel_mode(KernelMode::Fast);
    report
}

fn main() {
    let mut dim_json = Vec::new();
    for dim in [64usize, 128] {
        eprintln!("timing one training step at dim {dim} (fast vs naive kernels)...");
        let r = bench_dim(dim);
        let speedup = r.step_secs_naive / r.step_secs_fast.max(1e-12);
        let alloc_reduction = r.fresh_per_step_naive as f64 / (r.fresh_per_step_fast.max(1)) as f64;
        eprintln!(
            "  dim {dim}: {:.4}s -> {:.4}s ({speedup:.2}x), allocs/step {} -> {} ({alloc_reduction:.0}x)",
            r.step_secs_naive, r.step_secs_fast, r.fresh_per_step_naive, r.fresh_per_step_fast
        );
        dim_json.push(format!(
            "    {{\n      \"dim\": {},\n      \"step_secs_fast\": {:.6},\n      \
             \"step_secs_naive\": {:.6},\n      \"step_speedup\": {:.3},\n      \
             \"fresh_allocs_per_step_fast\": {},\n      \"fresh_allocs_per_step_naive\": {},\n      \
             \"arena_reuses_per_step\": {},\n      \"alloc_reduction\": {:.1}\n    }}",
            r.dim,
            r.step_secs_fast,
            r.step_secs_naive,
            speedup,
            r.fresh_per_step_fast,
            r.fresh_per_step_naive,
            r.reused_per_step_fast,
            alloc_reduction,
        ));
    }

    let n = 256;
    eprintln!("timing {n}x{n} matmul / matmul_t / transpose kernels...");
    let k = bench_kernels(n);

    if let Some(table) = typilus_nn::profile_report() {
        eprintln!("per-op profile (fast-mode training steps, dim 128):\n{table}");
    }

    let json = format!(
        "{{\n  \"simd_width\": \"{}\",\n  \"train_step\": [\n{}\n  ],\n  \"kernels\": {{\n    \"n\": {},\n    \
         \"matmul_secs_fast\": {:.9},\n    \"matmul_secs_naive\": {:.9},\n    \
         \"matmul_speedup\": {:.3},\n    \"matmul_t_secs_fast\": {:.9},\n    \
         \"matmul_t_secs_naive\": {:.9},\n    \"matmul_t_speedup\": {:.3},\n    \
         \"matmul_at_b_secs_fast\": {:.9},\n    \"matmul_at_b_secs_naive\": {:.9},\n    \
         \"matmul_at_b_speedup\": {:.3},\n    \
         \"transpose_secs_fast\": {:.9},\n    \"transpose_secs_naive\": {:.9},\n    \
         \"transpose_speedup\": {:.3}\n  }}\n}}\n",
        typilus_nn::simd_width().name(),
        dim_json.join(",\n"),
        k.n,
        k.matmul_fast,
        k.matmul_naive,
        k.matmul_naive / k.matmul_fast.max(1e-12),
        k.matmul_t_fast,
        k.matmul_t_naive,
        k.matmul_t_naive / k.matmul_t_fast.max(1e-12),
        k.matmul_at_b_fast,
        k.matmul_at_b_naive,
        k.matmul_at_b_naive / k.matmul_at_b_fast.max(1e-12),
        k.transpose_fast,
        k.transpose_naive,
        k.transpose_naive / k.transpose_fast.max(1e-12),
    );
    let out = typilus_bench::bench_out("BENCH_nn.json");
    // lint: allow(D7) — advisory benchmark report, regenerated by rerunning; never read back by the pipeline
    std::fs::write(&out, &json).expect("write benchmark json");
    print!("{json}");
    eprintln!("wrote {out}");
}
