//! Regenerates paper **Fig. 6**: the (k, p) grid of Eq. 5 — the change
//! in match-up-to-parametric relative to the grid median, for the kNN
//! neighbour count `k` and the distance exponent `p`.
//!
//! ```sh
//! cargo run --release -p typilus-bench --bin fig6
//! ```

use typilus::{evaluate_files, EncoderKind, GraphConfig, KnnConfig, LossKind, MatchRates};
use typilus_bench::{config_for, maybe_write_csv, prepare, train_logged, Scale};

fn main() {
    let scale = Scale::from_env();
    let graph = GraphConfig::default();
    let (_, data) = prepare(&scale, &graph);
    let config = config_for(&scale, EncoderKind::Graph, LossKind::Typilus, graph);
    let mut system = train_logged("Typilus", &data, &config);

    let ks = [1usize, 2, 3, 4, 5, 7, 9, 11, 13, 16, 19, 25];
    let ps = [0.01f32, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 5.0];

    // Evaluate the whole grid with one trained model and one fixed type
    // map, exactly as the paper does.
    let mut grid = vec![vec![0.0f64; ps.len()]; ks.len()];
    for (ki, &k) in ks.iter().enumerate() {
        for (pi, &p) in ps.iter().enumerate() {
            system.config.knn = KnnConfig { k, p };
            let examples = evaluate_files(&system, &data, &data.split.test);
            let rates = MatchRates::compute(&examples, &system.hierarchy, |_| true);
            grid[ki][pi] = rates.up_to_parametric;
        }
    }
    let mut values: Vec<f64> = grid.iter().flatten().copied().collect();
    values.sort_by(f64::total_cmp);
    let median = values[values.len() / 2];

    println!("Fig. 6: match-up-to-parametric delta vs grid median ({median:.1}%)");
    print!("{:>5}", "k\\p");
    for p in ps {
        print!("{p:>7.2}");
    }
    println!();
    for (&k, row) in ks.iter().zip(&grid) {
        print!("{k:>5}");
        for &cell in row.iter().take(ps.len()) {
            print!("{:>7.1}", cell - median);
        }
        println!();
    }
    let mut csv_rows = Vec::new();
    for (ki, &k) in ks.iter().enumerate() {
        for (pi, &p) in ps.iter().enumerate() {
            csv_rows.push(format!("{k},{p},{}", grid[ki][pi]));
        }
    }
    maybe_write_csv("fig6_grid", "k,p,match_up_to_parametric", &csv_rows);
    println!("\nExpected shape (paper Fig. 6): k = 1-2 clearly below the median;");
    println!("larger k with moderately large p gives the best corner.");
}
