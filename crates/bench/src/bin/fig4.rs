//! Regenerates paper **Fig. 4**: precision–recall curves for
//! Graph2Class, Graph2Space and Typilus under the three match criteria,
//! sweeping the prediction-confidence threshold.
//!
//! ```sh
//! cargo run --release -p typilus-bench --bin fig4
//! ```

use typilus::{
    default_thresholds, evaluate_files, pr_curve, Criterion, EncoderKind, GraphConfig, LossKind,
};
use typilus_bench::{config_for, maybe_write_csv, prepare, train_logged, variant_name, Scale};

fn main() {
    let scale = Scale::from_env();
    let graph = GraphConfig::default();
    let (_, data) = prepare(&scale, &graph);
    let thresholds = default_thresholds();

    for loss in [LossKind::Class, LossKind::Space, LossKind::Typilus] {
        let name = variant_name(EncoderKind::Graph, loss);
        let config = config_for(&scale, EncoderKind::Graph, loss, graph);
        let system = train_logged(name, &data, &config);
        let examples = evaluate_files(&system, &data, &data.split.test);
        println!("\nFig. 4 ({name}): precision-recall by confidence threshold");
        println!(
            "{:>9} {:>8}  {:>8} {:>8} {:>8}",
            "threshold", "recall", "exact", "param", "neutral"
        );
        let exact = pr_curve(&examples, &system.hierarchy, Criterion::Exact, &thresholds);
        let param = pr_curve(
            &examples,
            &system.hierarchy,
            Criterion::UpToParametric,
            &thresholds,
        );
        let neutral = pr_curve(
            &examples,
            &system.hierarchy,
            Criterion::Neutral,
            &thresholds,
        );
        let mut csv_rows = Vec::new();
        for ((e, p), n) in exact.iter().zip(&param).zip(&neutral) {
            println!(
                "{:>9.2} {:>7.1}%  {:>7.1}% {:>7.1}% {:>7.1}%",
                e.threshold,
                100.0 * e.recall,
                100.0 * e.precision,
                100.0 * p.precision,
                100.0 * n.precision
            );
            csv_rows.push(format!(
                "{},{},{},{},{}",
                e.threshold, e.recall, e.precision, p.precision, n.precision
            ));
        }
        maybe_write_csv(
            &format!("fig4_{}", name.to_lowercase().replace('-', "_")),
            "threshold,recall,exact_precision,param_precision,neutral_precision",
            &csv_rows,
        );
    }
    println!("\nExpected shape (paper Fig. 4): precision rises as recall drops;");
    println!("Typilus holds the highest neutral precision at moderate recall.");
}
