//! Regenerates the paper's Sec. 6.1 **"Transformers"** paragraph: a
//! small transformer in place of DeepTyper's biGRU, trained identically,
//! with the finding that it does not improve on the recurrent baseline
//! (transformers want more data than the corpus provides).
//!
//! ```sh
//! cargo run --release -p typilus-bench --bin transformers_note
//! ```

use typilus::{evaluate_files, table2_row, EncoderKind, GraphConfig, LossKind};
use typilus_bench::{config_for, prepare, train_logged, variant_name, Scale};

fn main() {
    let scale = Scale::from_env();
    let graph = GraphConfig::default();
    let (_, data) = prepare(&scale, &graph);

    println!("Sec. 6.1 'Transformers': small transformer vs the biGRU baseline");
    println!(
        "{:<22} {:>9} {:>9} {:>9}  {:>8}",
        "Model", "Ex.All", "Ex.Comm", "Ex.Rare", "Neutral"
    );
    for encoder in [EncoderKind::Seq, EncoderKind::Transformer] {
        let name = variant_name(encoder, LossKind::Typilus);
        let config = config_for(&scale, encoder, LossKind::Typilus, graph);
        let system = train_logged(name, &data, &config);
        let examples = evaluate_files(&system, &data, &data.split.test);
        let row = table2_row(&examples, &system.hierarchy, scale.common_threshold);
        println!(
            "{:<22} {:>8.1}% {:>8.1}% {:>8.1}%  {:>7.1}%",
            name, row.exact_all, row.exact_common, row.exact_rare, row.neutral
        );
    }
    println!("\nExpected shape (paper): the transformer does not improve on the");
    println!("biGRU at this data scale.");
}
