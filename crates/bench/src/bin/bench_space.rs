//! `bench_space` — the million-marker TypeSpace index benchmark.
//!
//! For each marker count in `TYPILUS_SPACE_SCALES` (default
//! `10000,100000,1000000`) this measures, over a synthetic but
//! deterministic marker set:
//!
//! - **build**: serial vs 4-thread pooled sharded build of the on-disk
//!   payload, asserting the two byte streams are identical (the
//!   determinism contract), and reporting the parallel speedup;
//! - **recall@10** of the sharded index against [`ExactIndex`] over
//!   the same points;
//! - **query latency** p50/p99 of the zero-copy view, per query;
//! - **load**: opening the written sidecar through the O(header)
//!   mmap path ([`typilus::open_space_index`]) vs the read-everything
//!   path plus a full checksum sweep.
//!
//! Writes `BENCH_space.json` (or `TYPILUS_BENCH_OUT`) and prints it to
//! stdout. `scripts/benchdiff.sh` runs this at reduced scale and fails
//! on query-latency or recall regressions.

use std::time::Instant;
use typilus_nn::WorkerPool;
use typilus_space::{
    build_payload, ExactIndex, PointStore, QueryScratch, RpForestConfig, SpaceConfig, SpaceIndex,
};

/// Deterministic synthetic markers: `n` points in `dim` dimensions from
/// a fixed LCG, loosely clustered so tree splits stay meaningful.
fn synth_points(n: usize, dim: usize, seed: u64) -> PointStore {
    let mut points = PointStore::new(dim);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
    };
    let mut row = vec![0.0f32; dim];
    for i in 0..n {
        let center = (i % 97) as f32 * 0.05;
        for slot in row.iter_mut() {
            *slot = center + next();
        }
        points.push(&row);
    }
    points
}

fn type_names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("type_{}", i % 64)).collect()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

struct ScaleReport {
    markers: usize,
    search_k: usize,
    payload_bytes: usize,
    build_serial_s: f64,
    build_pooled_s: f64,
    build_speedup: f64,
    recall_at_10: f64,
    query_p50_us: f64,
    query_p99_us: f64,
    exact_p50_us: f64,
    query_speedup_vs_exact: f64,
    load_mmap_s: f64,
    load_read_verify_s: f64,
}

fn run_scale(n: usize, dim: usize, base: &SpaceConfig, bench_dir: &std::path::Path) -> ScaleReport {
    // The candidate budget must grow with the marker count: a fixed
    // search_k dilutes to vanishing recall at 10^6 points.
    let config = &SpaceConfig {
        forest: RpForestConfig {
            search_k: (n / 64).max(4096),
            ..base.forest
        },
        ..*base
    };
    eprintln!("[space] {n} markers: synthesizing...");
    let points = synth_points(n, dim, 11);
    let names = type_names(n);

    eprintln!("[space] {n} markers: building (serial)...");
    let t = Instant::now();
    let serial = build_payload(&points, &names, config, 5, None).expect("serial build");
    let build_serial_s = t.elapsed().as_secs_f64();

    eprintln!("[space] {n} markers: building (4-thread pool)...");
    let pool = WorkerPool::new(4);
    let t = Instant::now();
    let pooled = build_payload(&points, &names, config, 5, Some(&pool)).expect("pooled build");
    let build_pooled_s = t.elapsed().as_secs_f64();
    assert_eq!(
        serial, pooled,
        "sharded build must be byte-identical at any thread count"
    );

    let payload_bytes = pooled.len();
    let index = SpaceIndex::from_payload_vec(pooled).expect("open");

    // Recall@10 against brute force over the same points, on queries
    // drawn near the cluster centers (fewer at the largest scale: the
    // exact scan is the benchmark's own cost ceiling).
    let k = 10;
    let queries: usize = if n >= 1_000_000 { 50 } else { 100 };
    let exact = ExactIndex::from_store(points.clone());
    let mut scratch = QueryScratch::new();
    let mut hits = Vec::new();
    let query_points = synth_points(queries, dim, 77);
    let mut overlap = 0usize;
    let mut total = 0usize;
    for q in query_points.rows() {
        let truth = exact.query(q, k);
        index.query_into(q, k, &mut scratch, &mut hits);
        total += truth.len();
        for t in &truth {
            if hits.iter().any(|h| h.index == t.index) {
                overlap += 1;
            }
        }
    }
    let recall_at_10 = overlap as f64 / total.max(1) as f64;

    // Per-query latency of the zero-copy view, warmed scratch.
    let mut lat: Vec<f64> = Vec::with_capacity(queries * 4);
    for q in query_points.rows() {
        index.query_into(q, k, &mut scratch, &mut hits);
    }
    for _ in 0..4 {
        for q in query_points.rows() {
            let t = Instant::now();
            index.query_into(q, k, &mut scratch, &mut hits);
            lat.push(t.elapsed().as_secs_f64() * 1e6);
        }
    }
    lat.sort_by(f64::total_cmp);
    let query_p50_us = percentile(&lat, 0.50);
    let query_p99_us = percentile(&lat, 0.99);

    // Exact-scan latency over the same queries: the denominator of the
    // query speedup, a within-run ratio that compares across machines
    // (scripts/benchdiff.sh keys its regression check on it).
    let mut exact_lat: Vec<f64> = Vec::with_capacity(queries);
    for q in query_points.rows() {
        let t = Instant::now();
        exact.query_into(q, k, &mut scratch, &mut hits);
        exact_lat.push(t.elapsed().as_secs_f64() * 1e6);
    }
    exact_lat.sort_by(f64::total_cmp);
    let exact_p50_us = percentile(&exact_lat, 0.50);

    // Load cost: the O(header) mmap open vs read-back + checksum sweep.
    let sidecar = bench_dir.join(format!("bench_{n}.space"));
    typilus::atomic_io::write_artifact(&sidecar, index.payload()).expect("write sidecar");
    let t = Instant::now();
    let mapped = typilus::open_space_index(&sidecar).expect("mmap open");
    let load_mmap_s = t.elapsed().as_secs_f64();
    assert_eq!(mapped.file_id(), index.file_id());
    let t = Instant::now();
    let swept = typilus::open_space_index(&sidecar).expect("open");
    swept.verify().expect("verify");
    let load_read_verify_s = t.elapsed().as_secs_f64();
    std::fs::remove_file(&sidecar).ok();

    ScaleReport {
        markers: n,
        search_k: config.forest.search_k,
        payload_bytes,
        build_serial_s,
        build_pooled_s,
        build_speedup: build_serial_s / build_pooled_s.max(1e-9),
        recall_at_10,
        query_p50_us,
        query_p99_us,
        exact_p50_us,
        query_speedup_vs_exact: exact_p50_us / query_p50_us.max(1e-9),
        load_mmap_s,
        load_read_verify_s,
    }
}

fn main() {
    let scales = typilus_bench::space_scales(&[10_000, 100_000, 1_000_000]);
    let dim = 32;
    let config = SpaceConfig {
        shards: 8,
        forest: RpForestConfig {
            trees: 16,
            leaf_size: 32,
            search_k: 4096,
        },
        rebuild_threshold: 1024,
    };
    let bench_dir =
        std::env::temp_dir().join(format!("typilus_bench_space_{}", std::process::id()));
    std::fs::create_dir_all(&bench_dir).expect("bench dir");

    let reports: Vec<ScaleReport> = scales
        .iter()
        .map(|&n| run_scale(n, dim, &config, &bench_dir))
        .collect();
    std::fs::remove_dir_all(&bench_dir).ok();

    let mut rows = String::new();
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\n      \"markers\": {},\n      \"search_k\": {},\n      \
             \"payload_bytes\": {},\n      \
             \"build_serial_s\": {:.4},\n      \"build_pooled4_s\": {:.4},\n      \
             \"build_speedup_4t\": {:.2},\n      \"recall_at_10\": {:.4},\n      \
             \"query_p50_us\": {:.1},\n      \"query_p99_us\": {:.1},\n      \
             \"exact_p50_us\": {:.1},\n      \"query_speedup_vs_exact\": {:.2},\n      \
             \"load_mmap_s\": {:.6},\n      \"load_read_verify_s\": {:.6}\n    }}",
            r.markers,
            r.search_k,
            r.payload_bytes,
            r.build_serial_s,
            r.build_pooled_s,
            r.build_speedup,
            r.recall_at_10,
            r.query_p50_us,
            r.query_p99_us,
            r.exact_p50_us,
            r.query_speedup_vs_exact,
            r.load_mmap_s,
            r.load_read_verify_s
        ));
    }
    // The build speedup is only meaningful with >= 4 physical cores;
    // record how many this host had so the ratio can be interpreted.
    let cpus = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"space\",\n  \"dim\": {dim},\n  \"shards\": {},\n  \
         \"trees\": {},\n  \"leaf_size\": {},\n  \"k\": 10,\n  \"host_cpus\": {cpus},\n  \
         \"scales\": [\n{rows}\n  ]\n}}\n",
        config.shards, config.forest.trees, config.forest.leaf_size
    );
    let out = typilus_bench::bench_out("BENCH_space.json");
    // lint: allow(D7) — advisory benchmark report, regenerated by rerunning; never read back by the pipeline
    std::fs::write(&out, &json).expect("write report");
    eprintln!("wrote {out}");
    print!("{json}");
}
