//! Regenerates the paper's **Sec. 7 qualitative evaluation**: the most
//! confident *non-neutral* predictions, grouped into the paper's
//! confusion families — `T` vs `Optional[T]` / unions, `str` vs
//! `bytes`, `int` vs `float`, container-vs-element, and user-type vs
//! user-type — plus the share of deep parametric types in the corpus
//! (the paper: 80% of parametric annotations have depth 1, 19% depth 2).
//!
//! ```sh
//! cargo run --release -p typilus-bench --bin qualitative
//! ```

use std::collections::BTreeMap;
use typilus::{evaluate_files, EncoderKind, GraphConfig, LossKind, PyType};
use typilus_bench::{config_for, prepare, train_logged, Scale};

/// The confusion family of a wrong prediction, mirroring Sec. 7.
fn confusion_family(predicted: &PyType, truth: &PyType) -> &'static str {
    let p = predicted.base_name();
    let t = truth.base_name();
    let optionalish =
        |a: &PyType, b: &PyType| matches!(a, PyType::Union(m) if m.iter().any(|x| x == b));
    if optionalish(predicted, truth) || optionalish(truth, predicted) {
        return "T vs Optional[T]/Union";
    }
    if (p == "str" && t == "bytes") || (p == "bytes" && t == "str") {
        return "str vs bytes";
    }
    if matches!(
        (p, t),
        ("int", "float") | ("float", "int") | ("int", "bool") | ("bool", "int")
    ) {
        return "numeric tower";
    }
    let container = |n: &str| matches!(n, "List" | "Set" | "Dict" | "Tuple" | "Iterable");
    if container(p) != container(t) {
        return "container vs element";
    }
    if container(p) && container(t) {
        return "container vs container";
    }
    let builtin = |n: &str| {
        matches!(
            n,
            "int" | "str" | "bool" | "float" | "bytes" | "complex" | "range"
        )
    };
    if !builtin(p) && !builtin(t) {
        return "user type vs user type";
    }
    "other"
}

fn main() {
    let scale = Scale::from_env();
    let graph = GraphConfig::default();
    let (corpus, data) = prepare(&scale, &graph);
    let config = config_for(&scale, EncoderKind::Graph, LossKind::Typilus, graph);
    let system = train_logged("Typilus", &data, &config);
    let examples = evaluate_files(&system, &data, &data.split.test);

    // Depth distribution of parametric annotations (Sec. 7 preamble).
    let mut depth_counts: BTreeMap<usize, usize> = BTreeMap::new();
    let mut parametric = 0usize;
    for e in &examples {
        if e.truth.is_parametric() {
            parametric += 1;
            *depth_counts.entry(e.truth.depth()).or_insert(0) += 1;
        }
    }
    println!("parametric annotation depth distribution (test split):");
    let mut depths: Vec<_> = depth_counts.into_iter().collect();
    depths.sort();
    for (d, c) in depths {
        println!(
            "  depth {d}: {c} ({:.0}%)",
            100.0 * c as f64 / parametric.max(1) as f64
        );
    }

    // Most confident wrong (non-neutral) predictions, by family.
    let mut wrong: Vec<(&'static str, f32, String, String, String)> = Vec::new();
    for e in &examples {
        let Some(top) = e.prediction.top() else {
            continue;
        };
        if system.hierarchy.is_neutral(&top.ty, &e.truth) {
            continue;
        }
        wrong.push((
            confusion_family(&top.ty, &e.truth),
            top.probability,
            e.prediction.name.clone(),
            top.ty.to_string(),
            e.truth.to_string(),
        ));
    }
    wrong.sort_by(|a, b| b.1.total_cmp(&a.1));

    let mut by_family: BTreeMap<&'static str, usize> = BTreeMap::new();
    for (family, ..) in &wrong {
        *by_family.entry(family).or_insert(0) += 1;
    }
    println!(
        "\nconfident-error families ({} non-neutral predictions):",
        wrong.len()
    );
    let mut families: Vec<_> = by_family.into_iter().collect();
    families.sort_by_key(|&(family, count)| (std::cmp::Reverse(count), family));
    for (family, count) in families {
        println!("  {count:>4}  {family}");
    }

    println!("\nmost confident errors (cf. the paper's mx.nd.NDArray vs torch.Tensor):");
    println!(
        "{:<26} {:<22} {:<22} {:<22} conf",
        "family", "symbol", "predicted", "truth"
    );
    for (family, conf, name, pred, truth) in wrong.iter().take(15) {
        println!("{family:<26} {name:<22} {pred:<22} {truth:<22} {conf:.2}");
    }
    let _ = corpus;
    println!("\nExpected shape (paper Sec. 7): depth-1 parametric types dominate;");
    println!("T-vs-Optional[T], str-vs-bytes and related-user-type confusions lead.");
}
