//! Regenerates paper **Table 5**: type-checking accuracy of Typilus'
//! predictions modulo the two optional type checkers, broken into the
//! `ϵ→τ` / `τ→τ'` / `τ→τ` substitution categories.
//!
//! ```sh
//! cargo run --release -p typilus-bench --bin table5
//! ```

use typilus::{check_predictions, Category, CheckerProfile, EncoderKind, GraphConfig, LossKind};
use typilus_bench::{config_for, prepare, train_logged, Scale};

fn main() {
    let scale = Scale::from_env();
    let graph = GraphConfig::default();
    let (_, data) = prepare(&scale, &graph);
    let config = config_for(&scale, EncoderKind::Graph, LossKind::Typilus, graph);
    let system = train_logged("Typilus", &data, &config);

    let mypy = check_predictions(&system, &data, &data.split.test, CheckerProfile::Mypy, 0.0).1;
    let pytype = check_predictions(
        &system,
        &data,
        &data.split.test,
        CheckerProfile::Pytype,
        0.0,
    )
    .1;

    println!("Table 5: type checking accuracy modulo checker");
    println!(
        "{:<22} {:>11} {:>7}   {:>11} {:>7}",
        "Annotation", "mypy Prop.", "Acc.", "pytype Prop.", "Acc."
    );
    let rows = [
        ("eps -> tau", Category::FreshAnnotation),
        ("tau -> tau'", Category::ChangedAnnotation),
        ("tau -> tau", Category::SameAnnotation),
    ];
    for (label, cat) in rows {
        let (m, p) = match cat {
            Category::FreshAnnotation => (&mypy.fresh, &pytype.fresh),
            Category::ChangedAnnotation => (&mypy.changed, &pytype.changed),
            Category::SameAnnotation => (&mypy.same, &pytype.same),
        };
        println!(
            "{:<22} {:>10.0}% {:>6.0}%   {:>11.0}% {:>6.0}%",
            label,
            mypy.proportion(cat),
            m.accuracy(),
            pytype.proportion(cat),
            p.accuracy()
        );
    }
    println!(
        "{:<22} {:>10.0}% {:>6.0}%   {:>11.0}% {:>6.0}%",
        "Overall",
        100.0,
        mypy.overall().accuracy(),
        100.0,
        pytype.overall().accuracy()
    );
    println!(
        "\nassessed files: mypy {} (discarded {}), pytype {} (discarded {})",
        mypy.assessed_files, mypy.discarded_files, pytype.assessed_files, pytype.discarded_files
    );
    println!(
        "assessed predictions: mypy {}, pytype {}",
        mypy.overall().total,
        pytype.overall().total
    );
    println!("\nExpected shape (paper): high overall accuracy, tau->tau at 100%;");
    println!("pytype (extra inference) accepts fewer predictions than mypy.");
}
