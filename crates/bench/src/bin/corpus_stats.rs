//! Regenerates the paper's **Data** paragraph (Sec. 6): corpus size,
//! annotation counts, type diversity, Zipf head mass, rare-type share,
//! parametric share, and the dedup report.
//!
//! ```sh
//! cargo run --release -p typilus-bench --bin corpus_stats
//! ```

use typilus_bench::Scale;
use typilus_corpus::{corpus_stats, duplicate_count, generate, CorpusConfig, DEFAULT_THRESHOLD};

fn main() {
    let scale = Scale::from_env();
    let corpus = generate(&CorpusConfig {
        files: scale.files,
        seed: scale.seed,
        ..CorpusConfig::default()
    });
    let sources: Vec<&str> = corpus.files.iter().map(|f| f.source.as_str()).collect();
    let dups = duplicate_count(&sources, DEFAULT_THRESHOLD);
    let stats = corpus_stats(&corpus, scale.common_threshold);

    println!("Corpus statistics (cf. paper Sec. 6 'Data')");
    println!("  files generated:           {}", corpus.files.len());
    println!("  near-duplicates detected:  {dups} (removed before training)");
    println!("  files after dedup:         {}", corpus.files.len() - dups);
    println!("  unparseable files:         {}", stats.unparseable.len());
    for (name, error) in &stats.unparseable {
        println!("    skipped {name}: {error}");
    }
    println!("  annotatable symbols:       {}", stats.symbols);
    println!("  usable annotations:        {}", stats.annotated);
    println!("  distinct annotated types:  {}", stats.distinct_types);
    println!(
        "  top-10 type mass:          {:.1}%",
        100.0 * stats.top10_mass
    );
    println!(
        "  rare annotations (<{}):     {:.1}%",
        stats.rare_threshold,
        100.0 * stats.rare_fraction
    );
    println!(
        "  parametric annotations:    {:.1}%",
        100.0 * stats.parametric_fraction
    );
    println!("\n  most frequent types:");
    for (ty, count) in stats.type_counts.iter().take(12) {
        println!("    {count:>6}  {ty}");
    }
    let singletons = stats.type_counts.iter().filter(|(_, c)| *c <= 2).count();
    println!("  ... and {singletons} types with <= 2 annotations (the fat tail)");
    println!("\nExpected shape (paper): top-10 types hold about half the mass;");
    println!("a long tail of user-defined and generic types carries ~1/3.");
}
