//! Regenerates paper **Fig. 7**: precision–recall of type-check
//! correctness (a prediction is correct if substituting it causes no
//! type error) as the confidence threshold is swept, for both checker
//! profiles.
//!
//! ```sh
//! cargo run --release -p typilus-bench --bin fig7
//! ```

use typilus::{
    check_pr_curve, check_predictions, default_thresholds, CheckerProfile, EncoderKind,
    GraphConfig, LossKind,
};
use typilus_bench::{config_for, prepare, train_logged, Scale};

fn main() {
    let scale = Scale::from_env();
    let graph = GraphConfig::default();
    let (_, data) = prepare(&scale, &graph);
    let config = config_for(&scale, EncoderKind::Graph, LossKind::Typilus, graph);
    let system = train_logged("Typilus", &data, &config);
    let thresholds = default_thresholds();

    println!("Fig. 7: precision-recall of type-check correctness");
    println!(
        "{:>9}  {:>8} {:>10}   {:>8} {:>10}",
        "threshold", "recall", "mypy prec", "recall", "pytype prec"
    );
    let (mypy_outcomes, _) =
        check_predictions(&system, &data, &data.split.test, CheckerProfile::Mypy, 0.0);
    let (pytype_outcomes, _) = check_predictions(
        &system,
        &data,
        &data.split.test,
        CheckerProfile::Pytype,
        0.0,
    );
    let m = check_pr_curve(&mypy_outcomes, &thresholds);
    let p = check_pr_curve(&pytype_outcomes, &thresholds);
    for (mp, pp) in m.iter().zip(&p) {
        println!(
            "{:>9.2}  {:>7.1}% {:>9.1}%   {:>7.1}% {:>9.1}%",
            mp.threshold,
            100.0 * mp.recall,
            100.0 * mp.precision,
            100.0 * pp.recall,
            100.0 * pp.precision
        );
    }
    println!("\nExpected shape (paper Fig. 7): trading recall for precision works;");
    println!("mypy-correctness precision sits above pytype-correctness precision.");
}
