//! Regenerates paper **Fig. 5**: Typilus' exact match and match up to
//! parametric type, bucketed by how many training annotations the
//! ground-truth type has.
//!
//! ```sh
//! cargo run --release -p typilus-bench --bin fig5
//! ```

use typilus::{by_annotation_count, evaluate_files, EncoderKind, GraphConfig, LossKind};
use typilus_bench::{config_for, prepare, train_logged, Scale};

fn main() {
    let scale = Scale::from_env();
    let graph = GraphConfig::default();
    let (_, data) = prepare(&scale, &graph);
    let config = config_for(&scale, EncoderKind::Graph, LossKind::Typilus, graph);
    let system = train_logged("Typilus", &data, &config);
    let examples = evaluate_files(&system, &data, &data.split.test);

    // Scaled-down analogue of the paper's 2..10000 buckets.
    let bounds = [2usize, 5, 10, 20, 50, 100, 200];
    let rows = by_annotation_count(&examples, &system.hierarchy, &bounds);
    println!("Fig. 5: performance bucketed by annotation count of the true type");
    println!(
        "{:>16} {:>7} {:>13} {:>18}",
        "annotation count", "n", "exact match", "match up to param"
    );
    let mut lower = 0usize;
    for (upper, rates) in rows {
        let label = if upper == usize::MAX {
            format!("{lower}+")
        } else {
            format!("{lower}-{}", upper - 1)
        };
        println!(
            "{label:>16} {:>7} {:>12.1}% {:>17.1}%",
            rates.count, rates.exact, rates.up_to_parametric
        );
        if upper != usize::MAX {
            lower = upper;
        }
    }
    println!("\nExpected shape (paper Fig. 5): performance climbs with annotation");
    println!("count but stays useful on the rare buckets (the open-vocabulary win).");
}
