//! Regenerates paper **Table 2**: the nine encoder × loss variants with
//! exact match / match-up-to-parametric (all, common, rare) and type
//! neutrality.
//!
//! ```sh
//! cargo run --release -p typilus-bench --bin table2
//! ```
//!
//! Optional: `--lambda <f32>` sweeps the classification weight of Eq. 4
//! for the Typilus variants (DESIGN.md extension).

use typilus::{evaluate_files, table2_row, GraphConfig};
use typilus_bench::{all_variants, config_for, prepare, train_logged, variant_name, Scale};

fn main() {
    let scale = Scale::from_env();
    let lambda: Option<f32> = std::env::args()
        .skip_while(|a| a != "--lambda")
        .nth(1)
        .and_then(|v| v.parse().ok());
    let graph = GraphConfig::default();
    let (_, data) = prepare(&scale, &graph);
    eprintln!(
        "corpus: {} files ({} train / {} valid / {} test)",
        data.files.len(),
        data.split.train.len(),
        data.split.valid.len(),
        data.split.test.len()
    );

    println!(
        "Table 2: quantitative evaluation (common = type seen >= {} times in training)",
        scale.common_threshold
    );
    println!(
        "{:<14} {:>9} {:>9} {:>9}  {:>9} {:>9} {:>9}  {:>8}",
        "Model", "Ex.All", "Ex.Comm", "Ex.Rare", "Par.All", "Par.Comm", "Par.Rare", "Neutral"
    );
    for (encoder, loss) in all_variants() {
        let name = variant_name(encoder, loss);
        let mut config = config_for(&scale, encoder, loss, graph);
        if let (Some(l), typilus::LossKind::Typilus) = (lambda, loss) {
            config.model.lambda = l;
        }
        let system = train_logged(name, &data, &config);
        let examples = evaluate_files(&system, &data, &data.split.test);
        let row = table2_row(&examples, &system.hierarchy, scale.common_threshold);
        println!(
            "{:<14} {:>8.1}% {:>8.1}% {:>8.1}%  {:>8.1}% {:>8.1}% {:>8.1}%  {:>7.1}%",
            name,
            row.exact_all,
            row.exact_common,
            row.exact_rare,
            row.para_all,
            row.para_common,
            row.para_rare,
            row.neutral
        );
    }
    println!("\nExpected shape (paper): Graph > Seq > Path; *2Class collapses on rare");
    println!("types; *Typilus (combined loss, Eq. 4) best overall.");
}
