//! `bench_serve` — latency/throughput benchmark of the `typilus serve`
//! daemon.
//!
//! Trains a small model, starts an in-process server on an ephemeral
//! TCP port, then for each client count in `TYPILUS_SERVE_CLIENTS`
//! (default `1,2,4`) drives `TYPILUS_SERVE_REQUESTS` (default 40)
//! predict requests *per client* from concurrent client threads,
//! reporting per-request p50/p99 latency, aggregate throughput, and
//! the error-reply count (which must be 0: concurrency may never cost
//! correctness).
//!
//! `throughput_scaling` is the aggregate-throughput ratio of the
//! largest client count over one client — a within-run ratio that
//! compares across machines. The server batches concurrent predicts
//! into single pooled forward passes, so on any host the ratio should
//! hold near or above 1.0 even when cores are scarce.
//! `scripts/benchdiff.sh` keys its serve regression check on it.
//!
//! `supervision_p50_overhead` is an in-process A/B of the engine's
//! `catch_unwind` supervisor: the same predict workload run directly
//! and inside the wrapper the engine applies to every batch, as a p50
//! ratio. Supervision is unconditional in the daemon, so this ratio is
//! the price of panic-safety per request; benchdiff gates it at 1.05.
//!
//! Writes `BENCH_serve.json` (or `TYPILUS_BENCH_OUT`) and prints it to
//! stdout.

use std::time::Instant;
use typilus::{EncoderKind, GraphConfig, LossKind};
use typilus_bench::{config_for, prepare, train_logged, Scale};
use typilus_serve::{Client, Endpoint, Response, ServeOptions, Server};

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

struct Row {
    clients: usize,
    requests: usize,
    errors: u64,
    p50_ms: f64,
    p99_ms: f64,
    wall_s: f64,
    throughput_rps: f64,
}

/// Drives `clients` concurrent clients, `per_client` predicts each.
fn run_clients(endpoint: &Endpoint, sources: &[String], clients: usize, per_client: usize) -> Row {
    let wall = Instant::now();
    let mut handles = Vec::with_capacity(clients);
    for c in 0..clients {
        let endpoint = endpoint.clone();
        let sources = sources.to_vec();
        handles.push(std::thread::spawn(move || -> (Vec<f64>, u64) {
            let mut lat = Vec::with_capacity(per_client);
            let mut errors = 0u64;
            let mut client = match Client::connect(&endpoint) {
                Ok(cl) => cl,
                Err(_) => return (lat, per_client as u64),
            };
            for r in 0..per_client {
                let src = &sources[(c + r) % sources.len()];
                let t = Instant::now();
                match client.predict(src) {
                    Ok(Response::Predictions(_)) => lat.push(t.elapsed().as_secs_f64() * 1e3),
                    Ok(_) | Err(_) => errors += 1,
                }
            }
            (lat, errors)
        }));
    }
    let mut lat = Vec::with_capacity(clients * per_client);
    let mut errors = 0u64;
    for h in handles {
        match h.join() {
            Ok((l, e)) => {
                lat.extend(l);
                errors += e;
            }
            Err(_) => errors += per_client as u64,
        }
    }
    let wall_s = wall.elapsed().as_secs_f64();
    lat.sort_by(f64::total_cmp);
    let total = clients * per_client;
    Row {
        clients,
        requests: total,
        errors,
        p50_ms: percentile(&lat, 0.50),
        p99_ms: percentile(&lat, 0.99),
        wall_s,
        throughput_rps: total as f64 / wall_s.max(1e-9),
    }
}

/// In-process A/B of the serve supervisor: the same predict workload
/// run directly and inside the `catch_unwind` wrapper [`Server::run`]'s
/// engine applies to every batch. Interleaved reps so drift (cache
/// warm-up, host noise) lands on both arms; returns
/// `(direct_p50_ms, supervised_p50_ms, ratio)`.
fn supervision_overhead(system: &typilus::TrainedSystem, sources: &[String]) -> (f64, f64, f64) {
    const REPS: usize = 60;
    let mut direct = Vec::with_capacity(REPS);
    let mut supervised = Vec::with_capacity(REPS);
    let time_direct = |src: &String| {
        let t = Instant::now();
        let _ = system.predict_source(src);
        t.elapsed().as_secs_f64() * 1e3
    };
    let time_supervised = |src: &String| {
        let t = Instant::now();
        let _ =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| system.predict_source(src)));
        t.elapsed().as_secs_f64() * 1e3
    };
    for r in 0..REPS {
        let src = &sources[r % sources.len()];
        // Alternate which arm goes first so cache warm-up from the
        // first arm does not systematically favour the second.
        if r % 2 == 0 {
            direct.push(time_direct(src));
            supervised.push(time_supervised(src));
        } else {
            supervised.push(time_supervised(src));
            direct.push(time_direct(src));
        }
    }
    direct.sort_by(f64::total_cmp);
    supervised.sort_by(f64::total_cmp);
    let d = percentile(&direct, 0.50);
    let s = percentile(&supervised, 0.50);
    (d, s, s / d.max(1e-9))
}

fn main() {
    let scale = Scale::small();
    let client_counts = typilus_bench::serve_clients(&[1, 2, 4]);
    let per_client = typilus_bench::serve_requests(40);

    let graph = GraphConfig::default();
    let (corpus, data) = prepare(&scale, &graph);
    let config = config_for(&scale, EncoderKind::Graph, LossKind::Typilus, graph);
    let mut system = train_logged("serve", &data, &config);

    // A rotating pool of real corpus sources keeps per-request work
    // representative without dominating the run.
    let sources: Vec<String> = corpus
        .files
        .iter()
        .take(8)
        .map(|f| f.source.clone())
        .collect();
    assert!(!sources.is_empty(), "benchmark corpus is empty");

    eprintln!("[serve] measuring supervision overhead (direct vs catch_unwind) ...");
    let (direct_p50, supervised_p50, overhead) = supervision_overhead(&system, &sources);
    eprintln!(
        "[serve] supervision: direct p50 {direct_p50:.2}ms, supervised p50 \
         {supervised_p50:.2}ms, overhead {overhead:.3}x"
    );

    let server = Server::bind(
        &Endpoint::Tcp("127.0.0.1:0".to_string()),
        ServeOptions::default(),
    )
    .expect("bind ephemeral port");
    let endpoint = server.endpoint().clone();
    let server_thread = std::thread::spawn(move || server.run(&mut system));

    let rows: Vec<Row> = client_counts
        .iter()
        .map(|&clients| {
            eprintln!("[serve] {clients} clients x {per_client} requests...");
            let row = run_clients(&endpoint, &sources, clients, per_client);
            eprintln!(
                "[serve] {clients} clients: p50 {:.2}ms p99 {:.2}ms, {:.0} req/s, {} errors",
                row.p50_ms, row.p99_ms, row.throughput_rps, row.errors
            );
            row
        })
        .collect();

    match Client::connect(&endpoint).and_then(|mut c| c.shutdown()) {
        Ok(Response::Bye) => {}
        other => eprintln!("[serve] unexpected shutdown reply: {other:?}"),
    }
    let summary = match server_thread.join() {
        Ok(s) => s,
        Err(_) => {
            eprintln!("[serve] server thread panicked");
            std::process::exit(1);
        }
    };
    eprintln!(
        "[serve] server: {} requests in {} batches (largest {}), {} errors",
        summary.requests, summary.batches, summary.largest_batch, summary.errors
    );

    let scaling = match (rows.first(), rows.last()) {
        (Some(a), Some(b)) if rows.len() > 1 => b.throughput_rps / a.throughput_rps.max(1e-9),
        _ => 1.0,
    };
    let mut body = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            body.push_str(",\n");
        }
        body.push_str(&format!(
            "    {{\n      \"clients\": {},\n      \"requests\": {},\n      \
             \"errors\": {},\n      \"p50_ms\": {:.3},\n      \"p99_ms\": {:.3},\n      \
             \"wall_s\": {:.3},\n      \"throughput_rps\": {:.1}\n    }}",
            r.clients, r.requests, r.errors, r.p50_ms, r.p99_ms, r.wall_s, r.throughput_rps
        ));
    }
    let cpus = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"requests_per_client\": {per_client},\n  \
         \"sources\": {},\n  \"host_cpus\": {cpus},\n  \
         \"largest_batch\": {},\n  \
         \"supervision_direct_p50_ms\": {direct_p50:.3},\n  \
         \"supervision_supervised_p50_ms\": {supervised_p50:.3},\n  \
         \"supervision_p50_overhead\": {overhead:.3},\n  \"rows\": [\n{body}\n  ],\n  \
         \"throughput_scaling\": {scaling:.3}\n}}\n",
        sources.len(),
        summary.largest_batch
    );
    let out = typilus_bench::bench_out("BENCH_serve.json");
    // lint: allow(D7) — advisory benchmark report, regenerated by rerunning; never read back by the pipeline
    std::fs::write(&out, &json).expect("write report");
    eprintln!("wrote {out}");
    print!("{json}");
}
