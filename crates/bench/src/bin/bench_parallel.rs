//! Measures the data-parallel engine and the pruned L1 kernel, and
//! writes the numbers to `BENCH_parallel.json` (override the path with
//! `TYPILUS_BENCH_OUT`).
//!
//! Two comparisons:
//!   * one training epoch (`train_step_parallel` over every batch) at
//!     1 worker thread vs the auto-detected count;
//!   * the old L1 top-k kernel (full scan + full sort) vs the new
//!     contiguous pruned-heap `ExactIndex::query`.
//!
//! On a single-core host the thread speedup will hover around 1.0x;
//! the numbers are recorded either way.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use typilus::{EncoderKind, GraphConfig, LossKind};
use typilus_bench::{config_for, prepare, Scale};
use typilus_models::{PreparedFile, TypeModel};
use typilus_nn::resolve_threads;
use typilus_space::{l1, ExactIndex, Hit};

/// Runs `f` `reps` times and returns the median wall-clock seconds.
fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

fn epoch_secs(model: &TypeModel, batches: &[Vec<&PreparedFile>], threads: usize) -> f64 {
    let pool = typilus_nn::WorkerPool::new(threads);
    median_secs(3, || {
        for batch in batches {
            std::hint::black_box(model.train_step_parallel(batch, &pool));
        }
    })
}

fn naive_query(points: &[Vec<f32>], query: &[f32], k: usize) -> Vec<Hit> {
    let mut hits: Vec<Hit> = points
        .iter()
        .enumerate()
        .map(|(i, p)| Hit {
            index: i,
            distance: l1(query, p),
        })
        .collect();
    hits.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then(a.index.cmp(&b.index))
    });
    hits.truncate(k);
    hits
}

fn main() {
    let scale = Scale {
        files: 24,
        epochs: 1,
        dim: 16,
        gnn_steps: 3,
        seed: 0,
        common_threshold: 8,
    };
    let graph = GraphConfig::default();
    let (_, data) = prepare(&scale, &graph);
    let config = config_for(&scale, EncoderKind::Graph, LossKind::Typilus, graph);
    let train_graphs = data.graphs_of(&data.split.train);
    let model = TypeModel::new(config.model, &train_graphs);
    let prepared: Vec<PreparedFile> = data.files.iter().map(|f| model.prepare(&f.graph)).collect();
    let batches: Vec<Vec<&PreparedFile>> = data
        .split
        .train
        .chunks(config.batch_size)
        .map(|chunk| chunk.iter().map(|&i| &prepared[i]).collect())
        .collect();

    let auto = resolve_threads(None);
    eprintln!(
        "timing one epoch ({} batches) at 1 and {auto} threads...",
        batches.len()
    );
    let epoch_1 = epoch_secs(&model, &batches, 1);
    let epoch_n = epoch_secs(&model, &batches, auto);

    let n = 20_000;
    let dim = 32;
    let k = 10;
    let mut rng = StdRng::seed_from_u64(1);
    let points: Vec<Vec<f32>> = (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let query: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let index = ExactIndex::new(points.clone());
    assert_eq!(naive_query(&points, &query, k), index.query(&query, k));
    eprintln!("timing L1 top-{k} over {n} x {dim} points...");
    let naive_secs = median_secs(9, || {
        std::hint::black_box(naive_query(&points, &query, k));
    });
    let pruned_secs = median_secs(9, || {
        std::hint::black_box(index.query(&query, k));
    });

    let json = format!(
        "{{\n  \"threads_auto\": {auto},\n  \"epoch_secs_1_thread\": {epoch_1:.6},\n  \
         \"epoch_secs_auto_threads\": {epoch_n:.6},\n  \"epoch_speedup\": {:.3},\n  \
         \"l1_points\": {n},\n  \"l1_dim\": {dim},\n  \"l1_k\": {k},\n  \
         \"l1_naive_secs\": {naive_secs:.9},\n  \"l1_pruned_secs\": {pruned_secs:.9},\n  \
         \"l1_speedup\": {:.3}\n}}\n",
        epoch_1 / epoch_n.max(1e-12),
        naive_secs / pruned_secs.max(1e-12),
    );
    let out = typilus_bench::bench_out("BENCH_parallel.json");
    std::fs::write(&out, &json).expect("write benchmark json");
    print!("{json}");
    eprintln!("wrote {out}");
}
