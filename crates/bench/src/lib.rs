//! # typilus-bench
//!
//! The benchmark harness of the Typilus reproduction: one binary per
//! table and figure of the paper's evaluation (Sec. 6), plus Criterion
//! performance benches for the paper's computational-speed claims.
//!
//! Every binary accepts environment variables to rescale the experiment:
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `TYPILUS_FILES` | corpus size (files) | 150 |
//! | `TYPILUS_EPOCHS` | training epochs | 18 |
//! | `TYPILUS_DIM` | embedding width | 32 |
//! | `TYPILUS_GNN_STEPS` | message-passing steps | 8 |
//! | `TYPILUS_SEED` | global seed | 0 |
//! | `TYPILUS_COMMON` | common-type threshold | 15 |
//!
//! Absolute numbers differ from the paper (different corpus, laptop
//! scale); the *shapes* — ranking of models, rare-vs-common gaps,
//! ablation ordering — are the reproduction targets (see
//! `EXPERIMENTS.md`).

#![warn(missing_docs)]

use typilus::{
    train, EncoderKind, GraphConfig, LossKind, ModelConfig, PreparedCorpus, TrainedSystem,
    TypilusConfig,
};
use typilus_corpus::{generate, Corpus, CorpusConfig};

/// Scale knobs of one experiment run.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Corpus size in files.
    pub files: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Embedding width.
    pub dim: usize,
    /// GNN message-passing steps.
    pub gnn_steps: usize,
    /// Global seed.
    pub seed: u64,
    /// Common-type threshold for Table 2 style breakdowns.
    pub common_threshold: usize,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Output path for a benchmark's JSON report: `TYPILUS_BENCH_OUT`, or
/// `default` when unset. Bench binaries read the environment through
/// here (a designated config module) per lint rule `D3`.
pub fn bench_out(default: &str) -> String {
    std::env::var("TYPILUS_BENCH_OUT").unwrap_or_else(|_| default.to_string())
}

/// Thread count for pool benchmarks: `TYPILUS_BENCH_THREADS`, or
/// `default` when unset or unparsable.
pub fn bench_threads(default: usize) -> usize {
    env_usize("TYPILUS_BENCH_THREADS", default)
}

/// Marker counts for the TypeSpace index benchmark (`bench_space`):
/// `TYPILUS_SPACE_SCALES` as a comma-separated list (e.g.
/// `"10000,100000"`), or `default` when unset. Unparsable entries are
/// skipped.
pub fn space_scales(default: &[usize]) -> Vec<usize> {
    match std::env::var("TYPILUS_SPACE_SCALES") {
        Ok(raw) => {
            let scales: Vec<usize> = raw
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect();
            if scales.is_empty() {
                default.to_vec()
            } else {
                scales
            }
        }
        Err(_) => default.to_vec(),
    }
}

/// Client counts for the serve benchmark (`bench_serve`):
/// `TYPILUS_SERVE_CLIENTS` as a comma-separated list (e.g. `"1,4,8"`),
/// or `default` when unset. Unparsable entries are skipped.
pub fn serve_clients(default: &[usize]) -> Vec<usize> {
    match std::env::var("TYPILUS_SERVE_CLIENTS") {
        Ok(raw) => {
            let counts: Vec<usize> = raw
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&c| c > 0)
                .collect();
            if counts.is_empty() {
                default.to_vec()
            } else {
                counts
            }
        }
        Err(_) => default.to_vec(),
    }
}

/// Requests each serve-benchmark client sends:
/// `TYPILUS_SERVE_REQUESTS`, or `default` when unset or unparsable.
pub fn serve_requests(default: usize) -> usize {
    env_usize("TYPILUS_SERVE_REQUESTS", default)
}

impl Scale {
    /// Reads the scale from the environment (see crate docs).
    pub fn from_env() -> Scale {
        Scale {
            files: env_usize("TYPILUS_FILES", 150),
            epochs: env_usize("TYPILUS_EPOCHS", 18),
            dim: env_usize("TYPILUS_DIM", 32),
            gnn_steps: env_usize("TYPILUS_GNN_STEPS", 8),
            seed: env_usize("TYPILUS_SEED", 0) as u64,
            common_threshold: env_usize("TYPILUS_COMMON", 15),
        }
    }

    /// A small scale for smoke tests.
    pub fn small() -> Scale {
        Scale {
            files: 30,
            epochs: 5,
            dim: 16,
            gnn_steps: 3,
            seed: 0,
            common_threshold: 8,
        }
    }
}

/// Generates the benchmark corpus and prepares it under a graph config.
pub fn prepare(scale: &Scale, graph: &GraphConfig) -> (Corpus, PreparedCorpus) {
    let corpus = generate(&CorpusConfig {
        files: scale.files,
        seed: scale.seed,
        ..CorpusConfig::default()
    });
    let data = PreparedCorpus::from_corpus(&corpus, graph, scale.seed);
    (corpus, data)
}

/// The pipeline config for an encoder/loss pair at a given scale.
pub fn config_for(
    scale: &Scale,
    encoder: EncoderKind,
    loss: LossKind,
    graph: GraphConfig,
) -> TypilusConfig {
    TypilusConfig {
        model: ModelConfig {
            encoder,
            loss,
            dim: scale.dim,
            gnn_steps: scale.gnn_steps,
            min_subtoken_count: 2,
            seed: scale.seed,
            ..ModelConfig::default()
        },
        graph,
        epochs: scale.epochs,
        batch_size: 8,
        lr: 0.015,
        common_threshold: scale.common_threshold,
        seed: scale.seed,
        ..TypilusConfig::default()
    }
}

/// Trains one system, logging per-epoch progress to stderr.
pub fn train_logged(label: &str, data: &PreparedCorpus, config: &TypilusConfig) -> TrainedSystem {
    eprintln!("[{label}] training ({} epochs)...", config.epochs);
    let system = train(data, config);
    if let (Some(first), Some(last)) = (system.epochs.first(), system.epochs.last()) {
        eprintln!(
            "[{label}] loss {:.4} -> {:.4} ({:.1}s/epoch)",
            first.mean_loss, last.mean_loss, last.seconds
        );
    }
    system
}

/// The paper's name of an encoder/loss combination (Table 2 rows).
pub fn variant_name(encoder: EncoderKind, loss: LossKind) -> &'static str {
    match (encoder, loss) {
        (EncoderKind::Seq, LossKind::Class) => "Seq2Class",
        (EncoderKind::Seq, LossKind::Space) => "Seq2Space",
        (EncoderKind::Seq, LossKind::Typilus) => "Seq-Typilus",
        (EncoderKind::Path, LossKind::Class) => "Path2Class",
        (EncoderKind::Path, LossKind::Space) => "Path2Space",
        (EncoderKind::Path, LossKind::Typilus) => "Path-Typilus",
        (EncoderKind::Graph, LossKind::Class) => "Graph2Class",
        (EncoderKind::Graph, LossKind::Space) => "Graph2Space",
        (EncoderKind::Graph, LossKind::Typilus) => "Typilus",
        (EncoderKind::Transformer, LossKind::Class) => "Transformer2Class",
        (EncoderKind::Transformer, LossKind::Space) => "Transformer2Space",
        (EncoderKind::Transformer, LossKind::Typilus) => "Transformer-Typilus",
    }
}

/// All nine Table 2 variants in the paper's row order.
pub fn all_variants() -> Vec<(EncoderKind, LossKind)> {
    let encoders = [EncoderKind::Seq, EncoderKind::Path, EncoderKind::Graph];
    let losses = [LossKind::Class, LossKind::Space, LossKind::Typilus];
    let mut out = Vec::new();
    for e in encoders {
        for l in losses {
            out.push((e, l));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_env_defaults() {
        let s = Scale::from_env();
        assert!(s.files > 0 && s.epochs > 0 && s.dim > 0);
    }

    #[test]
    fn nine_variants_in_paper_order() {
        let v = all_variants();
        assert_eq!(v.len(), 9);
        assert_eq!(variant_name(v[0].0, v[0].1), "Seq2Class");
        assert_eq!(variant_name(v[8].0, v[8].1), "Typilus");
    }

    #[test]
    fn smoke_prepare_and_train() {
        let scale = Scale {
            files: 10,
            epochs: 1,
            dim: 8,
            gnn_steps: 2,
            seed: 0,
            common_threshold: 5,
        };
        let graph = GraphConfig::default();
        let (_, data) = prepare(&scale, &graph);
        let config = config_for(&scale, EncoderKind::Graph, LossKind::Typilus, graph);
        let system = train_logged("smoke", &data, &config);
        assert!(!system.epochs.is_empty());
    }
}

/// Writes `rows` as CSV to `$TYPILUS_CSV_DIR/<name>.csv` when that
/// environment variable is set; silently does nothing otherwise. Used by
/// the figure binaries so plots can be regenerated from machine-readable
/// output.
pub fn maybe_write_csv(name: &str, header: &str, rows: &[String]) {
    let Ok(dir) = std::env::var("TYPILUS_CSV_DIR") else {
        return;
    };
    let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
    let mut content = String::with_capacity(rows.len() * 32 + header.len() + 1);
    content.push_str(header);
    content.push('\n');
    for r in rows {
        content.push_str(r);
        content.push('\n');
    }
    // lint: allow(D7) — advisory CSV side output, regenerated by rerunning the bench; a torn file cannot corrupt any pipeline artifact
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, content)) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}

#[cfg(test)]
mod csv_tests {
    use super::maybe_write_csv;

    #[test]
    fn csv_written_when_dir_set() {
        let dir = std::env::temp_dir().join(format!("typilus_csv_{}", std::process::id()));
        std::env::set_var("TYPILUS_CSV_DIR", &dir);
        maybe_write_csv("unit", "a,b", &["1,2".to_string(), "3,4".to_string()]);
        let content = std::fs::read_to_string(dir.join("unit.csv")).expect("file written");
        assert_eq!(content, "a,b\n1,2\n3,4\n");
        std::env::remove_var("TYPILUS_CSV_DIR");
        std::fs::remove_dir_all(&dir).ok();
    }
}
