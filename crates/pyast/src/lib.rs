//! # typilus-pyast
//!
//! A lexer, parser, AST and symbol table for a substantial subset of
//! Python 3, built for the Rust reproduction of *Typilus: Neural Type
//! Hints* (Allamanis et al., PLDI 2020). It plays the role of CPython's
//! `typed_ast` and `symtable` modules in the original system: everything
//! the program-graph builder, the corpus tooling and the optional type
//! checker need to see about a source file.
//!
//! ## Quick example
//!
//! ```
//! use typilus_pyast::{parse, SymbolTable};
//!
//! # fn main() -> Result<(), typilus_pyast::ParseError> {
//! let parsed = parse("def add(a: int, b: int) -> int:\n    return a + b\n")?;
//! let table = SymbolTable::build(&parsed.module);
//! let annotated: Vec<_> = table
//!     .annotatable_symbols()
//!     .filter(|s| s.annotation.is_some())
//!     .map(|s| (s.name.as_str(), s.annotation.as_deref().unwrap()))
//!     .collect();
//! assert!(annotated.contains(&("a", "int")));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod span;
pub mod symtable;
pub mod token;
pub mod visit;

pub use ast::{Expr, ExprKind, Module, NodeId, NodeMeta, Param, Stmt, StmtKind};
pub use error::{ParseError, ParseErrorKind};
pub use lexer::tokenize;
pub use parser::{parse, Parsed};
pub use span::{Pos, Span};
pub use symtable::{Scope, ScopeId, ScopeKind, Symbol, SymbolId, SymbolKind, SymbolTable};
pub use token::{Token, TokenKind};
