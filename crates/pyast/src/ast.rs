//! Abstract syntax tree for the Python subset.
//!
//! Every statement and expression node carries a [`NodeMeta`] with a unique
//! [`NodeId`] (unique within one parsed [`Module`]) and a source [`Span`].
//! The graph builder uses node identities to create non-terminal graph
//! nodes, and spans to associate tokens with the AST nodes that own them.

use crate::span::Span;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an AST node, unique within a single [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identity and location shared by all AST nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeMeta {
    /// Unique id of this node within its module.
    pub id: NodeId,
    /// Source region the node covers.
    pub span: Span,
}

/// A parsed source file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Top-level statements.
    pub body: Vec<Stmt>,
    /// Metadata of the module node itself.
    pub meta: NodeMeta,
    /// Number of AST nodes allocated while parsing this module; all node
    /// ids are in `0..node_count`.
    pub node_count: u32,
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stmt {
    /// Node identity and span.
    pub meta: NodeMeta,
    /// Statement payload.
    pub kind: StmtKind,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Span of the name token.
    pub name_span: Span,
    /// Optional type annotation.
    pub annotation: Option<Expr>,
    /// Optional default value.
    pub default: Option<Expr>,
    /// Positional / *args / **kwargs.
    pub kind: ParamKind,
}

/// The calling convention of a parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParamKind {
    /// Ordinary positional-or-keyword parameter.
    Plain,
    /// `*args` variadic positional parameter.
    VarArgs,
    /// `**kwargs` variadic keyword parameter.
    KwArgs,
    /// Keyword-only parameter (declared after a bare `*`).
    KwOnly,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionDef {
    /// Function name.
    pub name: String,
    /// Span of the name token.
    pub name_span: Span,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Optional return annotation (the expression after `->`).
    pub returns: Option<Expr>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Decorator expressions, outermost first.
    pub decorators: Vec<Expr>,
    /// Whether declared with `async def`.
    pub is_async: bool,
}

/// A class definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassDef {
    /// Class name.
    pub name: String,
    /// Span of the name token.
    pub name_span: Span,
    /// Base class expressions.
    pub bases: Vec<Expr>,
    /// Keyword arguments in the class header (e.g. `metaclass=...`).
    pub keywords: Vec<Keyword>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Decorator expressions, outermost first.
    pub decorators: Vec<Expr>,
}

/// An `except` clause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExceptHandler {
    /// The exception type expression, if present.
    pub exc_type: Option<Expr>,
    /// The bound name (`except E as name`), if present.
    pub name: Option<String>,
    /// Span of the bound name token, if present.
    pub name_span: Option<Span>,
    /// Handler body.
    pub body: Vec<Stmt>,
}

/// An import alias: `name` or `name as asname`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Alias {
    /// Dotted module or symbol path being imported.
    pub name: String,
    /// Optional rebinding name.
    pub asname: Option<String>,
    /// Span of the binding occurrence (the `asname` token if present,
    /// otherwise the first component of `name`).
    pub bind_span: Span,
}

/// One `with` item: a context expression and an optional `as` target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WithItem {
    /// The context-manager expression.
    pub context: Expr,
    /// Optional target bound with `as`.
    pub target: Option<Expr>,
}

/// Statement payloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StmtKind {
    /// `def` / `async def`.
    FunctionDef(FunctionDef),
    /// `class`.
    ClassDef(ClassDef),
    /// `return`, with an optional value.
    Return(Option<Expr>),
    /// Plain assignment with one or more targets: `a = b = value`.
    Assign {
        /// Assignment targets, left to right.
        targets: Vec<Expr>,
        /// The assigned value.
        value: Expr,
    },
    /// Augmented assignment such as `a += b`; `op` is the operator text
    /// without the trailing `=` (e.g. `"+"`).
    AugAssign {
        /// Target of the update.
        target: Expr,
        /// Operator, e.g. `+`, `-`, `//`.
        op: String,
        /// Right-hand side.
        value: Expr,
    },
    /// Annotated assignment: `x: T` or `x: T = value`.
    AnnAssign {
        /// Target being annotated.
        target: Expr,
        /// The annotation expression.
        annotation: Expr,
        /// Optional assigned value.
        value: Option<Expr>,
    },
    /// `for target in iter: body [else: orelse]`.
    For {
        /// Loop target.
        target: Expr,
        /// Iterated expression.
        iter: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// `else` clause body.
        orelse: Vec<Stmt>,
        /// Whether declared with `async for`.
        is_async: bool,
    },
    /// `while test: body [else: orelse]`.
    While {
        /// Loop condition.
        test: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// `else` clause body.
        orelse: Vec<Stmt>,
    },
    /// `if test: body [elif/else: orelse]`.
    If {
        /// Condition.
        test: Expr,
        /// Then-branch.
        body: Vec<Stmt>,
        /// Else-branch (an `elif` parses as a nested `If` here).
        orelse: Vec<Stmt>,
    },
    /// `with item, ...: body`.
    With {
        /// Context items.
        items: Vec<WithItem>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `raise [exc [from cause]]`.
    Raise {
        /// Raised exception.
        exc: Option<Expr>,
        /// `from` cause.
        cause: Option<Expr>,
    },
    /// `try` statement.
    Try {
        /// Protected body.
        body: Vec<Stmt>,
        /// `except` clauses.
        handlers: Vec<ExceptHandler>,
        /// `else` clause body.
        orelse: Vec<Stmt>,
        /// `finally` clause body.
        finalbody: Vec<Stmt>,
    },
    /// `assert test [, msg]`.
    Assert {
        /// The asserted condition.
        test: Expr,
        /// Optional message.
        msg: Option<Expr>,
    },
    /// `import a.b as c, d`.
    Import(Vec<Alias>),
    /// `from module import names` (`module` empty for relative-only).
    ImportFrom {
        /// Source module path.
        module: String,
        /// Imported names (a single `*` alias for star-imports).
        names: Vec<Alias>,
        /// Number of leading dots (relative import level).
        level: u32,
    },
    /// `global names`.
    Global(Vec<String>),
    /// `nonlocal names`.
    Nonlocal(Vec<String>),
    /// A bare expression used as a statement.
    Expr(Expr),
    /// `pass`.
    Pass,
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// `del targets`.
    Delete(Vec<Expr>),
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Expr {
    /// Node identity and span.
    pub meta: NodeMeta,
    /// Expression payload.
    pub kind: ExprKind,
}

/// A keyword argument at a call site: `name=value` or `**value`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Keyword {
    /// Argument name; `None` for `**value` splats.
    pub arg: Option<String>,
    /// Argument value.
    pub value: Expr,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `//`
    FloorDiv,
    /// `%`
    Mod,
    /// `**`
    Pow,
    /// `<<`
    LShift,
    /// `>>`
    RShift,
    /// `|`
    BitOr,
    /// `&`
    BitAnd,
    /// `^`
    BitXor,
    /// `@` (matrix multiplication)
    MatMul,
}

impl BinOp {
    /// The operator's surface syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::FloorDiv => "//",
            BinOp::Mod => "%",
            BinOp::Pow => "**",
            BinOp::LShift => "<<",
            BinOp::RShift => ">>",
            BinOp::BitOr => "|",
            BinOp::BitAnd => "&",
            BinOp::BitXor => "^",
            BinOp::MatMul => "@",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnaryOp {
    /// `-`
    Neg,
    /// `+`
    Pos,
    /// `~`
    Invert,
    /// `not`
    Not,
}

/// Boolean combinators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BoolOp {
    /// `and`
    And,
    /// `or`
    Or,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `is`
    Is,
    /// `is not`
    IsNot,
    /// `in`
    In,
    /// `not in`
    NotIn,
}

impl CmpOp {
    /// The operator's surface syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::NotEq => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Is => "is",
            CmpOp::IsNot => "is not",
            CmpOp::In => "in",
            CmpOp::NotIn => "not in",
        }
    }
}

/// The flavour of a comprehension expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompKind {
    /// `[x for ...]`
    List,
    /// `{x for ...}`
    Set,
    /// `{k: v for ...}`
    Dict,
    /// `(x for ...)`
    Generator,
}

/// One `for ... in ... [if ...]` clause of a comprehension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompClause {
    /// The bound target.
    pub target: Expr,
    /// The iterated expression.
    pub iter: Expr,
    /// Filtering conditions.
    pub ifs: Vec<Expr>,
}

/// Expression payloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExprKind {
    /// An identifier reference.
    Name(String),
    /// A numeric literal (original lexeme preserved).
    Num(String),
    /// A string literal (original lexeme, quotes included).
    Str(String),
    /// `True` / `False`.
    Bool(bool),
    /// `None`.
    NoneLit,
    /// `...`
    EllipsisLit,
    /// Tuple display or bare comma expression.
    Tuple(Vec<Expr>),
    /// List display.
    List(Vec<Expr>),
    /// Set display.
    Set(Vec<Expr>),
    /// Dict display. A `None` key marks a `**splat` entry.
    Dict {
        /// Keys, aligned with `values`.
        keys: Vec<Option<Expr>>,
        /// Values.
        values: Vec<Expr>,
    },
    /// Binary operation.
    BinOp {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation.
    UnaryOp {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// `and` / `or` chain.
    BoolOp {
        /// Combinator.
        op: BoolOp,
        /// Operands (two or more).
        values: Vec<Expr>,
    },
    /// Chained comparison: `left op0 c0 op1 c1 ...`.
    Compare {
        /// First operand.
        left: Box<Expr>,
        /// Operators.
        ops: Vec<CmpOp>,
        /// Subsequent operands, aligned with `ops`.
        comparators: Vec<Expr>,
    },
    /// Function or constructor call.
    Call {
        /// Callee.
        func: Box<Expr>,
        /// Positional arguments (including `*splat` as `Starred`).
        args: Vec<Expr>,
        /// Keyword arguments.
        keywords: Vec<Keyword>,
    },
    /// Attribute access `value.attr`.
    Attribute {
        /// Receiver.
        value: Box<Expr>,
        /// Attribute name.
        attr: String,
        /// Span of the attribute name token.
        attr_span: Span,
    },
    /// Subscription `value[index]`.
    Subscript {
        /// Receiver.
        value: Box<Expr>,
        /// Index expression (possibly a [`ExprKind::Slice`] or tuple).
        index: Box<Expr>,
    },
    /// A slice `lower:upper[:step]` inside a subscription.
    Slice {
        /// Lower bound.
        lower: Option<Box<Expr>>,
        /// Upper bound.
        upper: Option<Box<Expr>>,
        /// Step.
        step: Option<Box<Expr>>,
    },
    /// `lambda params: body`.
    Lambda {
        /// Parameters (annotations are always absent in lambdas).
        params: Vec<Param>,
        /// Body expression.
        body: Box<Expr>,
    },
    /// Conditional expression `body if test else orelse`.
    IfExp {
        /// Condition.
        test: Box<Expr>,
        /// Value when true.
        body: Box<Expr>,
        /// Value when false.
        orelse: Box<Expr>,
    },
    /// `*expr` in a call or display.
    Starred(Box<Expr>),
    /// A comprehension of any flavour.
    Comprehension {
        /// Which flavour of comprehension.
        kind: CompKind,
        /// The produced element (key for dict comprehensions).
        element: Box<Expr>,
        /// The produced value for dict comprehensions.
        value: Option<Box<Expr>>,
        /// `for`/`if` clauses.
        clauses: Vec<CompClause>,
    },
    /// `yield [value]`.
    Yield(Option<Box<Expr>>),
    /// `yield from value`.
    YieldFrom(Box<Expr>),
    /// `await value`.
    Await(Box<Expr>),
    /// `target := value`.
    Walrus {
        /// Bound name.
        target: Box<Expr>,
        /// Assigned value.
        value: Box<Expr>,
    },
    /// Formatted string; holds the raw lexeme. Interpolations are not
    /// analysed (treated as an opaque string value).
    FString(String),
}

impl Expr {
    /// Renders an annotation-like expression back to compact source text,
    /// e.g. `Dict[str, List[int]]` or `torch.Tensor`. Used to hand
    /// annotations to the type crate without a dependency in either
    /// direction. Returns `None` for expressions that cannot appear in a
    /// (supported) type annotation.
    pub fn annotation_text(&self) -> Option<String> {
        match &self.kind {
            ExprKind::Name(n) => Some(n.clone()),
            ExprKind::NoneLit => Some("None".to_string()),
            ExprKind::EllipsisLit => Some("...".to_string()),
            ExprKind::Str(s) => {
                // Forward-reference annotation: 'Foo' -> Foo.
                let trimmed = s.trim_matches(|c| c == '\'' || c == '"');
                Some(trimmed.to_string())
            }
            ExprKind::Attribute { value, attr, .. } => {
                Some(format!("{}.{}", value.annotation_text()?, attr))
            }
            ExprKind::Subscript { value, index } => {
                let base = value.annotation_text()?;
                let inner = match &index.kind {
                    ExprKind::Tuple(items) => {
                        let parts: Option<Vec<String>> =
                            items.iter().map(|e| e.annotation_text()).collect();
                        parts?.join(", ")
                    }
                    _ => index.annotation_text()?,
                };
                Some(format!("{base}[{inner}]"))
            }
            ExprKind::Tuple(items) => {
                let parts: Option<Vec<String>> =
                    items.iter().map(|e| e.annotation_text()).collect();
                Some(parts?.join(", "))
            }
            ExprKind::List(items) => {
                // Callable[[A, B], R] argument lists.
                let parts: Option<Vec<String>> =
                    items.iter().map(|e| e.annotation_text()).collect();
                Some(format!("[{}]", parts?.join(", ")))
            }
            ExprKind::BinOp {
                left,
                op: BinOp::BitOr,
                right,
            } => {
                // PEP 604 unions: `int | None`.
                Some(format!(
                    "{} | {}",
                    left.annotation_text()?,
                    right.annotation_text()?
                ))
            }
            _ => None,
        }
    }

    /// Whether the expression is a plain identifier.
    pub fn as_name(&self) -> Option<&str> {
        match &self.kind {
            ExprKind::Name(n) => Some(n),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Pos;

    fn expr(kind: ExprKind) -> Expr {
        Expr {
            meta: NodeMeta {
                id: NodeId(0),
                span: Span::point(Pos::START),
            },
            kind,
        }
    }

    #[test]
    fn annotation_text_simple() {
        assert_eq!(
            expr(ExprKind::Name("int".into()))
                .annotation_text()
                .unwrap(),
            "int"
        );
        assert_eq!(expr(ExprKind::NoneLit).annotation_text().unwrap(), "None");
    }

    #[test]
    fn annotation_text_generic() {
        let inner = expr(ExprKind::Tuple(vec![
            expr(ExprKind::Name("str".into())),
            expr(ExprKind::Name("int".into())),
        ]));
        let sub = expr(ExprKind::Subscript {
            value: Box::new(expr(ExprKind::Name("Dict".into()))),
            index: Box::new(inner),
        });
        assert_eq!(sub.annotation_text().unwrap(), "Dict[str, int]");
    }

    #[test]
    fn annotation_text_dotted() {
        let attr = expr(ExprKind::Attribute {
            value: Box::new(expr(ExprKind::Name("torch".into()))),
            attr: "Tensor".into(),
            attr_span: Span::point(Pos::START),
        });
        assert_eq!(attr.annotation_text().unwrap(), "torch.Tensor");
    }

    #[test]
    fn annotation_text_forward_reference() {
        assert_eq!(
            expr(ExprKind::Str("'Foo'".into()))
                .annotation_text()
                .unwrap(),
            "Foo"
        );
    }

    #[test]
    fn annotation_text_rejects_calls() {
        let call = expr(ExprKind::Call {
            func: Box::new(expr(ExprKind::Name("f".into()))),
            args: vec![],
            keywords: vec![],
        });
        assert_eq!(call.annotation_text(), None);
    }

    #[test]
    fn operator_symbols() {
        assert_eq!(BinOp::FloorDiv.symbol(), "//");
        assert_eq!(CmpOp::NotIn.symbol(), "not in");
    }
}
