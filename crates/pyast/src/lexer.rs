//! A hand-written lexer for the Python subset.
//!
//! The lexer performs Python's layout analysis: it tracks indentation and
//! emits synthetic [`TokenKind::Indent`] / [`TokenKind::Dedent`] /
//! [`TokenKind::Newline`] tokens, suppressing them inside bracketed
//! expressions, exactly as CPython's tokenizer does. Comments and blank
//! lines are skipped.

use crate::error::{ParseError, ParseErrorKind};
use crate::span::{Pos, Span};
use crate::token::{Token, TokenKind};

/// Tokenises `source` into a vector of tokens ending with
/// [`TokenKind::EndOfFile`].
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input: inconsistent dedents,
/// unterminated strings, or characters outside the supported subset.
pub fn tokenize(source: &str) -> Result<Vec<Token>, ParseError> {
    Lexer::new(source).run()
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
    indents: Vec<u32>,
    paren_depth: u32,
    tokens: Vec<Token>,
    at_line_start: bool,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 0,
            indents: vec![0],
            paren_depth: 0,
            tokens: Vec::new(),
            at_line_start: true,
        }
    }

    fn here(&self) -> Pos {
        Pos::new(self.pos, self.line, self.col)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn peek3(&self) -> Option<u8> {
        self.bytes.get(self.pos + 2).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 0;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn error(&self, kind: ParseErrorKind) -> ParseError {
        ParseError::new(kind, Span::point(self.here()))
    }

    fn push(&mut self, kind: TokenKind, start: Pos) {
        let span = Span::new(start, self.here());
        let lexeme = if kind.is_layout() {
            String::new()
        } else {
            span.text(self.src).to_string()
        };
        self.tokens.push(Token::new(kind, lexeme, span));
    }

    fn push_empty(&mut self, kind: TokenKind) {
        let p = self.here();
        self.tokens.push(Token::new(kind, "", Span::point(p)));
    }

    fn run(mut self) -> Result<Vec<Token>, ParseError> {
        while self.pos < self.bytes.len() {
            if self.at_line_start && self.paren_depth == 0 {
                self.handle_indentation()?;
                if self.pos >= self.bytes.len() {
                    break;
                }
            }
            let b = match self.peek() {
                Some(b) => b,
                None => break,
            };
            match b {
                b'\n' => {
                    self.bump();
                    if self.paren_depth == 0 {
                        // Collapse runs of newlines into one logical newline,
                        // and emit none at the very start of a suite.
                        if matches!(
                            self.tokens.last().map(|t| t.kind),
                            Some(k) if !k.is_layout()
                        ) {
                            self.push_empty(TokenKind::Newline);
                        }
                        self.at_line_start = true;
                    }
                }
                b'\r' => {
                    self.bump();
                }
                b' ' | b'\t' => {
                    self.bump();
                }
                b'#' => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                b'\\' if self.peek2() == Some(b'\n') => {
                    // Explicit line continuation.
                    self.bump();
                    self.bump();
                }
                b'"' | b'\'' => self.string(None)?,
                b'0'..=b'9' => self.number()?,
                b'.' if matches!(self.peek2(), Some(b'0'..=b'9')) => self.number()?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.name_or_prefixed_string()?,
                _ => self.operator()?,
            }
        }
        // Close the file: final newline and any open indents.
        if matches!(self.tokens.last().map(|t| t.kind), Some(k) if !k.is_layout()) {
            self.push_empty(TokenKind::Newline);
        }
        while self.indents.len() > 1 {
            self.indents.pop();
            self.push_empty(TokenKind::Dedent);
        }
        self.push_empty(TokenKind::EndOfFile);
        Ok(self.tokens)
    }

    /// Measures leading whitespace on a fresh line and emits indent/dedent
    /// tokens. Blank lines and comment-only lines produce no layout tokens.
    fn handle_indentation(&mut self) -> Result<(), ParseError> {
        loop {
            let line_start = self.pos;
            let mut width: u32 = 0;
            while let Some(c) = self.peek() {
                match c {
                    b' ' => {
                        width += 1;
                        self.bump();
                    }
                    b'\t' => {
                        width += 8 - width % 8;
                        self.bump();
                    }
                    _ => break,
                }
            }
            match self.peek() {
                Some(b'\n') => {
                    self.bump();
                    continue; // blank line
                }
                Some(b'\r') => {
                    self.bump();
                    continue;
                }
                Some(b'#') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                    continue;
                }
                None => {
                    let _ = line_start;
                    return Ok(());
                }
                _ => {}
            }
            let current = *self.indents.last().expect("indent stack never empty");
            if width > current {
                self.indents.push(width);
                self.push_empty(TokenKind::Indent);
            } else {
                while width < *self.indents.last().expect("indent stack never empty") {
                    self.indents.pop();
                    self.push_empty(TokenKind::Dedent);
                }
                if width != *self.indents.last().expect("indent stack never empty") {
                    return Err(self.error(ParseErrorKind::InconsistentIndentation));
                }
            }
            self.at_line_start = false;
            return Ok(());
        }
    }

    fn name_or_prefixed_string(&mut self) -> Result<(), ParseError> {
        let start = self.here();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let text = &self.src[start.offset..self.pos];
        // String prefixes: r, b, f, u and two-letter combinations.
        if text.len() <= 2
            && text
                .bytes()
                .all(|c| matches!(c.to_ascii_lowercase(), b'r' | b'b' | b'f' | b'u'))
            && matches!(self.peek(), Some(b'"') | Some(b'\''))
        {
            return self.string(Some(start));
        }
        let kind = TokenKind::keyword(text).unwrap_or(TokenKind::Name);
        self.push(kind, start);
        Ok(())
    }

    fn number(&mut self) -> Result<(), ParseError> {
        let start = self.here();
        // Hex / octal / binary literals.
        if self.peek() == Some(b'0')
            && matches!(
                self.peek2().map(|c| c.to_ascii_lowercase()),
                Some(b'x') | Some(b'o') | Some(b'b')
            )
        {
            self.bump();
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == b'_' {
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Number, start);
            return Ok(());
        }
        let mut seen_dot = false;
        let mut seen_exp = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' | b'_' => {
                    self.bump();
                }
                b'.' if !seen_dot && !seen_exp => {
                    // Don't swallow `1..2` or attribute access on an int.
                    if self.peek2() == Some(b'.') {
                        break;
                    }
                    seen_dot = true;
                    self.bump();
                }
                b'e' | b'E' if !seen_exp => {
                    let next = self.peek2();
                    if matches!(next, Some(b'0'..=b'9') | Some(b'+') | Some(b'-')) {
                        seen_exp = true;
                        self.bump();
                        if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                            self.bump();
                        }
                    } else {
                        break;
                    }
                }
                b'j' | b'J' => {
                    self.bump();
                    break;
                }
                _ => break,
            }
        }
        self.push(TokenKind::Number, start);
        Ok(())
    }

    fn string(&mut self, prefix_start: Option<Pos>) -> Result<(), ParseError> {
        let start = prefix_start.unwrap_or_else(|| self.here());
        let quote = self.bump().expect("string called at a quote");
        let triple = self.peek() == Some(quote) && self.peek2() == Some(quote);
        if triple {
            self.bump();
            self.bump();
            loop {
                match self.peek() {
                    None => return Err(self.error(ParseErrorKind::UnterminatedString)),
                    Some(c)
                        if c == quote
                            && self.peek2() == Some(quote)
                            && self.peek3() == Some(quote) =>
                    {
                        self.bump();
                        self.bump();
                        self.bump();
                        break;
                    }
                    Some(b'\\') => {
                        self.bump();
                        self.bump();
                    }
                    _ => {
                        self.bump();
                    }
                }
            }
        } else {
            loop {
                match self.peek() {
                    None | Some(b'\n') => {
                        return Err(self.error(ParseErrorKind::UnterminatedString))
                    }
                    Some(c) if c == quote => {
                        self.bump();
                        break;
                    }
                    Some(b'\\') => {
                        self.bump();
                        self.bump();
                    }
                    _ => {
                        self.bump();
                    }
                }
            }
        }
        self.push(TokenKind::Str, start);
        Ok(())
    }

    fn operator(&mut self) -> Result<(), ParseError> {
        use TokenKind::*;
        let start = self.here();
        let b = self.bump().expect("operator called with input remaining");
        let two = self.peek();
        let kind = match (b, two) {
            (b'(', _) => {
                self.paren_depth += 1;
                LParen
            }
            (b')', _) => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                RParen
            }
            (b'[', _) => {
                self.paren_depth += 1;
                LBracket
            }
            (b']', _) => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                RBracket
            }
            (b'{', _) => {
                self.paren_depth += 1;
                LBrace
            }
            (b'}', _) => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                RBrace
            }
            (b',', _) => Comma,
            (b';', _) => Semicolon,
            (b'~', _) => Tilde,
            (b'@', Some(b'=')) => {
                self.bump();
                AugAssign
            }
            (b'@', _) => At,
            (b'.', Some(b'.')) if self.peek2() == Some(b'.') => {
                self.bump();
                self.bump();
                Ellipsis
            }
            (b'.', _) => Dot,
            (b':', Some(b'=')) => {
                self.bump();
                Walrus
            }
            (b':', _) => Colon,
            (b'-', Some(b'>')) => {
                self.bump();
                Arrow
            }
            (b'=', Some(b'=')) => {
                self.bump();
                EqEq
            }
            (b'=', _) => Assign,
            (b'!', Some(b'=')) => {
                self.bump();
                NotEq
            }
            (b'<', Some(b'=')) => {
                self.bump();
                Le
            }
            (b'<', Some(b'<')) => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    AugAssign
                } else {
                    LShift
                }
            }
            (b'<', _) => Lt,
            (b'>', Some(b'=')) => {
                self.bump();
                Ge
            }
            (b'>', Some(b'>')) => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    AugAssign
                } else {
                    RShift
                }
            }
            (b'>', _) => Gt,
            (b'+', Some(b'=')) => {
                self.bump();
                AugAssign
            }
            (b'+', _) => Plus,
            (b'-', Some(b'=')) => {
                self.bump();
                AugAssign
            }
            (b'-', _) => Minus,
            (b'*', Some(b'*')) => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    AugAssign
                } else {
                    DoubleStar
                }
            }
            (b'*', Some(b'=')) => {
                self.bump();
                AugAssign
            }
            (b'*', _) => Star,
            (b'/', Some(b'/')) => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    AugAssign
                } else {
                    DoubleSlash
                }
            }
            (b'/', Some(b'=')) => {
                self.bump();
                AugAssign
            }
            (b'/', _) => Slash,
            (b'%', Some(b'=')) => {
                self.bump();
                AugAssign
            }
            (b'%', _) => Percent,
            (b'|', Some(b'=')) => {
                self.bump();
                AugAssign
            }
            (b'|', _) => Pipe,
            (b'&', Some(b'=')) => {
                self.bump();
                AugAssign
            }
            (b'&', _) => Amp,
            (b'^', Some(b'=')) => {
                self.bump();
                AugAssign
            }
            (b'^', _) => Caret,
            _ => return Err(self.error(ParseErrorKind::UnexpectedChar(b as char))),
        };
        self.push(kind, start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_assignment() {
        use TokenKind::*;
        assert_eq!(
            kinds("x = 1\n"),
            vec![Name, Assign, Number, Newline, EndOfFile]
        );
    }

    #[test]
    fn indentation_blocks() {
        use TokenKind::*;
        let src = "def f():\n    return 1\n";
        assert_eq!(
            kinds(src),
            vec![
                KwDef, Name, LParen, RParen, Colon, Newline, Indent, KwReturn, Number, Newline,
                Dedent, EndOfFile
            ]
        );
    }

    #[test]
    fn nested_dedents_at_eof() {
        let src = "if a:\n    if b:\n        pass";
        let k = kinds(src);
        let dedents = k.iter().filter(|&&t| t == TokenKind::Dedent).count();
        assert_eq!(dedents, 2);
    }

    #[test]
    fn newlines_suppressed_in_brackets() {
        let src = "x = (1 +\n     2)\n";
        let k = kinds(src);
        assert_eq!(k.iter().filter(|&&t| t == TokenKind::Newline).count(), 1);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let src = "# header\n\nx = 1  # trailing\n\n# done\n";
        use TokenKind::*;
        assert_eq!(kinds(src), vec![Name, Assign, Number, Newline, EndOfFile]);
    }

    #[test]
    fn string_variants() {
        for s in [
            "'a'",
            "\"a\"",
            "'''multi\nline'''",
            "f'x{y}'",
            "rb'raw'",
            "'esc\\''",
        ] {
            let toks = tokenize(s).unwrap();
            assert_eq!(toks[0].kind, TokenKind::Str, "input: {s}");
        }
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("x = 'oops\n").is_err());
        assert!(tokenize("x = '''oops").is_err());
    }

    #[test]
    fn number_variants() {
        for s in [
            "0", "42", "3.14", "1e10", "1E-3", "0x1f", "0b101", "1_000", "2.5j", ".5",
        ] {
            let toks = tokenize(s).unwrap();
            assert_eq!(toks[0].kind, TokenKind::Number, "input: {s}");
            assert_eq!(toks[0].lexeme, s, "input: {s}");
        }
    }

    #[test]
    fn method_call_on_number_not_swallowed() {
        use TokenKind::*;
        // `1 .bit_length()` style: ensure `1..2` doesn't lex the dots into the number.
        assert_eq!(
            kinds("x[1:2]\n")[..6],
            [Name, LBracket, Number, Colon, Number, RBracket]
        );
    }

    #[test]
    fn operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("a += b ** c // d != e\n"),
            vec![
                Name,
                AugAssign,
                Name,
                DoubleStar,
                Name,
                DoubleSlash,
                Name,
                NotEq,
                Name,
                Newline,
                EndOfFile
            ]
        );
    }

    #[test]
    fn walrus_and_arrow() {
        use TokenKind::*;
        assert_eq!(kinds("def f() -> int:\n    pass\n")[4], Arrow.to_owned());
        assert!(kinds("if (n := 10) > 5:\n    pass\n").contains(&Walrus));
    }

    #[test]
    fn line_continuation() {
        use TokenKind::*;
        assert_eq!(
            kinds("x = 1 + \\\n    2\n"),
            vec![Name, Assign, Number, Plus, Number, Newline, EndOfFile]
        );
    }

    #[test]
    fn inconsistent_dedent_is_error() {
        let src = "if a:\n        pass\n    pass\n";
        assert!(tokenize(src).is_err());
    }

    #[test]
    fn spans_track_lines() {
        let toks = tokenize("a = 1\nb = 2\n").unwrap();
        let b = toks.iter().find(|t| t.lexeme == "b").unwrap();
        assert_eq!(b.span.start.line, 2);
        assert_eq!(b.span.start.col, 0);
    }

    #[test]
    fn decorator_at() {
        use TokenKind::*;
        assert_eq!(kinds("@dec\ndef f():\n    pass\n")[0], At);
    }

    #[test]
    fn ellipsis_literal() {
        assert!(kinds("x = ...\n").contains(&TokenKind::Ellipsis));
    }
}
